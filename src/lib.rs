//! Umbrella crate for the Guided Tensor Lifting reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See the individual crates for the real API surface.

pub use gtl as stagg;
pub use gtl_analysis as analysis;
pub use gtl_baselines as baselines;
pub use gtl_benchsuite as benchsuite;
pub use gtl_cfront as cfront;
pub use gtl_grammar as grammar;
pub use gtl_oracle as oracle;
pub use gtl_search as search;
pub use gtl_serve as serve;
pub use gtl_store as store;
pub use gtl_taco as taco;
pub use gtl_template as template;
pub use gtl_tensor as tensor;
pub use gtl_validate as validate;
pub use gtl_verify as verify;
