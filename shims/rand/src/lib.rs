//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of the `rand` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng::gen_range`] / [`Rng::gen_bool`] methods. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and
//! statistically solid for test-input generation (it is not, and does not
//! claim to be, cryptographically secure).
//!
//! Streams are stable across runs and platforms; they intentionally do
//! not match upstream `rand`'s `StdRng` (nothing in the workspace depends
//! on the exact values, only on determinism).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value in `range` (empty ranges panic).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Ranges a [`Rng`] can sample from (subset of `rand`'s `SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<G: Rng>(self, rng: &mut G) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generator types.
pub mod rngs {
    pub use super::StdRng;
}

/// A deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
    }
}
