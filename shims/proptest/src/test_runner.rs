//! The per-test deterministic RNG and case bookkeeping.

/// Number of generated cases per `proptest!` test.
pub const CASES: u32 = 64;

/// Error type a proptest body may early-return with (`return Ok(())`
/// skips; `Err` fails the case). Kept as a plain string — this shim does
/// not shrink.
pub type TestCaseError = String;

/// A small deterministic generator (SplitMix64). Each test derives its
/// seed from its own name, so runs are reproducible and independent.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        // Widening-multiply range reduction.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A signed uniform value in `lo..hi` over i128 arithmetic.
    pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "TestRng::in_range_i128: empty range");
        let span = (hi - lo) as u128;
        let draw =
            ((u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())) % span;
        lo + draw as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_stable_and_distinct() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("beta");
        assert_ne!(TestRng::from_name("alpha").next_u64(), c.next_u64());
    }

    #[test]
    fn below_bounds() {
        let mut rng = TestRng::from_name("below");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
