//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of random values of one type.
///
/// Mirrors `proptest::strategy::Strategy`, minus shrinking: `generate`
/// produces one value directly.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy behind a clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }

    /// Builds a recursive strategy: `self` generates leaves, and
    /// `recurse` wraps an inner strategy into a bigger value, up to
    /// `depth` levels. `_desired_size` and `_expected_branch` are
    /// accepted for upstream signature compatibility.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Each deeper level recurses into a mix of the previous level
            // and plain leaves, so generated sizes vary but terminate.
            let deeper = recurse(level).boxed();
            let leaf_again = leaf.clone();
            level = BoxedStrategy::from_fn(move |rng| {
                if rng.below(3) == 0 {
                    leaf_again.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        level
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A clonable, type-erased strategy (mirrors `proptest::BoxedStrategy`).
pub struct BoxedStrategy<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation closure.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen_fn: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Uniform choice between strategies of one value type (backs
/// `prop_oneof!`).
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "one_of: no strategies");
    BoxedStrategy::from_fn(move |rng| {
        options[rng.below(options.len() as u64) as usize].generate(rng)
    })
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_i128(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// `Just`-style constant strategy (small convenience, mirrors upstream).
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let v = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let u = (0u32..3).generate(&mut rng);
            assert!(u < 3);
            let w = (1i128..1000).generate(&mut rng);
            assert!((1..1000).contains(&w));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = ((0i64..5), (0i64..5)).prop_map(|(a, b)| a + b);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((0..9).contains(&v));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum T {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 1,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..10).prop_map(T::Leaf);
        let tree = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_name("recursive");
        for _ in 0..200 {
            let t = tree.generate(&mut rng);
            assert!(depth(&t) <= 4, "depth bound violated: {t:?}");
        }
    }

    #[test]
    fn one_of_covers_all_arms() {
        let s = one_of(vec![Just(1).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let mut rng = TestRng::from_name("one_of");
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
