//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of proptest it uses: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map` / `prop_recursive` / `boxed`, integer-range and tuple
//! strategies, `prop::sample::select`, `prop::collection::vec`, and the
//! `proptest!` / `prop_oneof!` / `prop_assert*!` macros.
//!
//! Semantics: each `proptest!` test runs a fixed number of random cases
//! from a seed derived from the test's name, so failures reproduce
//! exactly. There is no shrinking — a failing case panics with the
//! assertion message directly (values are printable at the call site).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// The conventional glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The `prop` namespace (`prop::sample`, `prop::collection`).
pub mod prop {
    /// Strategies that sample from explicit value pools.
    pub mod sample {
        use crate::strategy::BoxedStrategy;

        /// A strategy yielding uniformly chosen elements of `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
            assert!(!options.is_empty(), "prop::sample::select: empty pool");
            BoxedStrategy::from_fn(move |rng| {
                options[rng.below(options.len() as u64) as usize].clone()
            })
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{BoxedStrategy, Strategy};
        use std::ops::Range;

        /// A strategy yielding vectors whose length is drawn from
        /// `len` and whose elements are drawn from `element`.
        pub fn vec<S>(element: S, len: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
        where
            S: Strategy + 'static,
            S::Value: 'static,
        {
            assert!(len.start < len.end, "prop::collection::vec: empty length range");
            BoxedStrategy::from_fn(move |rng| {
                let span = (len.end - len.start) as u64;
                let n = len.start + rng.below(span) as usize;
                (0..n).map(|_| element.generate(rng)).collect()
            })
        }
    }
}

/// Runs each `#[test]` body against many generated cases.
///
/// Mirrors `proptest! { #[test] fn name(x in strat, ...) { body } }`.
/// The body may use `return Ok(())` to skip a case, exactly as with
/// upstream proptest.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..$crate::test_runner::CASES {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!("proptest case {case} of {}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Chooses uniformly between several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Asserts inside a proptest body (panics with the case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}
