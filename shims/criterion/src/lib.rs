//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is
//! intentionally simple — a warm-up pass then a timed batch, reporting
//! mean ns/iter — sufficient for the relative comparisons the repo's
//! bench targets print, with no statistics machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
    /// Mean ns/iter of the most recent `bench_function` run.
    last_mean_ns: f64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
            last_mean_ns: 0.0,
        }
    }
}

impl Criterion {
    /// Sets the target measurement time (mirrors `criterion`'s builder).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measurement: self.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        println!("{name:<40} {:>12.1} ns/iter ({} iters)", b.mean_ns, b.iters);
        self.last_mean_ns = b.mean_ns;
        self
    }

    /// Mean ns/iter measured by the most recent [`Criterion::bench_function`]
    /// call (shim extension — real criterion reports through its own
    /// output machinery instead).
    pub fn last_mean_ns(&self) -> f64 {
        self.last_mean_ns
    }
}

/// Times a closure (mirrors `criterion::Bencher`).
pub struct Bencher {
    measurement: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` until the measurement budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and per-iteration estimate.
        let warm = Instant::now();
        std::hint::black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let target = self.measurement;
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        let total = start.elapsed();
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark function in this group.
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs_routine() {
        let mut c =
            super::Criterion::default().measurement_time(std::time::Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }
}
