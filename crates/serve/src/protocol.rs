//! The `gtl_serve` JSON-lines wire protocol: typed requests, events and
//! error codes, with lossless JSON encode/decode on both sides.
//!
//! Every message is one JSON object on one line. Clients send
//! [`Request`]s; the server answers with streams of [`Event`]s, each
//! tagged with the originating request `id`. The full specification —
//! schemas, ordering guarantees, cancellation semantics and examples —
//! lives in `docs/PROTOCOL.md`.

use std::fmt;

use gtl::{GrammarMode, SearchMode, StaggConfig};
use gtl_trace::{LatencyHistogram, Phase, PhaseTimes, SpanRecord};

use crate::json::{parse, Json};

/// Machine-readable error classes of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The JSON was valid but not a well-formed request.
    BadRequest,
    /// A `lift` named a benchmark the suite does not contain.
    UnknownBenchmark,
    /// A raw-source `lift`'s C kernel or ground truth failed to parse.
    BadSource,
    /// The bounded job queue is full; retry later.
    QueueFull,
    /// A `lift` reused an `id` that is still queued or running.
    DuplicateId,
    /// A `cancel` named an `id` that is neither queued nor running.
    UnknownRequest,
    /// A `lift`'s `oracle` spec does not parse, or names a provider
    /// kind outside the server's allowlist.
    OracleRejected,
    /// The client already has its maximum number of lifts in flight
    /// (`--max-inflight-per-client`); retry after one of them finishes.
    RateLimited,
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
    /// A router exhausted every candidate replica for the request:
    /// none accepted a connection and streamed a terminal event.
    ReplicaUnavailable,
}

impl ErrorCode {
    /// The stable wire name.
    pub fn wire_name(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownBenchmark => "unknown_benchmark",
            ErrorCode::BadSource => "bad_source",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::DuplicateId => "duplicate_id",
            ErrorCode::UnknownRequest => "unknown_request",
            ErrorCode::OracleRejected => "oracle_rejected",
            ErrorCode::RateLimited => "rate_limited",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::ReplicaUnavailable => "replica_unavailable",
        }
    }

    /// Parses a wire name.
    pub fn from_wire_name(name: &str) -> Option<ErrorCode> {
        Some(match name {
            "bad_json" => ErrorCode::BadJson,
            "bad_request" => ErrorCode::BadRequest,
            "unknown_benchmark" => ErrorCode::UnknownBenchmark,
            "bad_source" => ErrorCode::BadSource,
            "queue_full" => ErrorCode::QueueFull,
            "duplicate_id" => ErrorCode::DuplicateId,
            "unknown_request" => ErrorCode::UnknownRequest,
            "oracle_rejected" => ErrorCode::OracleRejected,
            "rate_limited" => ErrorCode::RateLimited,
            "shutting_down" => ErrorCode::ShuttingDown,
            "replica_unavailable" => ErrorCode::ReplicaUnavailable,
            _ => return None,
        })
    }
}

/// A protocol-level failure: error class, human-readable message, and
/// the request id it concerns when one could be extracted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// The offending request's id, when known.
    pub id: Option<String>,
}

impl WireError {
    /// Builds an error without request context.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
            id: None,
        }
    }

    /// Attaches the offending request id.
    pub fn with_id(mut self, id: impl Into<String>) -> WireError {
        self.id = Some(id.into());
        self
    }

    /// The terminal [`Event::Error`] announcing this failure.
    pub fn to_event(&self) -> Event {
        Event::Error {
            id: self.id.clone(),
            code: self.code,
            message: self.message.clone(),
            trace_id: None,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.wire_name(), self.message)
    }
}

impl std::error::Error for WireError {}

/// One kernel parameter of a raw-source lift request (the wire form of
/// `gtl_validate::TaskParamKind`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireParam {
    /// Parameter name, matching the C signature.
    pub name: String,
    /// Logical role.
    pub kind: WireParamKind,
}

/// The logical role of one kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireParamKind {
    /// An `int` scalar bound to a size symbol.
    Size {
        /// The extent symbol this scalar carries.
        symbol: String,
    },
    /// A scalar data input.
    ScalarIn {
        /// Must the generated value be nonzero (divisor)?
        nonzero: bool,
    },
    /// An input array.
    ArrayIn {
        /// Extent symbols, outermost first.
        dims: Vec<String>,
        /// Must every element be nonzero (divisor)?
        nonzero: bool,
    },
    /// The output array.
    ArrayOut {
        /// Extent symbols, outermost first.
        dims: Vec<String>,
    },
}

/// What to lift: a suite benchmark by name, or raw C source with full
/// task metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelSpec {
    /// One of the 77 suite benchmarks.
    Benchmark {
        /// Benchmark name, e.g. `blas_gemv`.
        name: String,
    },
    /// A raw C kernel. The optional `ground_truth` TACO program feeds
    /// the deterministic synthetic oracle standing in for the paper's
    /// LLM — the pipeline itself never reads it (see `gtl_oracle`), and
    /// replay-backed lifts don't need it.
    Source {
        /// Stable label for seeding and reporting.
        label: String,
        /// The legacy C source (one kernel function).
        source: String,
        /// Parameter roles, in signature order.
        params: Vec<WireParam>,
        /// Ground-truth TACO program hint for the synthetic oracle.
        /// Without it the synthetic provider produces no candidates;
        /// replay/scripted providers ignore it entirely.
        ground_truth: Option<String>,
    },
}

/// Per-request configuration overrides; every field is optional and
/// falls back to the server's base [`StaggConfig`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConfigOverrides {
    /// Search algorithm (`td` / `bu`).
    pub mode: Option<SearchMode>,
    /// Grammar variant (`refined`, `equal_probability`, `full_grammar`,
    /// `llm_grammar`).
    pub grammar: Option<GrammarMode>,
    /// Worker threads inside this lift's search stage.
    pub search_jobs: Option<usize>,
    /// Maximum oracle rounds (the failure loop re-queries the oracle
    /// with feedback between rounds; `1` = single-shot).
    pub oracle_rounds: Option<usize>,
    /// Budget: maximum complete templates sent to checkers.
    pub max_attempts: Option<u64>,
    /// Budget: maximum search-queue pops.
    pub max_nodes: Option<u64>,
    /// Budget: search wall-clock limit in milliseconds.
    pub time_limit_ms: Option<u64>,
    /// Request-level timeout in milliseconds, measured from lift start;
    /// on expiry the request fails with reason `timeout`.
    pub timeout_ms: Option<u64>,
}

impl ConfigOverrides {
    /// Whether no override is set.
    pub fn is_empty(&self) -> bool {
        *self == ConfigOverrides::default()
    }

    /// The base configuration with these overrides applied
    /// (`timeout_ms` is enforced by the server, not the search budget).
    pub fn apply(&self, base: &StaggConfig) -> StaggConfig {
        let mut config = base.clone();
        if let Some(mode) = self.mode {
            config.mode = mode;
        }
        if let Some(grammar) = self.grammar {
            config.grammar = grammar;
        }
        if let Some(jobs) = self.search_jobs {
            config.jobs = jobs.max(1);
        }
        if let Some(rounds) = self.oracle_rounds {
            config.oracle_rounds = rounds.max(1);
        }
        if let Some(n) = self.max_attempts {
            config.budget.max_attempts = n;
        }
        if let Some(n) = self.max_nodes {
            config.budget.max_nodes = n;
        }
        if let Some(ms) = self.time_limit_ms {
            config.budget.time_limit = std::time::Duration::from_millis(ms);
        }
        config
    }
}

/// One lift request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiftRequest {
    /// Client-chosen correlation id; every event of this request's
    /// stream echoes it. Must be unique among the client's in-flight
    /// requests.
    pub id: String,
    /// What to lift.
    pub kernel: KernelSpec,
    /// Which oracle provider guides the lift, as an
    /// [`OracleSpec`](gtl::OracleSpec) spelling (`synthetic`,
    /// `synthetic:SEED`, `replay:PATH`, …).
    /// Absent means the server's base configuration. Validated against
    /// the server's allowlist at admission; violations are rejected
    /// with `oracle_rejected`.
    pub oracle: Option<String>,
    /// Per-request configuration overrides.
    pub overrides: ConfigOverrides,
    /// Distributed trace ID for this lift. Absent means the admission
    /// point (server, or router — which stamps it before forwarding so
    /// the ID stays stable across failover) mints one; every event of
    /// the stream then carries it.
    pub trace_id: Option<String>,
}

impl LiftRequest {
    /// A benchmark lift with no overrides.
    pub fn benchmark(id: impl Into<String>, name: impl Into<String>) -> LiftRequest {
        LiftRequest {
            id: id.into(),
            kernel: KernelSpec::Benchmark { name: name.into() },
            oracle: None,
            overrides: ConfigOverrides::default(),
            trace_id: None,
        }
    }

    /// Selects an oracle spec (builder style).
    pub fn with_oracle(mut self, spec: impl Into<String>) -> LiftRequest {
        self.oracle = Some(spec.into());
        self
    }

    /// Supplies a client-chosen trace ID (builder style).
    pub fn with_trace_id(mut self, trace_id: impl Into<String>) -> LiftRequest {
        self.trace_id = Some(trace_id.into());
        self
    }
}

/// A client → server message.
// `Lift` dwarfs the other variants, but requests are parsed one at a
// time and moved straight into a job — never stored in bulk — so the
// indirection a `Box` would buy costs more in API noise than it saves.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a lift.
    Lift(LiftRequest),
    /// Cancel a queued or running lift.
    Cancel {
        /// The id of the lift to cancel.
        id: String,
    },
    /// Ask for a server statistics snapshot.
    Stats,
    /// Offer a completed lift record to a replica (the peer-push half
    /// of replica lift-sharing). Servers accept it only when started
    /// with share acceptance enabled; the append is idempotent (an
    /// identical record is a no-op), so re-pushes are harmless. The
    /// answer is one [`Event::Shared`] or a terminal error.
    ShareLift {
        /// Correlation id, echoed on the ack.
        id: String,
        /// The completed lift, in the store's record encoding.
        record: gtl_store::LiftRecord,
    },
    /// Ask for the server's metrics in Prometheus text exposition
    /// format; the answer is one [`Event::Metrics`]. Routers answer by
    /// scraping every replica, merging the structured stats, and
    /// rendering the merged view.
    Metrics,
    /// Ask for the retained spans of one trace from the server's span
    /// journal; the answer is one [`Event::Trace`]. Routers fan out to
    /// every replica and concatenate the dumps.
    Trace {
        /// The trace ID to dump.
        trace_id: String,
    },
    /// Ask the server to shut down gracefully.
    Shutdown,
}

/// Per-provider lift accounting: how many lifts each oracle spec has
/// driven (one entry per distinct spec, sorted by spec).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleStat {
    /// The oracle spec spelling (`synthetic`, `replay:PATH`, …).
    pub spec: String,
    /// Lifts this provider drove (cache hits excluded — they run no
    /// oracle).
    pub lifts: u64,
}

/// Router-side accounting for one replica: how traffic and failures
/// were distributed. Empty on plain servers — only `lift_router`
/// populates it in the stats it serves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicaStat {
    /// The replica address as configured on the router.
    pub addr: String,
    /// Requests this replica served (streams finished, one-shot
    /// exchanges answered).
    pub forwards: u64,
    /// Times this replica failed mid-request or at connect and the
    /// router moved on to the next ring candidate.
    pub failovers: u64,
}

/// A server statistics snapshot (the payload of [`Event::Stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Lift requests admitted to the queue.
    pub received: u64,
    /// Lifts that finished with a `done` event.
    pub completed: u64,
    /// Lifts that finished with a `failed` event.
    pub failed: u64,
    /// Lifts cancelled by clients, timeouts, or shutdown.
    pub cancelled: u64,
    /// Lift requests rejected at admission (full queue, bad request…).
    pub rejected: u64,
    /// Result-cache hits (answered without running a search).
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Jobs waiting in the queue right now.
    pub queued: u64,
    /// Jobs running on workers right now.
    pub active: u64,
    /// Worker threads serving the queue.
    pub workers: u64,
    /// Provider instances built since start: one per distinct oracle
    /// spec, shared by every worker — never one per request.
    pub providers_built: u64,
    /// Outcomes loaded from the persistent store at startup (0 when the
    /// server runs without `--store`).
    pub store_loaded: u64,
    /// Outcomes appended to the persistent store since startup.
    pub store_appended: u64,
    /// Store compactions performed since startup.
    pub store_compactions: u64,
    /// Per-provider lift counts, sorted by spec.
    pub oracles: Vec<OracleStat>,
    /// High-water mark of [`ServerStats::queued`] since startup
    /// (monotone — drains never lower it).
    pub peak_queued: u64,
    /// Per-worker busy flags (`1` = a job is running on that worker),
    /// indexed by worker number. Empty when decoded from a pre-gauge
    /// server.
    pub worker_inflight: Vec<u64>,
    /// Terminal `done` events emitted since startup.
    pub done_events: u64,
    /// Terminal `failed` events emitted since startup.
    pub failed_events: u64,
    /// Terminal `error` events emitted since startup (admission
    /// rejections, malformed requests, refused shares).
    pub error_events: u64,
    /// `shared` acknowledgements emitted since startup (accepted
    /// `share_lift` pushes).
    pub shared_events: u64,
    /// Per-replica forward/failover counts, sorted by address. Empty
    /// everywhere except in router-served stats.
    pub replicas: Vec<ReplicaStat>,
    /// Candidate templates skipped by the feasibility pre-checks,
    /// summed over every lift served.
    pub pruned_infeasible: u64,
    /// Candidate templates skipped as algebraically equivalent to one
    /// already checked, summed over every lift served.
    pub pruned_equivalent: u64,
    /// Shape groups evaluated on the unchecked integer fast path under
    /// an interval overflow proof, summed over every lift served.
    pub unchecked_kernels: u64,
    /// Service-time distribution in microseconds (admission → terminal
    /// event) of every finished lift. Routers merge replica histograms
    /// element-wise, so the merged view equals a single process seeing
    /// all the traffic.
    pub service_time: LatencyHistogram,
    /// Queue-wait distribution in microseconds (admission → worker
    /// pickup) of every lift a worker started.
    pub queue_wait: LatencyHistogram,
    /// Per-phase pipeline time totals (µs), summed over every lift
    /// served and merged across replicas by routers.
    pub phase_times: PhaseTimes,
}

/// A server → client message. Per request id, a stream is:
/// `queued`, then any number of `search_progress` / `candidate_found`,
/// then optionally `verified`, then exactly one terminal `done`,
/// `failed` or `error`.
// `Stats` embeds `ServerStats` with its inline histogram buckets; events
// are produced one at a time per request, never bulk-queued, so boxing
// the stats payload would complicate every construction site for no
// practical memory win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The lift was admitted to the job queue.
    Queued {
        /// Request id.
        id: String,
        /// Jobs in the queue at admission, this one included.
        position: usize,
        /// The request's trace ID (stamped at admission).
        trace_id: Option<String>,
    },
    /// Periodic search progress (emitted while the lift runs).
    SearchProgress {
        /// Request id.
        id: String,
        /// Search-queue pops so far.
        nodes: u64,
        /// Complete templates sent to validation so far.
        attempts: u64,
        /// Milliseconds since the lift started.
        elapsed_ms: u64,
        /// The request's trace ID.
        trace_id: Option<String>,
    },
    /// A concrete candidate passed every I/O example and entered
    /// bounded verification. May fire several times per lift.
    CandidateFound {
        /// Request id.
        id: String,
        /// The candidate TACO program.
        candidate: String,
        /// The request's trace ID.
        trace_id: Option<String>,
    },
    /// The search produced a verified solution (a `done` follows).
    Verified {
        /// Request id.
        id: String,
        /// The verified concrete TACO program.
        solution: String,
        /// The request's trace ID.
        trace_id: Option<String>,
    },
    /// Terminal: the lift succeeded.
    Done {
        /// Request id.
        id: String,
        /// The verified concrete TACO program.
        solution: String,
        /// Templates sent to validation.
        attempts: u64,
        /// Search-queue pops.
        nodes: u64,
        /// End-to-end milliseconds (0 for cache hits).
        elapsed_ms: u64,
        /// Whether the answer came from the result cache.
        cached: bool,
        /// The request's trace ID.
        trace_id: Option<String>,
    },
    /// Terminal: the lift produced no solution.
    Failed {
        /// Request id.
        id: String,
        /// Machine-readable reason: `no_usable_candidates`,
        /// `search_exhausted`, `budget_exceeded`, `bad_query`,
        /// `cancelled`, `timeout` or `shutting_down`.
        reason: String,
        /// Optional human-readable detail.
        detail: Option<String>,
        /// Templates sent to validation before the failure.
        attempts: u64,
        /// Search-queue pops before the failure.
        nodes: u64,
        /// End-to-end milliseconds (0 for cache hits and jobs that
        /// never started).
        elapsed_ms: u64,
        /// Whether the answer came from the result cache.
        cached: bool,
        /// The request's trace ID.
        trace_id: Option<String>,
    },
    /// A statistics snapshot (answer to a `stats` request).
    Stats {
        /// The snapshot.
        stats: ServerStats,
    },
    /// The Prometheus text-format exposition (answer to a `metrics`
    /// request).
    Metrics {
        /// The rendered exposition text.
        text: String,
    },
    /// A span-journal dump (answer to a `trace` request).
    Trace {
        /// The trace ID that was dumped.
        trace_id: String,
        /// The retained spans of that trace, in recording order.
        spans: Vec<SpanRecord>,
    },
    /// Terminal ack of a `share_lift`: the record was accepted.
    Shared {
        /// The share request's id.
        id: String,
        /// Whether the record was newly stored (`false` when an
        /// identical record was already present — the idempotent case).
        stored: bool,
    },
    /// Terminal: the request itself was rejected.
    Error {
        /// The offending request's id, when extractable.
        id: Option<String>,
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// The request's trace ID, when the rejection happened after
        /// one was assigned (routers stamp it so clients can correlate
        /// failover errors).
        trace_id: Option<String>,
    },
}

impl Event {
    /// The request id this event belongs to (absent for `stats` and
    /// id-less errors).
    pub fn id(&self) -> Option<&str> {
        match self {
            Event::Queued { id, .. }
            | Event::SearchProgress { id, .. }
            | Event::CandidateFound { id, .. }
            | Event::Verified { id, .. }
            | Event::Done { id, .. }
            | Event::Failed { id, .. }
            | Event::Shared { id, .. } => Some(id),
            Event::Error { id, .. } => id.as_deref(),
            Event::Stats { .. } | Event::Metrics { .. } | Event::Trace { .. } => None,
        }
    }

    /// Whether this event closes its request's stream.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::Done { .. }
                | Event::Failed { .. }
                | Event::Error { .. }
                | Event::Shared { .. }
        )
    }

    /// The trace ID stamped on this event, when its variant carries
    /// one and the serving layer filled it in.
    pub fn trace_id(&self) -> Option<&str> {
        match self {
            Event::Queued { trace_id, .. }
            | Event::SearchProgress { trace_id, .. }
            | Event::CandidateFound { trace_id, .. }
            | Event::Verified { trace_id, .. }
            | Event::Done { trace_id, .. }
            | Event::Failed { trace_id, .. }
            | Event::Error { trace_id, .. } => trace_id.as_deref(),
            Event::Stats { .. } | Event::Shared { .. } | Event::Metrics { .. } => None,
            Event::Trace { trace_id, .. } => Some(trace_id),
        }
    }

    /// Stamps `trace_id` onto the event when its variant carries one
    /// and none is set yet; events already attributed keep their ID.
    /// The servers' emit funnels call this so no per-request event
    /// leaves a server unattributed.
    pub fn set_trace_id(&mut self, value: &str) {
        match self {
            Event::Queued { trace_id, .. }
            | Event::SearchProgress { trace_id, .. }
            | Event::CandidateFound { trace_id, .. }
            | Event::Verified { trace_id, .. }
            | Event::Done { trace_id, .. }
            | Event::Failed { trace_id, .. }
            | Event::Error { trace_id, .. } => {
                if trace_id.is_none() {
                    *trace_id = Some(value.to_string());
                }
            }
            Event::Stats { .. }
            | Event::Shared { .. }
            | Event::Metrics { .. }
            | Event::Trace { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn param_to_json(p: &WireParam) -> Json {
    let mut fields = vec![("name", Json::str(&p.name))];
    match &p.kind {
        WireParamKind::Size { symbol } => {
            fields.push(("kind", Json::str("size")));
            fields.push(("symbol", Json::str(symbol)));
        }
        WireParamKind::ScalarIn { nonzero } => {
            fields.push(("kind", Json::str("scalar_in")));
            fields.push(("nonzero", Json::Bool(*nonzero)));
        }
        WireParamKind::ArrayIn { dims, nonzero } => {
            fields.push(("kind", Json::str("array_in")));
            fields.push(("dims", Json::Arr(dims.iter().map(Json::str).collect())));
            fields.push(("nonzero", Json::Bool(*nonzero)));
        }
        WireParamKind::ArrayOut { dims } => {
            fields.push(("kind", Json::str("array_out")));
            fields.push(("dims", Json::Arr(dims.iter().map(Json::str).collect())));
        }
    }
    Json::obj(fields)
}

fn overrides_to_json(o: &ConfigOverrides) -> Json {
    let mut fields = Vec::new();
    if let Some(mode) = o.mode {
        fields.push(("mode", Json::str(mode.cli_name())));
    }
    if let Some(grammar) = o.grammar {
        fields.push(("grammar", Json::str(grammar.cli_name())));
    }
    if let Some(jobs) = o.search_jobs {
        fields.push(("search_jobs", Json::u64(jobs as u64)));
    }
    if let Some(rounds) = o.oracle_rounds {
        fields.push(("oracle_rounds", Json::u64(rounds as u64)));
    }
    if let Some(n) = o.max_attempts {
        fields.push(("max_attempts", Json::u64(n)));
    }
    if let Some(n) = o.max_nodes {
        fields.push(("max_nodes", Json::u64(n)));
    }
    if let Some(ms) = o.time_limit_ms {
        fields.push(("time_limit_ms", Json::u64(ms)));
    }
    if let Some(ms) = o.timeout_ms {
        fields.push(("timeout_ms", Json::u64(ms)));
    }
    Json::obj(fields)
}

impl Request {
    /// Encodes as a JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Lift(lift) => {
                let mut fields = vec![
                    ("type", Json::str("lift")),
                    ("id", Json::str(&lift.id)),
                ];
                match &lift.kernel {
                    KernelSpec::Benchmark { name } => {
                        fields.push(("benchmark", Json::str(name)));
                    }
                    KernelSpec::Source {
                        label,
                        source,
                        params,
                        ground_truth,
                    } => {
                        fields.push(("label", Json::str(label)));
                        fields.push(("source", Json::str(source)));
                        fields.push((
                            "params",
                            Json::Arr(params.iter().map(param_to_json).collect()),
                        ));
                        if let Some(ground_truth) = ground_truth {
                            fields.push(("ground_truth", Json::str(ground_truth)));
                        }
                    }
                }
                if let Some(oracle) = &lift.oracle {
                    fields.push(("oracle", Json::str(oracle)));
                }
                if !lift.overrides.is_empty() {
                    fields.push(("config", overrides_to_json(&lift.overrides)));
                }
                if let Some(trace_id) = &lift.trace_id {
                    fields.push(("trace_id", Json::str(trace_id)));
                }
                Json::obj(fields)
            }
            Request::Cancel { id } => Json::obj([
                ("type", Json::str("cancel")),
                ("id", Json::str(id)),
            ]),
            Request::Stats => Json::obj([("type", Json::str("stats"))]),
            Request::Metrics => Json::obj([("type", Json::str("metrics"))]),
            Request::Trace { trace_id } => Json::obj([
                ("type", Json::str("trace")),
                ("trace_id", Json::str(trace_id)),
            ]),
            Request::ShareLift { id, record } => Json::obj([
                ("type", Json::str("share_lift")),
                ("id", Json::str(id)),
                ("record", record.to_json()),
            ]),
            Request::Shutdown => Json::obj([("type", Json::str("shutdown"))]),
        }
    }

    /// Encodes as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_line()
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] with code `bad_json` for malformed JSON
    /// or `bad_request` for well-formed JSON that is not a request;
    /// when an `id` member is present it is attached for error routing.
    pub fn parse_line(line: &str) -> Result<Request, WireError> {
        let doc = parse(line)
            .map_err(|e| WireError::new(ErrorCode::BadJson, e.to_string()))?;
        let id = doc
            .get("id")
            .and_then(Json::as_str)
            .map(str::to_string);
        let attach = |e: WireError| match &id {
            Some(id) => e.with_id(id.clone()),
            None => e,
        };
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                attach(WireError::new(
                    ErrorCode::BadRequest,
                    "missing string member `type`",
                ))
            })?;
        match kind {
            "lift" => parse_lift(&doc).map(Request::Lift).map_err(attach),
            "cancel" => {
                let id = id.ok_or_else(|| {
                    WireError::new(ErrorCode::BadRequest, "cancel requires `id`")
                })?;
                Ok(Request::Cancel { id })
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "trace" => {
                let trace_id = doc
                    .get("trace_id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        attach(WireError::new(
                            ErrorCode::BadRequest,
                            "trace requires string `trace_id`",
                        ))
                    })?
                    .to_string();
                Ok(Request::Trace { trace_id })
            }
            "share_lift" => {
                let id = id.ok_or_else(|| {
                    WireError::new(ErrorCode::BadRequest, "share_lift requires `id`")
                })?;
                let record = doc.get("record").ok_or_else(|| {
                    WireError::new(ErrorCode::BadRequest, "share_lift requires `record`")
                        .with_id(id.clone())
                })?;
                let record = gtl_store::LiftRecord::from_json(record).map_err(|m| {
                    WireError::new(ErrorCode::BadRequest, format!("bad share_lift record: {m}"))
                        .with_id(id.clone())
                })?;
                Ok(Request::ShareLift { id, record })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(attach(WireError::new(
                ErrorCode::BadRequest,
                format!("unknown request type `{other}`"),
            ))),
        }
    }
}

fn parse_lift(doc: &Json) -> Result<LiftRequest, WireError> {
    let bad = |m: String| WireError::new(ErrorCode::BadRequest, m);
    let id = doc
        .get("id")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("lift requires a string `id`".into()))?
        .to_string();
    let kernel = match (doc.get("benchmark"), doc.get("source")) {
        (Some(name), None) => KernelSpec::Benchmark {
            name: name
                .as_str()
                .ok_or_else(|| bad("`benchmark` must be a string".into()))?
                .to_string(),
        },
        (None, Some(source)) => {
            let source = source
                .as_str()
                .ok_or_else(|| bad("`source` must be a string".into()))?
                .to_string();
            let ground_truth = match doc.get("ground_truth") {
                None => None,
                Some(gt) => Some(
                    gt.as_str()
                        .ok_or_else(|| bad("`ground_truth` must be a string".into()))?
                        .to_string(),
                ),
            };
            let label = doc
                .get("label")
                .and_then(Json::as_str)
                .unwrap_or(&id)
                .to_string();
            let params = doc
                .get("params")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("raw-source lift requires `params` (array)".into()))?
                .iter()
                .map(parse_param)
                .collect::<Result<Vec<_>, _>>()?;
            KernelSpec::Source {
                label,
                source,
                params,
                ground_truth,
            }
        }
        _ => {
            return Err(bad(
                "lift requires exactly one of `benchmark` or `source`".into(),
            ))
        }
    };
    let oracle = match doc.get("oracle") {
        None => None,
        Some(spec) => Some(
            spec.as_str()
                .ok_or_else(|| bad("`oracle` must be a string".into()))?
                .to_string(),
        ),
    };
    let overrides = match doc.get("config") {
        None => ConfigOverrides::default(),
        Some(cfg) => parse_overrides(cfg)?,
    };
    let trace_id = doc
        .get("trace_id")
        .and_then(Json::as_str)
        .map(str::to_string);
    Ok(LiftRequest {
        id,
        kernel,
        oracle,
        overrides,
        trace_id,
    })
}

fn parse_param(p: &Json) -> Result<WireParam, WireError> {
    let bad = |m: String| WireError::new(ErrorCode::BadRequest, m);
    let name = p
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("param requires `name`".into()))?
        .to_string();
    let kind = p
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("param `{name}` requires `kind`")))?;
    let dims = |p: &Json| -> Result<Vec<String>, WireError> {
        p.get("dims")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad(format!("param `{name}` requires `dims` (array)")))?
            .iter()
            .map(|d| {
                d.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| bad(format!("param `{name}`: dims must be strings")))
            })
            .collect()
    };
    let nonzero = p.get("nonzero").and_then(Json::as_bool).unwrap_or(false);
    let kind = match kind {
        "size" => WireParamKind::Size {
            symbol: p
                .get("symbol")
                .and_then(Json::as_str)
                .unwrap_or(&name)
                .to_string(),
        },
        "scalar_in" => WireParamKind::ScalarIn { nonzero },
        "array_in" => WireParamKind::ArrayIn {
            dims: dims(p)?,
            nonzero,
        },
        "array_out" => WireParamKind::ArrayOut { dims: dims(p)? },
        other => {
            return Err(bad(format!(
                "param `{name}`: unknown kind `{other}` \
                 (size, scalar_in, array_in, array_out)"
            )))
        }
    };
    Ok(WireParam { name, kind })
}

fn parse_overrides(cfg: &Json) -> Result<ConfigOverrides, WireError> {
    let bad = |m: String| WireError::new(ErrorCode::BadRequest, m);
    let mut o = ConfigOverrides::default();
    if let Some(mode) = cfg.get("mode") {
        let name = mode
            .as_str()
            .ok_or_else(|| bad("`mode` must be a string".into()))?;
        o.mode = Some(
            SearchMode::from_cli_name(name)
                .ok_or_else(|| bad(format!("unknown mode `{name}` (td, bu)")))?,
        );
    }
    if let Some(grammar) = cfg.get("grammar") {
        let name = grammar
            .as_str()
            .ok_or_else(|| bad("`grammar` must be a string".into()))?;
        o.grammar = Some(GrammarMode::from_cli_name(name).ok_or_else(|| {
            bad(format!(
                "unknown grammar `{name}` (refined, equal_probability, \
                 full_grammar, llm_grammar)"
            ))
        })?);
    }
    let uint = |key: &str| -> Result<Option<u64>, WireError> {
        match cfg.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer"))),
        }
    };
    o.search_jobs = uint("search_jobs")?.map(|n| n as usize);
    o.oracle_rounds = uint("oracle_rounds")?.map(|n| n as usize);
    o.max_attempts = uint("max_attempts")?;
    o.max_nodes = uint("max_nodes")?;
    o.time_limit_ms = uint("time_limit_ms")?;
    o.timeout_ms = uint("timeout_ms")?;
    Ok(o)
}

/// How a scalar [`ServerStats`] field renders in Prometheus output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    /// Monotone since server start (`_total` convention).
    Counter,
    /// A point-in-time level (queue depth, worker count, …).
    Gauge,
}

/// One scalar field of [`ServerStats`] in the field registry: its wire
/// name, accessors, whether decoding requires it, and how it renders.
///
/// Encoding, decoding, cross-replica merging and the Prometheus surface
/// all iterate this one table, so adding a counter means adding one row
/// — a field that exists on the struct but is missing here cannot be
/// half-plumbed (see `registry_covers_every_scalar_field` below, which
/// pins the row count to the struct).
struct StatField {
    name: &'static str,
    /// Required on decode. The original ten fields predate every other
    /// counter and are emitted by all server generations; later fields
    /// default to zero so newer clients still decode older servers.
    required: bool,
    kind: MetricKind,
    help: &'static str,
    get: fn(&ServerStats) -> u64,
    set: fn(&mut ServerStats, u64),
}

macro_rules! stat_fields {
    ($(($field:ident, $required:expr, $kind:ident, $help:expr)),* $(,)?) => {
        &[$(StatField {
            name: stringify!($field),
            required: $required,
            kind: MetricKind::$kind,
            help: $help,
            get: |s: &ServerStats| s.$field,
            set: |s: &mut ServerStats, v: u64| s.$field = v,
        }),*]
    };
}

/// Every scalar counter/gauge of [`ServerStats`], in wire order.
static STAT_FIELDS: &[StatField] = stat_fields![
    (received, true, Counter, "Lift requests admitted to the queue."),
    (completed, true, Counter, "Lifts that finished with a done event."),
    (failed, true, Counter, "Lifts that finished with a failed event."),
    (cancelled, true, Counter, "Lifts cancelled by clients, timeouts, or shutdown."),
    (rejected, true, Counter, "Lift requests rejected at admission."),
    (cache_hits, true, Counter, "Result-cache hits."),
    (cache_misses, true, Counter, "Result-cache misses."),
    (queued, true, Gauge, "Jobs waiting in the queue right now."),
    (active, true, Gauge, "Jobs running on workers right now."),
    (workers, true, Gauge, "Worker threads serving the queue."),
    (providers_built, false, Counter, "Oracle provider instances built since start."),
    (store_loaded, false, Counter, "Outcomes loaded from the persistent store at startup."),
    (store_appended, false, Counter, "Outcomes appended to the persistent store."),
    (store_compactions, false, Counter, "Store compactions performed."),
    (peak_queued, false, Gauge, "High-water mark of the queue depth."),
    (done_events, false, Counter, "Terminal done events emitted."),
    (failed_events, false, Counter, "Terminal failed events emitted."),
    (error_events, false, Counter, "Terminal error events emitted."),
    (shared_events, false, Counter, "Accepted share_lift pushes."),
    (pruned_infeasible, false, Counter, "Candidate templates skipped by feasibility pre-checks."),
    (pruned_equivalent, false, Counter, "Candidate templates skipped as algebraically equivalent."),
    (unchecked_kernels, false, Counter, "Shape groups evaluated on the unchecked fast path."),
];

fn stats_to_json(s: &ServerStats) -> Json {
    let mut fields: Vec<(String, Json)> = STAT_FIELDS
        .iter()
        .map(|f| (f.name.to_string(), Json::u64((f.get)(s))))
        .collect();
    fields.push((
        "oracles".into(),
        Json::Obj(
            s.oracles
                .iter()
                .map(|o| (o.spec.clone(), Json::u64(o.lifts)))
                .collect(),
        ),
    ));
    fields.push((
        "worker_inflight".into(),
        Json::Arr(s.worker_inflight.iter().map(|n| Json::u64(*n)).collect()),
    ));
    fields.push((
        "replicas".into(),
        Json::Obj(
            s.replicas
                .iter()
                .map(|r| {
                    (
                        r.addr.clone(),
                        Json::obj([
                            ("forwards", Json::u64(r.forwards)),
                            ("failovers", Json::u64(r.failovers)),
                        ]),
                    )
                })
                .collect(),
        ),
    ));
    fields.push(("service_time".into(), s.service_time.to_json()));
    fields.push(("queue_wait".into(), s.queue_wait.to_json()));
    fields.push(("phase_times".into(), s.phase_times.to_json()));
    Json::Obj(fields.into_iter().collect())
}

fn stats_from_json(doc: &Json) -> Option<ServerStats> {
    let oracles = match doc.get("oracles") {
        Some(Json::Obj(map)) => map
            .iter()
            .map(|(spec, lifts)| {
                Some(OracleStat {
                    spec: spec.clone(),
                    lifts: lifts.as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        _ => Vec::new(),
    };
    let mut stats = ServerStats::default();
    for f in STAT_FIELDS {
        match doc.get(f.name).and_then(Json::as_u64) {
            Some(value) => (f.set)(&mut stats, value),
            // Optional fields postdate older server generations:
            // default to zero so newer clients still decode them.
            None if !f.required => {}
            None => return None,
        }
    }
    stats.oracles = oracles;
    stats.worker_inflight = match doc.get("worker_inflight") {
        Some(Json::Arr(items)) => items.iter().filter_map(Json::as_u64).collect(),
        _ => Vec::new(),
    };
    stats.replicas = match doc.get("replicas") {
        Some(Json::Obj(map)) => map
            .iter()
            .map(|(addr, counts)| ReplicaStat {
                addr: addr.clone(),
                forwards: counts.get("forwards").and_then(Json::as_u64).unwrap_or(0),
                failovers: counts.get("failovers").and_then(Json::as_u64).unwrap_or(0),
            })
            .collect(),
        _ => Vec::new(),
    };
    stats.service_time = doc
        .get("service_time")
        .and_then(LatencyHistogram::from_json)
        .unwrap_or_default();
    stats.queue_wait = doc
        .get("queue_wait")
        .and_then(LatencyHistogram::from_json)
        .unwrap_or_default();
    stats.phase_times = doc
        .get("phase_times")
        .and_then(PhaseTimes::from_json)
        .unwrap_or_default();
    Some(stats)
}

/// Adds every counter, distribution and per-key breakdown of `part`
/// into `total` — the cross-replica aggregation routers run when
/// answering `stats` and `metrics`.
///
/// Scalars come from the field registry, so a counter added to
/// [`ServerStats`] (and its registry row) merges without touching the
/// router; histograms and phase times merge by their own element-wise
/// algebra; `oracles` and `replicas` merge per key and stay sorted.
pub fn merge_stats(total: &mut ServerStats, part: &ServerStats) {
    for f in STAT_FIELDS {
        let sum = (f.get)(total).saturating_add((f.get)(part));
        (f.set)(total, sum);
    }
    for oracle in &part.oracles {
        match total.oracles.iter_mut().find(|o| o.spec == oracle.spec) {
            Some(existing) => existing.lifts += oracle.lifts,
            None => total.oracles.push(oracle.clone()),
        }
    }
    total.oracles.sort_by(|a, b| a.spec.cmp(&b.spec));
    total
        .worker_inflight
        .extend(part.worker_inflight.iter().copied());
    for replica in &part.replicas {
        match total.replicas.iter_mut().find(|r| r.addr == replica.addr) {
            Some(existing) => {
                existing.forwards += replica.forwards;
                existing.failovers += replica.failovers;
            }
            None => total.replicas.push(replica.clone()),
        }
    }
    total.replicas.sort_by(|a, b| a.addr.cmp(&b.addr));
    total.service_time.merge(&part.service_time);
    total.queue_wait.merge(&part.queue_wait);
    total.phase_times.merge(&part.phase_times);
}

/// Renders a [`ServerStats`] snapshot in the Prometheus text exposition
/// format — the payload of [`Event::Metrics`]. Scalars render from the
/// field registry (counters get the `_total` suffix), phase times and
/// per-oracle counts as labelled series, and the service-time and
/// queue-wait distributions as histograms.
pub fn render_prometheus(stats: &ServerStats) -> String {
    use gtl_trace::prom;

    let mut out = String::new();
    for f in STAT_FIELDS {
        match f.kind {
            MetricKind::Counter => prom::counter(
                &mut out,
                &format!("gtl_{}_total", f.name),
                f.help,
                (f.get)(stats),
            ),
            MetricKind::Gauge => {
                prom::gauge(&mut out, &format!("gtl_{}", f.name), f.help, (f.get)(stats))
            }
        }
    }
    let phase_series: Vec<(&str, u64)> = Phase::ALL
        .iter()
        .map(|p| (p.name(), stats.phase_times.get(*p)))
        .collect();
    prom::labelled_counter(
        &mut out,
        "gtl_phase_us_total",
        "Pipeline time per phase, microseconds.",
        "phase",
        &phase_series,
    );
    let oracle_series: Vec<(&str, u64)> = stats
        .oracles
        .iter()
        .map(|o| (o.spec.as_str(), o.lifts))
        .collect();
    prom::labelled_counter(
        &mut out,
        "gtl_oracle_lifts_total",
        "Lifts driven per oracle spec.",
        "spec",
        &oracle_series,
    );
    let forward_series: Vec<(&str, u64)> = stats
        .replicas
        .iter()
        .map(|r| (r.addr.as_str(), r.forwards))
        .collect();
    let failover_series: Vec<(&str, u64)> = stats
        .replicas
        .iter()
        .map(|r| (r.addr.as_str(), r.failovers))
        .collect();
    if !stats.replicas.is_empty() {
        prom::labelled_counter(
            &mut out,
            "gtl_replica_forwards_total",
            "Requests served per replica.",
            "replica",
            &forward_series,
        );
        prom::labelled_counter(
            &mut out,
            "gtl_replica_failovers_total",
            "Mid-request failovers per replica.",
            "replica",
            &failover_series,
        );
    }
    prom::histogram(
        &mut out,
        "gtl_service_time_us",
        "Lift service time (admission to terminal event), microseconds.",
        &stats.service_time,
    );
    prom::histogram(
        &mut out,
        "gtl_queue_wait_us",
        "Lift queue wait (admission to worker pickup), microseconds.",
        &stats.queue_wait,
    );
    out
}

impl Event {
    /// Encodes as a JSON object.
    pub fn to_json(&self) -> Json {
        // `trace_id` is appended only when present, so streams from
        // servers predating the observability tier stay byte-identical.
        let with_trace = |mut fields: Vec<(&'static str, Json)>, trace_id: &Option<String>| {
            if let Some(trace_id) = trace_id {
                fields.push(("trace_id", Json::str(trace_id)));
            }
            Json::obj(fields)
        };
        match self {
            Event::Queued {
                id,
                position,
                trace_id,
            } => with_trace(
                vec![
                    ("event", Json::str("queued")),
                    ("id", Json::str(id)),
                    ("position", Json::u64(*position as u64)),
                ],
                trace_id,
            ),
            Event::SearchProgress {
                id,
                nodes,
                attempts,
                elapsed_ms,
                trace_id,
            } => with_trace(
                vec![
                    ("event", Json::str("search_progress")),
                    ("id", Json::str(id)),
                    ("nodes", Json::u64(*nodes)),
                    ("attempts", Json::u64(*attempts)),
                    ("elapsed_ms", Json::u64(*elapsed_ms)),
                ],
                trace_id,
            ),
            Event::CandidateFound {
                id,
                candidate,
                trace_id,
            } => with_trace(
                vec![
                    ("event", Json::str("candidate_found")),
                    ("id", Json::str(id)),
                    ("candidate", Json::str(candidate)),
                ],
                trace_id,
            ),
            Event::Verified {
                id,
                solution,
                trace_id,
            } => with_trace(
                vec![
                    ("event", Json::str("verified")),
                    ("id", Json::str(id)),
                    ("solution", Json::str(solution)),
                ],
                trace_id,
            ),
            Event::Done {
                id,
                solution,
                attempts,
                nodes,
                elapsed_ms,
                cached,
                trace_id,
            } => with_trace(
                vec![
                    ("event", Json::str("done")),
                    ("id", Json::str(id)),
                    ("solution", Json::str(solution)),
                    ("attempts", Json::u64(*attempts)),
                    ("nodes", Json::u64(*nodes)),
                    ("elapsed_ms", Json::u64(*elapsed_ms)),
                    ("cached", Json::Bool(*cached)),
                ],
                trace_id,
            ),
            Event::Failed {
                id,
                reason,
                detail,
                attempts,
                nodes,
                elapsed_ms,
                cached,
                trace_id,
            } => {
                let mut fields = vec![
                    ("event", Json::str("failed")),
                    ("id", Json::str(id)),
                    ("reason", Json::str(reason)),
                    ("attempts", Json::u64(*attempts)),
                    ("nodes", Json::u64(*nodes)),
                    ("elapsed_ms", Json::u64(*elapsed_ms)),
                    ("cached", Json::Bool(*cached)),
                ];
                if let Some(detail) = detail {
                    fields.push(("detail", Json::str(detail)));
                }
                with_trace(fields, trace_id)
            }
            Event::Stats { stats } => Json::obj([
                ("event", Json::str("stats")),
                ("stats", stats_to_json(stats)),
            ]),
            Event::Metrics { text } => Json::obj([
                ("event", Json::str("metrics")),
                ("text", Json::str(text)),
            ]),
            Event::Trace { trace_id, spans } => Json::obj([
                ("event", Json::str("trace")),
                ("trace_id", Json::str(trace_id)),
                (
                    "spans",
                    Json::Arr(spans.iter().map(SpanRecord::to_json).collect()),
                ),
            ]),
            Event::Shared { id, stored } => Json::obj([
                ("event", Json::str("shared")),
                ("id", Json::str(id)),
                ("stored", Json::Bool(*stored)),
            ]),
            Event::Error {
                id,
                code,
                message,
                trace_id,
            } => {
                let mut fields = vec![
                    ("event", Json::str("error")),
                    ("code", Json::str(code.wire_name())),
                    ("message", Json::str(message)),
                ];
                if let Some(id) = id {
                    fields.push(("id", Json::str(id)));
                }
                with_trace(fields, trace_id)
            }
        }
    }

    /// Encodes as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_line()
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] (`bad_json` / `bad_request`) when the
    /// line is not a well-formed event.
    pub fn parse_line(line: &str) -> Result<Event, WireError> {
        let doc = parse(line)
            .map_err(|e| WireError::new(ErrorCode::BadJson, e.to_string()))?;
        let bad = |m: String| WireError::new(ErrorCode::BadRequest, m);
        let kind = doc
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing string member `event`".into()))?;
        let id = || -> Result<String, WireError> {
            doc.get("id")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("`{kind}` requires `id`")))
        };
        let num = |k: &str| -> Result<u64, WireError> {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(format!("`{kind}` requires numeric `{k}`")))
        };
        let string = |k: &str| -> Result<String, WireError> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("`{kind}` requires string `{k}`")))
        };
        // Optional on every per-request event: absent lines (from
        // pre-observability servers) decode as `None`.
        let trace_id = || {
            doc.get("trace_id")
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        Ok(match kind {
            "queued" => Event::Queued {
                id: id()?,
                position: num("position")? as usize,
                trace_id: trace_id(),
            },
            "search_progress" => Event::SearchProgress {
                id: id()?,
                nodes: num("nodes")?,
                attempts: num("attempts")?,
                elapsed_ms: num("elapsed_ms")?,
                trace_id: trace_id(),
            },
            "candidate_found" => Event::CandidateFound {
                id: id()?,
                candidate: string("candidate")?,
                trace_id: trace_id(),
            },
            "verified" => Event::Verified {
                id: id()?,
                solution: string("solution")?,
                trace_id: trace_id(),
            },
            "done" => Event::Done {
                id: id()?,
                solution: string("solution")?,
                attempts: num("attempts")?,
                nodes: num("nodes")?,
                elapsed_ms: num("elapsed_ms")?,
                cached: doc.get("cached").and_then(Json::as_bool).unwrap_or(false),
                trace_id: trace_id(),
            },
            "failed" => Event::Failed {
                id: id()?,
                reason: string("reason")?,
                detail: doc
                    .get("detail")
                    .and_then(Json::as_str)
                    .map(str::to_string),
                attempts: doc.get("attempts").and_then(Json::as_u64).unwrap_or(0),
                nodes: doc.get("nodes").and_then(Json::as_u64).unwrap_or(0),
                elapsed_ms: doc.get("elapsed_ms").and_then(Json::as_u64).unwrap_or(0),
                cached: doc.get("cached").and_then(Json::as_bool).unwrap_or(false),
                trace_id: trace_id(),
            },
            "stats" => Event::Stats {
                stats: doc
                    .get("stats")
                    .and_then(stats_from_json)
                    .ok_or_else(|| bad("`stats` requires a `stats` object".into()))?,
            },
            "metrics" => Event::Metrics {
                text: string("text")?,
            },
            "trace" => Event::Trace {
                trace_id: string("trace_id")?,
                spans: doc
                    .get("spans")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("`trace` requires a `spans` array".into()))?
                    .iter()
                    .map(SpanRecord::from_json)
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| bad("`trace` contains a malformed span".into()))?,
            },
            "shared" => Event::Shared {
                id: id()?,
                stored: doc
                    .get("stored")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("`shared` requires boolean `stored`".into()))?,
            },
            "error" => Event::Error {
                id: doc.get("id").and_then(Json::as_str).map(str::to_string),
                code: doc
                    .get("code")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::from_wire_name)
                    .ok_or_else(|| bad("`error` requires a known `code`".into()))?,
                message: string("message")?,
                trace_id: trace_id(),
            },
            other => return Err(bad(format!("unknown event `{other}`"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let requests = [
            Request::Lift(LiftRequest::benchmark("r1", "blas_gemv")),
            Request::Lift(LiftRequest::benchmark("r1b", "blas_gemv").with_oracle("synthetic:42")),
            Request::Lift(
                LiftRequest::benchmark("r1t", "blas_gemv").with_trace_id("deadbeef01234567"),
            ),
            Request::Lift(LiftRequest {
                id: "r1c".into(),
                kernel: KernelSpec::Source {
                    label: "blind".into(),
                    source: "void f(int n, int *out) { for (int i = 0; i < n; i++) out[i] = 0; }"
                        .into(),
                    params: vec![
                        WireParam {
                            name: "n".into(),
                            kind: WireParamKind::Size { symbol: "n".into() },
                        },
                        WireParam {
                            name: "out".into(),
                            kind: WireParamKind::ArrayOut {
                                dims: vec!["n".into()],
                            },
                        },
                    ],
                    // No ground truth: legal for replay-backed lifts.
                    ground_truth: None,
                },
                oracle: Some("replay:fx.json".into()),
                overrides: ConfigOverrides::default(),
                trace_id: None,
            }),
            Request::Lift(LiftRequest {
                id: "r2".into(),
                kernel: KernelSpec::Source {
                    label: "dot".into(),
                    source: "void dot(int n, int *a, int *b, int *out) { *out = 0; \
                             for (int i = 0; i < n; i++) *out += a[i] * b[i]; }"
                        .into(),
                    params: vec![
                        WireParam {
                            name: "n".into(),
                            kind: WireParamKind::Size { symbol: "n".into() },
                        },
                        WireParam {
                            name: "a".into(),
                            kind: WireParamKind::ArrayIn {
                                dims: vec!["n".into()],
                                nonzero: false,
                            },
                        },
                        WireParam {
                            name: "b".into(),
                            kind: WireParamKind::ArrayIn {
                                dims: vec!["n".into()],
                                nonzero: true,
                            },
                        },
                        WireParam {
                            name: "out".into(),
                            kind: WireParamKind::ArrayOut { dims: vec![] },
                        },
                    ],
                    ground_truth: Some("out = a(i) * b(i)".into()),
                },
                oracle: Some("replay:fx.json".into()),
                overrides: ConfigOverrides {
                    mode: Some(SearchMode::BottomUp),
                    grammar: Some(GrammarMode::Refined),
                    search_jobs: Some(2),
                    oracle_rounds: Some(3),
                    max_attempts: Some(500),
                    max_nodes: None,
                    time_limit_ms: Some(2000),
                    timeout_ms: Some(5000),
                },
                trace_id: None,
            }),
            Request::Cancel { id: "r1".into() },
            Request::Stats,
            Request::Metrics,
            Request::Trace {
                trace_id: "deadbeef01234567".into(),
            },
            Request::ShareLift {
                id: "s1".into(),
                record: gtl_store::LiftRecord {
                    key: u64::MAX,
                    label: "blas_gemv".into(),
                    solution: Some("a(i) = b(i,j) * c(j)".into()),
                    reason: None,
                    detail: None,
                    attempts: 57,
                    nodes: 1250,
                    seconds: 0.25,
                },
            },
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_line();
            assert_eq!(
                Request::parse_line(&line).unwrap(),
                request,
                "line: {line}"
            );
        }
    }

    #[test]
    fn events_roundtrip() {
        let mut service_time = LatencyHistogram::new();
        service_time.record(1_500);
        service_time.record(92_000);
        let mut queue_wait = LatencyHistogram::new();
        queue_wait.record(40);
        let mut phase_times = PhaseTimes::new();
        phase_times.record(Phase::Search, 61_000);
        phase_times.record(Phase::Validate, 9_000);
        let events = [
            Event::Queued {
                id: "r1".into(),
                position: 3,
                trace_id: Some("deadbeef01234567".into()),
            },
            Event::SearchProgress {
                id: "r1".into(),
                nodes: 1200,
                attempts: 57,
                elapsed_ms: 40,
                trace_id: Some("deadbeef01234567".into()),
            },
            Event::CandidateFound {
                id: "r1".into(),
                candidate: "a(i) = b(i,j) * c(j)".into(),
                trace_id: None,
            },
            Event::Verified {
                id: "r1".into(),
                solution: "a(i) = b(i,j) * c(j)".into(),
                trace_id: Some("deadbeef01234567".into()),
            },
            Event::Done {
                id: "r1".into(),
                solution: "a(i) = b(i,j) * c(j)".into(),
                attempts: 57,
                nodes: 1250,
                elapsed_ms: 90,
                cached: true,
                trace_id: Some("deadbeef01234567".into()),
            },
            Event::Failed {
                id: "r2".into(),
                reason: "budget_exceeded".into(),
                detail: None,
                attempts: 30_000,
                nodes: 412_007,
                elapsed_ms: 9_800,
                cached: false,
                trace_id: None,
            },
            Event::Failed {
                id: "r3".into(),
                reason: "bad_query".into(),
                detail: Some("no binding for size symbol `n`".into()),
                attempts: 0,
                nodes: 0,
                elapsed_ms: 2,
                cached: false,
                trace_id: Some("cafe000000000001".into()),
            },
            Event::Metrics {
                text: "# HELP gtl_received_total x\ngtl_received_total 2\n".into(),
            },
            Event::Trace {
                trace_id: "deadbeef01234567".into(),
                spans: vec![
                    SpanRecord {
                        trace_id: "deadbeef01234567".into(),
                        request_id: "r1".into(),
                        name: "queue_wait".into(),
                        start_ms: 12,
                        dur_us: 830,
                    },
                    SpanRecord {
                        trace_id: "deadbeef01234567".into(),
                        request_id: "r1".into(),
                        name: "search".into(),
                        start_ms: 13,
                        dur_us: 61_000,
                    },
                ],
            },
            Event::Trace {
                trace_id: "unknown".into(),
                spans: Vec::new(),
            },
            Event::Stats {
                stats: ServerStats {
                    received: 10,
                    completed: 7,
                    failed: 1,
                    cancelled: 1,
                    rejected: 1,
                    cache_hits: 3,
                    cache_misses: 7,
                    queued: 0,
                    active: 1,
                    workers: 4,
                    providers_built: 2,
                    store_loaded: 5,
                    store_appended: 4,
                    store_compactions: 1,
                    oracles: vec![
                        OracleStat {
                            spec: "replay:fx.json".into(),
                            lifts: 2,
                        },
                        OracleStat {
                            spec: "synthetic".into(),
                            lifts: 5,
                        },
                    ],
                    peak_queued: 6,
                    worker_inflight: vec![1, 0, 1, 0],
                    done_events: 7,
                    failed_events: 1,
                    error_events: 2,
                    shared_events: 3,
                    replicas: vec![
                        ReplicaStat {
                            addr: "127.0.0.1:7191".into(),
                            forwards: 9,
                            failovers: 1,
                        },
                        ReplicaStat {
                            addr: "127.0.0.1:7192".into(),
                            forwards: 4,
                            failovers: 0,
                        },
                    ],
                    pruned_infeasible: 120,
                    pruned_equivalent: 45,
                    unchecked_kernels: 88,
                    service_time,
                    queue_wait,
                    phase_times,
                },
            },
            Event::Shared {
                id: "s1".into(),
                stored: true,
            },
            Event::Shared {
                id: "s2".into(),
                stored: false,
            },
            Event::Error {
                id: Some("r9".into()),
                code: ErrorCode::QueueFull,
                message: "queue is at capacity (64)".into(),
                trace_id: None,
            },
            Event::Error {
                id: Some("r10".into()),
                code: ErrorCode::ReplicaUnavailable,
                message: "all 2 replicas unavailable".into(),
                trace_id: Some("deadbeef01234567".into()),
            },
            Event::Error {
                id: None,
                code: ErrorCode::BadJson,
                message: "invalid JSON at byte 0: unexpected `x`".into(),
                trace_id: None,
            },
        ];
        for event in events {
            let line = event.to_line();
            assert_eq!(Event::parse_line(&line).unwrap(), event, "line: {line}");
        }
    }

    #[test]
    fn stats_from_pre_gauge_servers_decode_with_defaults() {
        // A PR 3-era stats line: none of the gauge/counter fields.
        let line = r#"{"event":"stats","stats":{"received":2,"completed":2,"failed":0,"cancelled":0,"rejected":0,"cache_hits":1,"cache_misses":1,"queued":0,"active":0,"workers":1}}"#;
        let Event::Stats { stats } = Event::parse_line(line).unwrap() else {
            panic!("not a stats event");
        };
        assert_eq!(stats.received, 2);
        assert_eq!(stats.peak_queued, 0);
        assert!(stats.worker_inflight.is_empty());
        assert_eq!(stats.done_events, 0);
        assert!(stats.replicas.is_empty());
        // Observability fields postdate PR 10: empty, not an error.
        assert!(stats.service_time.is_empty());
        assert!(stats.queue_wait.is_empty());
        assert!(stats.phase_times.is_empty());
    }

    #[test]
    fn registry_covers_every_scalar_field() {
        // A scalar field added to `ServerStats` without a registry row
        // would silently vanish from encode/decode/merge/Prometheus.
        // `Json::Obj` keeps insertion order and the registry drives
        // encoding, so the encoded key set pins the registry: this
        // fails (count mismatch) until the new field gets its row.
        let encoded = stats_to_json(&ServerStats::default());
        let Json::Obj(fields) = &encoded else {
            panic!("stats must encode as an object");
        };
        let composite = ["oracles", "worker_inflight", "replicas", "service_time", "queue_wait", "phase_times"];
        let scalars: Vec<&str> = fields
            .keys()
            .map(|k| k.as_str())
            .filter(|k| !composite.contains(k))
            .collect();
        assert_eq!(scalars.len(), STAT_FIELDS.len());
        for f in STAT_FIELDS {
            assert!(scalars.contains(&f.name), "field {} missing", f.name);
        }
        // Setting through the registry round-trips through the getter.
        let mut stats = ServerStats::default();
        for (n, f) in STAT_FIELDS.iter().enumerate() {
            (f.set)(&mut stats, n as u64 + 1);
        }
        for (n, f) in STAT_FIELDS.iter().enumerate() {
            assert_eq!((f.get)(&stats), n as u64 + 1, "field {}", f.name);
        }
    }

    #[test]
    fn merge_stats_sums_every_field_and_breakdown() {
        let mut a = ServerStats::default();
        for f in STAT_FIELDS {
            (f.set)(&mut a, 10);
        }
        a.oracles = vec![OracleStat {
            spec: "synthetic".into(),
            lifts: 3,
        }];
        a.replicas = vec![ReplicaStat {
            addr: "h:1".into(),
            forwards: 2,
            failovers: 1,
        }];
        a.worker_inflight = vec![1];
        a.service_time.record(100);
        a.queue_wait.record(5);
        a.phase_times.record(Phase::Oracle, 40);

        let mut b = ServerStats::default();
        for f in STAT_FIELDS {
            (f.set)(&mut b, 7);
        }
        b.oracles = vec![
            OracleStat {
                spec: "replay:fx".into(),
                lifts: 1,
            },
            OracleStat {
                spec: "synthetic".into(),
                lifts: 4,
            },
        ];
        b.replicas = vec![ReplicaStat {
            addr: "h:2".into(),
            forwards: 9,
            failovers: 0,
        }];
        b.worker_inflight = vec![0, 1];
        b.service_time.record(900);
        b.phase_times.record(Phase::Oracle, 2);
        b.phase_times.record(Phase::Search, 11);

        let mut merged = a.clone();
        merge_stats(&mut merged, &b);
        for f in STAT_FIELDS {
            assert_eq!((f.get)(&merged), 17, "field {} not summed", f.name);
        }
        assert_eq!(
            merged.oracles,
            vec![
                OracleStat {
                    spec: "replay:fx".into(),
                    lifts: 1
                },
                OracleStat {
                    spec: "synthetic".into(),
                    lifts: 7
                },
            ]
        );
        assert_eq!(merged.replicas.len(), 2);
        assert_eq!(merged.worker_inflight, vec![1, 0, 1]);
        assert_eq!(merged.service_time.count(), 2);
        assert_eq!(merged.service_time.sum_us(), 1_000);
        assert_eq!(merged.queue_wait.count(), 1);
        assert_eq!(merged.phase_times.get(Phase::Oracle), 42);
        assert_eq!(merged.phase_times.get(Phase::Search), 11);
    }

    #[test]
    fn prometheus_rendering_covers_the_registry() {
        let mut stats = ServerStats {
            received: 5,
            queued: 2,
            oracles: vec![OracleStat {
                spec: "synthetic".into(),
                lifts: 5,
            }],
            ..ServerStats::default()
        };
        stats.service_time.record(1_000);
        stats.queue_wait.record(30);
        stats.phase_times.record(Phase::Search, 800);
        let text = render_prometheus(&stats);
        // Counters get the _total convention, gauges keep their name.
        assert!(text.contains("# TYPE gtl_received_total counter\n"));
        assert!(text.contains("gtl_received_total 5\n"));
        assert!(text.contains("# TYPE gtl_queued gauge\n"));
        assert!(text.contains("gtl_queued 2\n"));
        // Every registry row renders.
        for f in STAT_FIELDS {
            let name = match f.kind {
                MetricKind::Counter => format!("gtl_{}_total", f.name),
                MetricKind::Gauge => format!("gtl_{}", f.name),
            };
            assert!(text.contains(&format!("# HELP {name} ")), "{name} missing");
        }
        // Labelled and histogram series.
        assert!(text.contains("gtl_phase_us_total{phase=\"search\"} 800\n"));
        assert!(text.contains("gtl_phase_us_total{phase=\"oracle\"} 0\n"));
        assert!(text.contains("gtl_oracle_lifts_total{spec=\"synthetic\"} 5\n"));
        assert!(text.contains("gtl_service_time_us_count 1\n"));
        assert!(text.contains("gtl_queue_wait_us_sum 30\n"));
        // No replicas configured: the per-replica series are absent.
        assert!(!text.contains("gtl_replica_forwards_total"));
    }

    #[test]
    fn terminal_classification() {
        assert!(Event::Done {
            id: "a".into(),
            solution: String::new(),
            attempts: 0,
            nodes: 0,
            elapsed_ms: 0,
            cached: false,
            trace_id: None
        }
        .is_terminal());
        assert!(Event::Error {
            id: None,
            code: ErrorCode::BadJson,
            message: String::new(),
            trace_id: None
        }
        .is_terminal());
        assert!(!Event::Queued {
            id: "a".into(),
            position: 1,
            trace_id: None
        }
        .is_terminal());
        // The metrics/trace answers never close a lift stream.
        assert!(!Event::Metrics {
            text: String::new()
        }
        .is_terminal());
        assert!(!Event::Trace {
            trace_id: "t".into(),
            spans: Vec::new()
        }
        .is_terminal());
    }

    #[test]
    fn trace_id_stamping_fills_only_unset_events() {
        let mut event = Event::Queued {
            id: "a".into(),
            position: 1,
            trace_id: None,
        };
        event.set_trace_id("cafe000000000001");
        assert_eq!(event.trace_id(), Some("cafe000000000001"));
        // An already-attributed event keeps its ID.
        event.set_trace_id("0000000000000000");
        assert_eq!(event.trace_id(), Some("cafe000000000001"));
        // Variants without the field are a no-op.
        let mut stats = Event::Stats {
            stats: ServerStats::default(),
        };
        stats.set_trace_id("cafe000000000001");
        assert_eq!(stats.trace_id(), None);
    }

    #[test]
    fn malformed_requests_are_classified() {
        let e = Request::parse_line("not json").unwrap_err();
        assert_eq!(e.code, ErrorCode::BadJson);
        let e = Request::parse_line(r#"{"id":"x"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert_eq!(e.id.as_deref(), Some("x"), "id extracted for routing");
        let e = Request::parse_line(r#"{"type":"lift","id":"y"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e =
            Request::parse_line(r#"{"type":"lift","id":"y","benchmark":"b","config":{"mode":"zz"}}"#)
                .unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
    }

    #[test]
    fn overrides_apply_to_base_config() {
        let o = ConfigOverrides {
            mode: Some(SearchMode::BottomUp),
            search_jobs: Some(0),
            oracle_rounds: Some(2),
            max_attempts: Some(123),
            time_limit_ms: Some(1500),
            ..ConfigOverrides::default()
        };
        let cfg = o.apply(&StaggConfig::top_down());
        assert_eq!(cfg.mode, SearchMode::BottomUp);
        assert_eq!(cfg.jobs, 1, "search_jobs 0 is clamped to 1");
        assert_eq!(cfg.oracle_rounds, 2);
        assert_eq!(cfg.budget.max_attempts, 123);
        assert_eq!(cfg.budget.time_limit, std::time::Duration::from_millis(1500));
        assert!(ConfigOverrides::default().is_empty());
    }
}
