//! The lift router: one front door for a replica set of lift servers.
//!
//! Clients speak the unchanged JSON-lines protocol to the router; the
//! router consistent-hash routes each lift to a replica by the same
//! normalized request hash the servers key their caches with
//! ([`crate::cache::request_key`]), forwards the replica's event stream
//! verbatim, and fails over to the next candidate replica when one
//! refuses the connection or dies mid-stream. Only when *every*
//! candidate has failed does the client see an error — the typed
//! `replica_unavailable` code.
//!
//! ```text
//!  clients ──lines──▶ lift_router ──hash(key)──▶ replica A ◀─┐
//!                         │                      replica B ◀─┼─ share_lift
//!                         └── stats fan-out ───▶ replica C ◀─┘   (peers)
//! ```
//!
//! Consistent hashing (a ring of virtual nodes) keeps the mapping
//! stable: when a replica disappears, only the keys it owned move, so
//! the surviving replicas keep answering their repeats from warm
//! caches. Replica lift-sharing (the servers' `--peers` push) makes
//! even the moved keys warm on arrival.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gtl::StaggConfig;
use gtl_trace::{new_trace_id, SpanRecord};

use crate::cache::request_key;
use crate::protocol::{
    merge_stats, render_prometheus, ErrorCode, Event, LiftRequest, ReplicaStat, Request,
    ServerStats, WireError,
};
use crate::server::{resolve_query, EventSink, LineAction};
use crate::transport::LineHandler;

/// A consistent-hash ring over replica addresses. Each replica owns
/// `vnodes` points on a `u64` ring; a key is served by the replica
/// owning the first point at or after it (wrapping), and its failover
/// candidates are the *distinct* replicas met while walking on. Removing
/// a replica only remaps the keys it owned — every other key keeps its
/// primary, which is what keeps replica caches warm across topology
/// changes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, replica index)`, sorted by point.
    points: Vec<(u64, usize)>,
    replicas: Vec<String>,
}

impl HashRing {
    /// Builds a ring of `vnodes` points per replica (minimum 1;
    /// typically 64 — enough to spread ownership evenly without making
    /// candidate walks expensive).
    pub fn new(replicas: Vec<String>, vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(replicas.len() * vnodes);
        for (index, addr) in replicas.iter().enumerate() {
            for vnode in 0..vnodes {
                let mut h = DefaultHasher::new();
                addr.hash(&mut h);
                vnode.hash(&mut h);
                points.push((h.finish(), index));
            }
        }
        points.sort_unstable();
        HashRing { points, replicas }
    }

    /// The replicas on the ring, in configuration order.
    pub fn replicas(&self) -> &[String] {
        &self.replicas
    }

    /// Every replica, ordered by preference for `key`: the owner first,
    /// then each distinct replica met walking the ring — the failover
    /// order. Empty only for an empty ring.
    pub fn candidates(&self, key: u64) -> Vec<&str> {
        let mut order: Vec<&str> = Vec::with_capacity(self.replicas.len());
        let mut seen = vec![false; self.replicas.len()];
        let start = self.points.partition_point(|(point, _)| *point < key);
        for n in 0..self.points.len() {
            let (_, index) = self.points[(start + n) % self.points.len()];
            if !seen[index] {
                seen[index] = true;
                order.push(self.replicas[index].as_str());
                if order.len() == self.replicas.len() {
                    break;
                }
            }
        }
        order
    }

    /// The replica owning `key` (its first candidate).
    pub fn primary(&self, key: u64) -> Option<&str> {
        self.candidates(key).first().copied()
    }
}

/// Router construction knobs.
#[derive(Clone)]
pub struct RouterConfig {
    /// The replica addresses (`host:port`). Order is irrelevant to
    /// routing — placement comes from the hash ring.
    pub replicas: Vec<String>,
    /// Virtual nodes per replica on the hash ring.
    pub vnodes: usize,
    /// Per-attempt connect timeout; a replica that cannot accept within
    /// it is treated as down and the next candidate is tried.
    pub connect_timeout: Duration,
    /// The base configuration used to resolve routing keys. It only has
    /// to be *stable* — repeats of a request must hash alike so they
    /// reach the replica that cached the answer — so the default
    /// matches the servers' own default base.
    pub base: StaggConfig,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            replicas: Vec::new(),
            vnodes: 64,
            connect_timeout: Duration::from_secs(5),
            base: StaggConfig::top_down(),
        }
    }
}

/// One in-flight forwarded lift, tracked for cancel routing.
struct Inflight {
    /// The replica currently streaming this lift, once connected.
    addr: Option<String>,
    /// Set by a `cancel` that raced the forwarding thread between
    /// replicas; the thread honours it before its next attempt.
    cancelled: bool,
}

/// Per-replica routing outcome counters, kept by the router itself
/// (replicas cannot see their own failures — a dead replica reports
/// nothing). Surfaced through the `stats` fan-out as
/// [`ServerStats::replicas`].
#[derive(Debug, Default)]
struct ReplicaCounters {
    /// Streams this replica carried to a proper terminal event.
    forwards: AtomicU64,
    /// Attempts this replica failed (connect refused, died mid-stream),
    /// sending the router on to the next candidate.
    failovers: AtomicU64,
}

/// Shared state of a running [`LiftRouter`].
struct RouterState {
    config: RouterConfig,
    ring: HashRing,
    /// Forwarding threads still running; `drain` waits on it so the
    /// stdio batch idiom (EOF, then exit) flushes every stream.
    outstanding: AtomicU64,
    /// Routing outcomes per replica address; the set is fixed at
    /// construction, so plain atomics suffice.
    counters: HashMap<String, ReplicaCounters>,
}

impl RouterState {
    /// Bumps the forward (terminal stream delivered) counter for `addr`.
    fn count_forward(&self, addr: &str) {
        if let Some(c) = self.counters.get(addr) {
            c.forwards.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Bumps the failover (replica attempt failed) counter for `addr`.
    fn count_failover(&self, addr: &str) {
        if let Some(c) = self.counters.get(addr) {
            c.failovers.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The counters as wire-format rows, sorted by address for stable
    /// output.
    fn replica_stats(&self) -> Vec<ReplicaStat> {
        let mut rows: Vec<ReplicaStat> = self
            .counters
            .iter()
            .map(|(addr, c)| ReplicaStat {
                addr: addr.clone(),
                forwards: c.forwards.load(Ordering::Relaxed),
                failovers: c.failovers.load(Ordering::Relaxed),
            })
            .collect();
        rows.sort_by(|a, b| a.addr.cmp(&b.addr));
        rows
    }
}

/// The router itself: build once, then create one [`RouterHandle`] per
/// client connection.
pub struct LiftRouter {
    state: Arc<RouterState>,
}

impl LiftRouter {
    /// Builds the ring and the shared state.
    pub fn new(config: RouterConfig) -> LiftRouter {
        let ring = HashRing::new(config.replicas.clone(), config.vnodes);
        let counters = config
            .replicas
            .iter()
            .map(|addr| (addr.clone(), ReplicaCounters::default()))
            .collect();
        LiftRouter {
            state: Arc::new(RouterState {
                config,
                ring,
                outstanding: AtomicU64::new(0),
                counters,
            }),
        }
    }

    /// A handler for one client connection (its own request-id
    /// namespace, like [`crate::LiftServer::handle`]).
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            state: Arc::clone(&self.state),
            inflight: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Blocks until every forwarded stream has terminated — the router
    /// side of the batch idiom.
    pub fn drain(&self) {
        while self.state.outstanding.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// One client connection's router-side processor.
#[derive(Clone)]
pub struct RouterHandle {
    state: Arc<RouterState>,
    /// This connection's in-flight lifts by request id.
    inflight: Arc<Mutex<HashMap<String, Inflight>>>,
}

/// What one replica attempt produced.
enum Attempt {
    /// The stream terminated properly; the lift is finished.
    Finished,
    /// The replica was unusable (connect failure, mid-stream death);
    /// try the next candidate.
    Failed(String),
}

impl RouterHandle {
    /// Parses and executes one wire line, mirroring
    /// [`crate::ServerHandle::handle_line`]: lifts are routed and
    /// forwarded in the background, cancels chase their lift's replica,
    /// stats fan out, `share_lift` routes by the record's own key, and
    /// `shutdown` is broadcast before shutting the router down.
    pub fn handle_line(&self, line: &str, sink: &EventSink) -> LineAction {
        let line = line.trim();
        if line.is_empty() {
            return LineAction::Continue;
        }
        match Request::parse_line(line) {
            Err(e) => sink(&e.to_event()),
            Ok(Request::Lift(request)) => self.submit(request, sink),
            Ok(Request::Cancel { id }) => self.cancel(&id, sink),
            Ok(Request::Stats) => sink(&Event::Stats {
                stats: self.fanout_stats(),
            }),
            Ok(Request::Metrics) => sink(&Event::Metrics {
                // Rendered over the merged snapshot, so one scrape of
                // the router covers the whole replica set.
                text: render_prometheus(&self.fanout_stats()),
            }),
            Ok(Request::Trace { trace_id }) => sink(&Event::Trace {
                spans: self.fanout_trace(&trace_id),
                trace_id,
            }),
            Ok(Request::ShareLift { id, record }) => {
                // Routed like a lift of the same key, so the record
                // lands on the replica that would serve its repeats.
                let key = record.key;
                self.forward_one_shot(Request::ShareLift { id: id.clone(), record }, id, key, sink);
            }
            Ok(Request::Shutdown) => {
                for addr in self.state.ring.replicas() {
                    if let Err(e) = self.send_line(addr, &Request::Shutdown.to_line()) {
                        eprintln!("lift_router: shutdown of {addr} failed: {e}");
                    }
                }
                return LineAction::Shutdown;
            }
        }
        LineAction::Continue
    }

    /// Routes one lift: resolve the query locally (resolution errors
    /// never need a replica), hash it, and forward in the background so
    /// the connection keeps accepting lines while the lift streams.
    fn submit(&self, mut request: LiftRequest, sink: &EventSink) {
        // The trace ID is stamped here, before the request line is
        // built, so every failover attempt re-sends the same ID and the
        // stream keeps one identity across replicas.
        if request.trace_id.is_none() {
            request.trace_id = Some(new_trace_id());
        }
        let id = request.id.clone();
        let query = match resolve_query(&request) {
            Ok(query) => query,
            Err(e) => {
                sink(&e.to_event());
                return;
            }
        };
        let config = request.overrides.apply(&self.state.config.base);
        let key = request_key(&query, &config);
        {
            let mut inflight = self.inflight.lock().expect("inflight poisoned");
            if inflight.contains_key(&id) {
                sink(&WireError::new(
                    ErrorCode::DuplicateId,
                    format!("request `{id}` is still in flight"),
                )
                .with_id(id.clone())
                .to_event());
                return;
            }
            inflight.insert(
                id.clone(),
                Inflight {
                    addr: None,
                    cancelled: false,
                },
            );
        }
        let this = self.clone();
        let background_sink = Arc::clone(sink);
        let thread_id = id.clone();
        self.state.outstanding.fetch_add(1, Ordering::AcqRel);
        let spawned = std::thread::Builder::new()
            .name(format!("gtl-route-{id}"))
            .spawn(move || {
                this.forward_lift(&thread_id, &request, key, &background_sink);
                this.inflight
                    .lock()
                    .expect("inflight poisoned")
                    .remove(&thread_id);
                this.state.outstanding.fetch_sub(1, Ordering::AcqRel);
            });
        if let Err(e) = spawned {
            // Could not even spawn: finish the stream synchronously.
            self.inflight.lock().expect("inflight poisoned").remove(&id);
            self.state.outstanding.fetch_sub(1, Ordering::AcqRel);
            sink(&Event::Error {
                id: Some(id),
                code: ErrorCode::ReplicaUnavailable,
                message: format!("could not spawn forwarding thread: {e}"),
                trace_id: None,
            });
        }
    }

    /// Walks the candidate replicas for `key` until one streams the
    /// lift to termination, emitting `replica_unavailable` when all are
    /// exhausted. Each failover re-sends the full request; `queued`
    /// events after the first are suppressed so the client still sees a
    /// well-formed stream.
    fn forward_lift(&self, id: &str, request: &LiftRequest, key: u64, sink: &EventSink) {
        let line = Request::Lift(request.clone()).to_line();
        let candidates: Vec<String> = self
            .state
            .ring
            .candidates(key)
            .into_iter()
            .map(str::to_string)
            .collect();
        let mut queued_seen = false;
        let mut last_failure = String::from("no replicas configured");
        for addr in &candidates {
            if self.cancelled(id) {
                // The cancel raced us between replicas, so no replica
                // will terminate the stream — close it here.
                sink(&Event::Failed {
                    id: id.to_string(),
                    reason: "cancelled".into(),
                    detail: None,
                    attempts: 0,
                    nodes: 0,
                    elapsed_ms: 0,
                    cached: false,
                    trace_id: request.trace_id.clone(),
                });
                return;
            }
            match self.stream_from(addr, id, &line, &mut queued_seen, sink) {
                Attempt::Finished => {
                    self.state.count_forward(addr);
                    return;
                }
                Attempt::Failed(reason) => {
                    self.state.count_failover(addr);
                    eprintln!("lift_router: replica {addr} failed for `{id}`: {reason}");
                    last_failure = format!("{addr}: {reason}");
                }
            }
        }
        sink(&Event::Error {
            id: Some(id.to_string()),
            code: ErrorCode::ReplicaUnavailable,
            message: format!(
                "all {} candidate replica(s) failed (last: {last_failure})",
                candidates.len()
            ),
            trace_id: request.trace_id.clone(),
        });
    }

    /// One replica attempt: connect, send, forward events until a
    /// terminal one. A connect failure or an EOF before the terminal
    /// event is a replica failure; everything already forwarded stands
    /// (the stream simply continues from the next replica).
    fn stream_from(
        &self,
        addr: &str,
        id: &str,
        line: &str,
        queued_seen: &mut bool,
        sink: &EventSink,
    ) -> Attempt {
        let stream = match self.connect(addr) {
            Ok(stream) => stream,
            Err(e) => return Attempt::Failed(format!("connect: {e}")),
        };
        {
            let mut stream = &stream;
            if let Err(e) = stream
                .write_all(format!("{line}\n").as_bytes())
                .and_then(|()| stream.flush())
            {
                return Attempt::Failed(format!("send: {e}"));
            }
        }
        // Record where the lift runs so a later `cancel` can chase it.
        if let Some(entry) = self
            .inflight
            .lock()
            .expect("inflight poisoned")
            .get_mut(id)
        {
            entry.addr = Some(addr.to_string());
        }
        let mut reader = BufReader::new(stream);
        let mut buf = String::new();
        loop {
            buf.clear();
            match reader.read_line(&mut buf) {
                Err(e) => return Attempt::Failed(format!("read: {e}")),
                Ok(0) => return Attempt::Failed("disconnected mid-stream".into()),
                Ok(_) => {}
            }
            let trimmed = buf.trim();
            if trimmed.is_empty() {
                continue;
            }
            let event = match Event::parse_line(trimmed) {
                Ok(event) => event,
                Err(e) => return Attempt::Failed(format!("bad event line: {e}")),
            };
            if let Event::Queued { .. } = &event {
                // A failover re-admission duplicates `queued`; the
                // client already saw the stream open.
                if *queued_seen {
                    continue;
                }
                *queued_seen = true;
            }
            let terminal = event.is_terminal();
            sink(&event);
            if terminal {
                return Attempt::Finished;
            }
        }
    }

    /// Routes a cancel to the replica streaming the lift. The terminal
    /// `failed`/`cancelled` event arrives through the lift's own
    /// forwarded stream; an id this connection never submitted (or that
    /// already finished) is answered with `unknown_request`, matching
    /// the server's behaviour.
    fn cancel(&self, id: &str, sink: &EventSink) {
        let addr = {
            let mut inflight = self.inflight.lock().expect("inflight poisoned");
            match inflight.get_mut(id) {
                None => {
                    sink(&Event::Error {
                        id: Some(id.to_string()),
                        code: ErrorCode::UnknownRequest,
                        message: format!("no queued or running lift `{id}`"),
                        trace_id: None,
                    });
                    return;
                }
                Some(entry) => {
                    entry.cancelled = true;
                    entry.addr.clone()
                }
            }
        };
        // Chase the lift on a fresh connection; the replica's
        // `cancel_any_client` reaches it across connections. Without an
        // address yet, the cancelled flag above is enough — the
        // forwarding thread checks it before its next attempt.
        if let Some(addr) = addr {
            let cancel = Request::Cancel { id: id.to_string() }.to_line();
            if let Err(e) = self.send_line(&addr, &cancel) {
                eprintln!("lift_router: cancel of `{id}` at {addr} failed: {e}");
            }
        }
    }

    /// Fans a `stats` request out to every replica and sums the
    /// snapshots; unreachable replicas contribute nothing (the router
    /// serves what the survivors report). The router attaches its own
    /// per-replica forward/failover counters as
    /// [`ServerStats::replicas`] — failures are visible only from the
    /// routing side, since a dead replica reports nothing.
    fn fanout_stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for addr in self.state.ring.replicas() {
            match self.request_stats(addr) {
                // The registry-driven merge sums every scalar, oracle
                // row, histogram bucket and phase total — a metric
                // added to `ServerStats` cannot silently vanish here.
                Ok(stats) => merge_stats(&mut total, &stats),
                Err(e) => eprintln!("lift_router: stats from {addr} failed: {e}"),
            }
        }
        total.replicas = self.state.replica_stats();
        total
    }

    /// Fans a `trace` request out to every replica and concatenates the
    /// spans — a failed-over lift leaves spans on more than one replica,
    /// and the client should see all of them under the one trace ID.
    fn fanout_trace(&self, trace_id: &str) -> Vec<SpanRecord> {
        let line = Request::Trace {
            trace_id: trace_id.to_string(),
        }
        .to_line();
        let mut spans = Vec::new();
        for addr in self.state.ring.replicas() {
            match self.exchange(addr, &line) {
                Ok(Event::Trace { spans: replica, .. }) => spans.extend(replica),
                Ok(other) => eprintln!(
                    "lift_router: trace from {addr}: expected a trace event, got {}",
                    other.to_line()
                ),
                Err(e) => eprintln!("lift_router: trace from {addr} failed: {e}"),
            }
        }
        spans
    }

    /// Forwards a single request/single ack exchange (`share_lift`)
    /// through the candidate walk for `key`, in the background.
    fn forward_one_shot(&self, request: Request, id: String, key: u64, sink: &EventSink) {
        let this = self.clone();
        let sink_for_thread = Arc::clone(sink);
        self.state.outstanding.fetch_add(1, Ordering::AcqRel);
        let spawned = std::thread::Builder::new()
            .name(format!("gtl-route-{id}"))
            .spawn(move || {
                let sink = sink_for_thread;
                let line = request.to_line();
                let mut last_failure = String::from("no replicas configured");
                let candidates: Vec<String> = this
                    .state
                    .ring
                    .candidates(key)
                    .into_iter()
                    .map(str::to_string)
                    .collect();
                for addr in &candidates {
                    match this.exchange(addr, &line) {
                        Ok(event) => {
                            this.state.count_forward(addr);
                            sink(&event);
                            this.state.outstanding.fetch_sub(1, Ordering::AcqRel);
                            return;
                        }
                        Err(e) => {
                            this.state.count_failover(addr);
                            last_failure = format!("{addr}: {e}");
                        }
                    }
                }
                sink(&Event::Error {
                    id: Some(id),
                    code: ErrorCode::ReplicaUnavailable,
                    message: format!(
                        "all {} candidate replica(s) failed (last: {last_failure})",
                        candidates.len()
                    ),
                    trace_id: None,
                });
                this.state.outstanding.fetch_sub(1, Ordering::AcqRel);
            });
        if let Err(e) = spawned {
            self.state.outstanding.fetch_sub(1, Ordering::AcqRel);
            sink(&Event::Error {
                id: None,
                code: ErrorCode::ReplicaUnavailable,
                message: format!("could not spawn forwarding thread: {e}"),
                trace_id: None,
            });
        }
    }

    /// Connects to a replica within the configured timeout.
    fn connect(&self, addr: &str) -> std::io::Result<TcpStream> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("`{addr}` resolves to no address"),
            )
        })?;
        TcpStream::connect_timeout(&resolved, self.state.config.connect_timeout)
    }

    /// Fire-and-forget one line to a replica (cancel, shutdown).
    fn send_line(&self, addr: &str, line: &str) -> std::io::Result<()> {
        let mut stream = self.connect(addr)?;
        stream.write_all(format!("{line}\n").as_bytes())?;
        stream.flush()
    }

    /// One line out, one event back.
    fn exchange(&self, addr: &str, line: &str) -> std::io::Result<Event> {
        let stream = self.connect(addr)?;
        stream.set_read_timeout(Some(self.state.config.connect_timeout))?;
        {
            let mut stream = &stream;
            stream.write_all(format!("{line}\n").as_bytes())?;
            stream.flush()?;
        }
        let mut reader = BufReader::new(stream);
        let mut buf = String::new();
        if reader.read_line(&mut buf)? == 0 {
            return Err(std::io::Error::other("disconnected before the answer"));
        }
        Event::parse_line(buf.trim())
            .map_err(|e| std::io::Error::other(format!("bad event line: {e}")))
    }

    /// One stats exchange with a replica.
    fn request_stats(&self, addr: &str) -> std::io::Result<ServerStats> {
        match self.exchange(addr, &Request::Stats.to_line())? {
            Event::Stats { stats } => Ok(stats),
            other => Err(std::io::Error::other(format!(
                "expected a stats event, got {}",
                other.to_line()
            ))),
        }
    }

    /// Whether a cancel has been recorded for `id`.
    fn cancelled(&self, id: &str) -> bool {
        self.inflight
            .lock()
            .expect("inflight poisoned")
            .get(id)
            .is_some_and(|entry| entry.cancelled)
    }
}

impl LineHandler for RouterHandle {
    fn handle_line(&self, line: &str, sink: &EventSink) -> LineAction {
        RouterHandle::handle_line(self, line, sink)
    }

    fn on_disconnect(&self) {
        // The client is gone: chase every lift it still has running so
        // replicas stop burning workers on unobservable work.
        let targets: Vec<(String, Option<String>)> = {
            let mut inflight = self.inflight.lock().expect("inflight poisoned");
            inflight
                .iter_mut()
                .map(|(id, entry)| {
                    entry.cancelled = true;
                    (id.clone(), entry.addr.clone())
                })
                .collect()
        };
        for (id, addr) in targets {
            if let Some(addr) = addr {
                let cancel = Request::Cancel { id: id.clone() }.to_line();
                if let Err(e) = self.send_line(&addr, &cancel) {
                    eprintln!("lift_router: disconnect cancel of `{id}` at {addr} failed: {e}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> HashRing {
        HashRing::new(
            (0..n).map(|i| format!("replica-{i}:7000")).collect(),
            64,
        )
    }

    #[test]
    fn candidates_are_distinct_and_complete() {
        let ring = ring(3);
        for key in [0u64, 1, u64::MAX, 0xdead_beef, 1 << 53] {
            let c = ring.candidates(key);
            assert_eq!(c.len(), 3, "every replica is a candidate");
            let mut sorted: Vec<&str> = c.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "candidates are distinct: {c:?}");
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let a = ring(5);
        let b = ring(5);
        for key in 0..1000u64 {
            let key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            assert_eq!(a.candidates(key), b.candidates(key));
        }
    }

    #[test]
    fn removal_only_remaps_the_lost_replicas_keys() {
        let full = ring(4);
        // The same replicas minus one, as a config change would spell it.
        let survivors: Vec<String> = full
            .replicas()
            .iter()
            .filter(|addr| *addr != "replica-2:7000")
            .cloned()
            .collect();
        let reduced = HashRing::new(survivors, 64);
        let mut moved = 0usize;
        let total = 2000usize;
        for n in 0..total {
            let key = (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let before = full.primary(key).unwrap();
            let after = reduced.primary(key).unwrap();
            if before == "replica-2:7000" {
                // Orphaned keys must land on the old first-failover
                // candidate — exactly where retried requests already
                // went while the replica was down.
                assert_eq!(after, full.candidates(key)[1]);
            } else {
                assert_eq!(before, after, "key {key:#x} moved without cause");
                continue;
            }
            moved += 1;
        }
        // Ownership is roughly even, so about a quarter moves — and
        // *only* that quarter (asserted exactly above); this bound just
        // documents the magnitude.
        assert!(
            moved < total / 2,
            "removal remapped {moved}/{total} keys — not consistent hashing"
        );
    }

    #[test]
    fn empty_ring_has_no_candidates() {
        let ring = HashRing::new(Vec::new(), 64);
        assert!(ring.candidates(42).is_empty());
        assert!(ring.primary(42).is_none());
    }
}
