//! The line transports shared by `lift_server` and `lift_router`: one
//! JSON line in, a stream of event lines out, over stdin/stdout or TCP.
//!
//! Both binaries speak the same wire protocol and differ only in what a
//! line *does* — the server admits it to the job queue, the router
//! forwards it to a replica. [`LineHandler`] captures that difference;
//! [`serve_stdio`] and [`serve_listener`] own the loops, so the
//! transports are written (and tested) once.

use std::io::{BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol::Event;
use crate::server::{EventSink, LineAction, ServerHandle};

/// One connection's request processor: the server and the router each
/// implement it, and the transports below drive it. A fresh handler is
/// created per connection (its request-id namespace), so implementations
/// may keep per-connection state behind `&self`.
pub trait LineHandler {
    /// Executes one wire line; events (including errors) go to `sink`.
    fn handle_line(&self, line: &str, sink: &EventSink) -> LineAction;

    /// The connection went away without a `shutdown` request: stop any
    /// work the peer can no longer observe.
    fn on_disconnect(&self) {}
}

impl LineHandler for ServerHandle {
    fn handle_line(&self, line: &str, sink: &EventSink) -> LineAction {
        ServerHandle::handle_line(self, line, sink)
    }

    fn on_disconnect(&self) {
        // Abandoned lifts must not keep burning workers.
        let cancelled = self.cancel_all();
        if cancelled > 0 {
            eprintln!(
                "lift_server: client disconnected, cancelled {cancelled} in-flight lift(s)"
            );
        }
    }
}

/// Serves one client on stdin/stdout until EOF or a `shutdown` request.
/// EOF means "no more requests", not "stop": the caller decides whether
/// to drain outstanding work (the batch idiom) before exiting.
pub fn serve_stdio<H: LineHandler>(handler: &H) -> LineAction {
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    let sink: EventSink = Arc::new(move |event: &Event| {
        let mut out = stdout.lock().expect("stdout poisoned");
        let _ = writeln!(out, "{}", event.to_line());
        let _ = out.flush();
    });
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if handler.handle_line(&line, &sink) == LineAction::Shutdown {
            return LineAction::Shutdown;
        }
    }
    LineAction::Continue
}

/// Accepts TCP clients on an already-bound listener (callers bind —
/// tests use port 0) until one of them requests shutdown, creating one
/// handler per connection via `new_handler`. Sibling connections are
/// unblocked by shutting their sockets down, so a `shutdown` request
/// stops the whole process promptly even while other clients sit idle
/// in blocking reads. `label` prefixes connection log lines.
pub fn serve_listener<H, F>(listener: TcpListener, label: &str, new_handler: F)
where
    H: LineHandler + Send,
    F: Fn() -> H + Sync,
{
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on listener");
    let stop = AtomicBool::new(false);
    let connections: Mutex<Vec<TcpStream>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        loop {
            if stop.load(Ordering::Acquire) {
                break;
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    eprintln!("{label}: client {peer} connected");
                    if let Ok(clone) = stream.try_clone() {
                        connections.lock().expect("connections poisoned").push(clone);
                    }
                    let handler = new_handler();
                    let stop = &stop;
                    scope.spawn(move || {
                        if serve_connection(&handler, stream) == LineAction::Shutdown {
                            stop.store(true, Ordering::Release);
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => {
                    eprintln!("{label}: accept failed: {e}");
                    break;
                }
            }
        }
        // Unblock every connection thread parked in a read; their loops
        // then exit and the scope join completes.
        for conn in connections.lock().expect("connections poisoned").iter() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    });
}

/// Serves one TCP client until disconnect or a `shutdown` request.
fn serve_connection<H: LineHandler>(handler: &H, stream: TcpStream) -> LineAction {
    let Ok(writer) = stream.try_clone() else {
        return LineAction::Continue;
    };
    let writer = Arc::new(Mutex::new(writer));
    let sink: EventSink = Arc::new(move |event: &Event| {
        let mut out = writer.lock().expect("writer poisoned");
        // A disconnected peer just drops its events.
        let _ = writeln!(out, "{}", event.to_line());
        let _ = out.flush();
    });
    let reader = std::io::BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if handler.handle_line(&line, &sink) == LineAction::Shutdown {
            return LineAction::Shutdown;
        }
    }
    handler.on_disconnect();
    LineAction::Continue
}
