//! The lift router binary: one front door for a `lift_server` replica
//! set, speaking the unchanged JSON-lines protocol.
//!
//! ```text
//! lift_router --replicas ADDR,ADDR [--stdio | --listen ADDR]
//!             [--vnodes N] [--connect-timeout-ms N] [--search-jobs N]
//! ```
//!
//! Each lift is consistent-hash routed to a replica by its normalized
//! request hash, so repeats of the same kernel land on the replica that
//! cached the answer; the replica's event stream is forwarded verbatim.
//! A replica that refuses the connection or dies mid-stream triggers
//! failover to the next candidate on the hash ring, and only when every
//! candidate has failed does the client see a `replica_unavailable`
//! error. `stats` fans out to all replicas and sums the snapshots;
//! `shutdown` is broadcast to every replica before the router itself
//! stops.
//!
//! `--search-jobs` mirrors the replicas' setting: the routing key
//! hashes the resolved configuration, so it must resolve identically
//! here and on the servers for repeats to stay cache hits.

use std::net::TcpListener;
use std::time::Duration;

use gtl::StaggConfig;
use gtl_serve::{
    serve_listener, serve_stdio, LiftRouter, LineAction, RouterConfig,
};

struct Args {
    listen: Option<String>,
    replicas: Vec<String>,
    vnodes: usize,
    connect_timeout_ms: u64,
    search_jobs: usize,
}

const USAGE: &str = "usage: lift_router --replicas ADDR,ADDR [--stdio | --listen ADDR] \
[--vnodes N] [--connect-timeout-ms N] [--search-jobs N]";

fn usage_error(message: &str) -> ! {
    eprintln!("lift_router: {message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: None,
        replicas: Vec::new(),
        vnodes: 64,
        connect_timeout_ms: 5000,
        search_jobs: 1,
    };
    let mut stdio = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
        };
        let int_value = |name: &str, raw: String| -> u64 {
            raw.parse().unwrap_or_else(|_| {
                usage_error(&format!("{name} expects an integer, got `{raw}`"))
            })
        };
        match flag.as_str() {
            "--stdio" => stdio = true,
            "--listen" => args.listen = Some(value("--listen")),
            "--replicas" => {
                args.replicas = value("--replicas")
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            }
            "--vnodes" => args.vnodes = int_value("--vnodes", value("--vnodes")) as usize,
            "--connect-timeout-ms" => {
                args.connect_timeout_ms = int_value(
                    "--connect-timeout-ms",
                    value("--connect-timeout-ms"),
                )
            }
            "--search-jobs" => {
                args.search_jobs = int_value("--search-jobs", value("--search-jobs")) as usize
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag `{other}`")),
        }
    }
    if stdio && args.listen.is_some() {
        usage_error("--stdio and --listen are mutually exclusive");
    }
    if args.replicas.is_empty() {
        usage_error("--replicas requires at least one address");
    }
    args
}

fn main() {
    let args = parse_args();
    let router = LiftRouter::new(RouterConfig {
        replicas: args.replicas.clone(),
        vnodes: args.vnodes.max(1),
        connect_timeout: Duration::from_millis(args.connect_timeout_ms.max(1)),
        base: StaggConfig::top_down().with_jobs(args.search_jobs.max(1)),
    });
    eprintln!(
        "lift_router: routing across {} replica(s): {}",
        args.replicas.len(),
        args.replicas.join(", ")
    );

    match &args.listen {
        None => {
            // EOF means "no more requests": outstanding forwarded
            // streams finish before exit, the same batch idiom as
            // `lift_server --stdio`.
            if serve_stdio(&router.handle()) != LineAction::Shutdown {
                router.drain();
            }
        }
        Some(addr) => {
            let listener = TcpListener::bind(addr)
                .unwrap_or_else(|e| usage_error(&format!("cannot listen on {addr}: {e}")));
            eprintln!("lift_router: listening on {addr}");
            serve_listener(listener, "lift_router", || router.handle());
        }
    }

    eprintln!("lift_router: shutting down");
}
