//! The lift server binary: serves the JSON-lines lift protocol over
//! stdin/stdout or TCP.
//!
//! ```text
//! lift_server [--stdio | --listen ADDR] [--workers N] [--queue N]
//!             [--search-jobs N] [--progress-ms N] [--timeout-ms N]
//!             [--oracle SPEC] [--oracles KIND,KIND]
//!             [--store PATH] [--rotate-store-bytes N]
//!             [--max-inflight-per-client N]
//!             [--peers ADDR,ADDR] [--accept-shares]
//!             [--slow-lift-ms N] [--journal-capacity N]
//! ```
//!
//! `--stdio` (the default) serves one client on stdin/stdout; EOF means
//! "no more requests" — outstanding lifts finish and their events are
//! flushed before the process exits, so `printf requests | lift_server`
//! is a complete batch run. `--listen ADDR` (e.g. `127.0.0.1:7171`)
//! accepts any number of TCP clients, one JSON line per message; a
//! client that disconnects mid-lift has its in-flight lifts cancelled.
//! A `shutdown` request from any client stops the server immediately:
//! running lifts are cancelled through their cancel flags and queued
//! jobs drain with `shutting_down` failures.
//!
//! `--store PATH` makes completed lifts durable: every deterministic
//! terminal outcome is appended to a crash-tolerant `gtl_store` log,
//! and a restarted server prefills its result cache from it — repeat
//! lifts answer as cache hits with zero search attempts.
//! `--rotate-store-bytes N` seals the live store log into immutable
//! segments once it exceeds N bytes, keeping append latency flat and
//! letting compaction work on sealed segments only; once rotation
//! leaves [`SEGMENT_MERGE_THRESHOLD`] sealed segments on disk, the
//! append that crossed the line signals a background merge thread —
//! the write path never waits for the snapshot merge.
//! `--max-inflight-per-client N` caps how many lifts one client may
//! have queued or running at once (excess submissions are rejected
//! with `rate_limited`).
//!
//! As a replica in a `lift_router` set: `--peers` lists the sibling
//! replicas to push every locally solved lift to (best-effort
//! `share_lift` requests, so any replica answers any repeat as a warm
//! cache hit), and `--accept-shares` opts in to receiving such pushes.
//!
//! `--slow-lift-ms N` logs any lift slower than N milliseconds to
//! stderr with its trace ID and per-phase breakdown — the first place
//! to look when the `metrics` histograms show a fat tail.
//! `--journal-capacity N` bounds the in-memory span journal behind the
//! `trace` request (total spans across all trace IDs, oldest evicted
//! first; default 4096).

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use gtl::{OracleSpec, StaggConfig};
use gtl_serve::{serve_listener, serve_stdio, LiftServer, LineAction, ServerConfig};

struct Args {
    listen: Option<String>,
    workers: usize,
    queue: usize,
    search_jobs: usize,
    progress_ms: u64,
    timeout_ms: Option<u64>,
    oracle: Option<String>,
    oracles: Option<String>,
    store: Option<String>,
    rotate_store_bytes: Option<u64>,
    max_inflight_per_client: usize,
    peers: Vec<String>,
    accept_shares: bool,
    slow_lift_ms: Option<u64>,
    journal_capacity: Option<usize>,
}

/// Sealed segments a rotated store may accumulate before the next
/// append signals the background merge (or the startup stale-check
/// merges inline).
const SEGMENT_MERGE_THRESHOLD: u64 = 8;

const USAGE: &str = "usage: lift_server [--stdio | --listen ADDR] [--workers N] [--queue N] \
[--search-jobs N] [--progress-ms N] [--timeout-ms N] [--oracle SPEC] [--oracles KIND,KIND] \
[--store PATH] [--rotate-store-bytes N] [--max-inflight-per-client N] \
[--peers ADDR,ADDR] [--accept-shares] [--slow-lift-ms N] [--journal-capacity N]";

fn usage_error(message: &str) -> ! {
    eprintln!("lift_server: {message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: None,
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        queue: 64,
        search_jobs: 1,
        progress_ms: 100,
        timeout_ms: None,
        oracle: None,
        oracles: None,
        store: None,
        rotate_store_bytes: None,
        max_inflight_per_client: 0,
        peers: Vec::new(),
        accept_shares: false,
        slow_lift_ms: None,
        journal_capacity: None,
    };
    let mut stdio = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
        };
        let int_value = |name: &str, raw: String| -> u64 {
            raw.parse().unwrap_or_else(|_| {
                usage_error(&format!("{name} expects an integer, got `{raw}`"))
            })
        };
        match flag.as_str() {
            "--stdio" => stdio = true,
            "--listen" => args.listen = Some(value("--listen")),
            "--workers" => args.workers = int_value("--workers", value("--workers")) as usize,
            "--queue" => args.queue = int_value("--queue", value("--queue")) as usize,
            "--search-jobs" => {
                args.search_jobs = int_value("--search-jobs", value("--search-jobs")) as usize
            }
            "--progress-ms" => {
                args.progress_ms = int_value("--progress-ms", value("--progress-ms"))
            }
            "--timeout-ms" => {
                args.timeout_ms = Some(int_value("--timeout-ms", value("--timeout-ms")))
            }
            "--oracle" => args.oracle = Some(value("--oracle")),
            "--oracles" => args.oracles = Some(value("--oracles")),
            "--store" => args.store = Some(value("--store")),
            "--rotate-store-bytes" => {
                args.rotate_store_bytes = Some(int_value(
                    "--rotate-store-bytes",
                    value("--rotate-store-bytes"),
                ))
            }
            "--max-inflight-per-client" => {
                args.max_inflight_per_client = int_value(
                    "--max-inflight-per-client",
                    value("--max-inflight-per-client"),
                ) as usize
            }
            "--peers" => {
                args.peers = value("--peers")
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            }
            "--accept-shares" => args.accept_shares = true,
            "--slow-lift-ms" => {
                args.slow_lift_ms = Some(int_value("--slow-lift-ms", value("--slow-lift-ms")))
            }
            "--journal-capacity" => {
                args.journal_capacity =
                    Some(int_value("--journal-capacity", value("--journal-capacity")) as usize)
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag `{other}`")),
        }
    }
    if stdio && args.listen.is_some() {
        usage_error("--stdio and --listen are mutually exclusive");
    }
    if args.rotate_store_bytes.is_some() && args.store.is_none() {
        usage_error("--rotate-store-bytes requires --store");
    }
    args
}

fn main() {
    let args = parse_args();
    // The server's own base oracle spec (`--oracle`) and the provider
    // kinds requests may select per lift (`--oracles`, the allowlist).
    let mut base = StaggConfig::top_down().with_jobs(args.search_jobs.max(1));
    if let Some(raw) = &args.oracle {
        let spec = OracleSpec::from_cli_name(raw)
            .unwrap_or_else(|| usage_error(&format!("unparseable --oracle spec `{raw}`")));
        // Fail fast on an unusable fixture instead of per request.
        if let Err(e) = spec.provider() {
            usage_error(&format!("--oracle: {e}"));
        }
        base = base.with_oracle(spec);
    }
    let oracle_allowlist: Vec<String> = match &args.oracles {
        None => vec!["synthetic".to_string()],
        Some(list) => list.split(',').map(str::to_string).collect(),
    };
    for kind in &oracle_allowlist {
        if !matches!(kind.as_str(), "synthetic" | "scripted" | "replay" | "record") {
            usage_error(&format!("unknown oracle kind `{kind}` in --oracles"));
        }
    }
    // The persistent store: recover, compact when mostly superseded,
    // report what warm-start will serve.
    let store = args.store.as_ref().map(|path| {
        let store = match args.rotate_store_bytes {
            Some(bytes) => {
                gtl_store::LiftStore::open_with_compaction(path, bytes, SEGMENT_MERGE_THRESHOLD)
            }
            None => gtl_store::LiftStore::open(path),
        }
        .unwrap_or_else(|e| usage_error(&format!("--store: {e}")));
        if store.recovery().truncated_tail {
            eprintln!(
                "lift_server: store {path}: dropped a torn tail record ({} bytes)",
                store.recovery().dropped_bytes
            );
        }
        match store.compact_if_stale() {
            Ok(Some(stats)) => eprintln!(
                "lift_server: store {path}: compacted {} -> {} records",
                stats.records_before, stats.records_after
            ),
            Ok(None) => {}
            Err(e) => eprintln!("lift_server: store {path}: compaction failed: {e}"),
        }
        eprintln!(
            "lift_server: store {path}: {} outcome(s) loaded",
            store.len()
        );
        Arc::new(store)
    });
    let server = LiftServer::start(ServerConfig {
        workers: args.workers.max(1),
        queue_capacity: args.queue.max(1),
        base,
        progress_interval: Duration::from_millis(args.progress_ms.max(10)),
        default_timeout: args.timeout_ms.map(Duration::from_millis),
        oracle_allowlist,
        store,
        max_inflight_per_client: args.max_inflight_per_client,
        peers: args.peers.clone(),
        accept_shared_lifts: args.accept_shares,
        slow_lift_threshold: args.slow_lift_ms.map(Duration::from_millis),
        journal_capacity: args
            .journal_capacity
            .unwrap_or(ServerConfig::default().journal_capacity),
        ..ServerConfig::default()
    });

    match &args.listen {
        None => {
            // EOF on stdin means "no more requests": finish outstanding
            // lifts before exiting, so `printf reqs | lift_server` is a
            // complete batch run. An explicit `shutdown` request skips
            // the drain and cancels everything immediately.
            if serve_stdio(&server.handle()) != LineAction::Shutdown {
                server.drain();
            }
        }
        Some(addr) => {
            let listener = TcpListener::bind(addr)
                .unwrap_or_else(|e| usage_error(&format!("cannot listen on {addr}: {e}")));
            eprintln!("lift_server: listening on {addr}");
            serve_listener(listener, "lift_server", || server.handle());
        }
    }

    eprintln!("lift_server: shutting down");
    server.shutdown();
}
