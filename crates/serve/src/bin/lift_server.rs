//! The lift server binary: serves the JSON-lines lift protocol over
//! stdin/stdout or TCP.
//!
//! ```text
//! lift_server [--stdio | --listen ADDR] [--workers N] [--queue N]
//!             [--search-jobs N] [--progress-ms N] [--timeout-ms N]
//!             [--oracle SPEC] [--oracles KIND,KIND]
//!             [--store PATH] [--max-inflight-per-client N]
//! ```
//!
//! `--stdio` (the default) serves one client on stdin/stdout; EOF means
//! "no more requests" — outstanding lifts finish and their events are
//! flushed before the process exits, so `printf requests | lift_server`
//! is a complete batch run. `--listen ADDR` (e.g. `127.0.0.1:7171`)
//! accepts any number of TCP clients, one JSON line per message; a
//! client that disconnects mid-lift has its in-flight lifts cancelled.
//! A `shutdown` request from any client stops the server immediately:
//! running lifts are cancelled through their cancel flags and queued
//! jobs drain with `shutting_down` failures.
//!
//! `--store PATH` makes completed lifts durable: every deterministic
//! terminal outcome is appended to a crash-tolerant `gtl_store` log,
//! and a restarted server prefills its result cache from it — repeat
//! lifts answer as cache hits with zero search attempts.
//! `--max-inflight-per-client N` caps how many lifts one client may
//! have queued or running at once (excess submissions are rejected
//! with `rate_limited`).

use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gtl::{OracleSpec, StaggConfig};
use gtl_serve::{Event, EventSink, LiftServer, LineAction, ServerConfig, ServerHandle};

struct Args {
    listen: Option<String>,
    workers: usize,
    queue: usize,
    search_jobs: usize,
    progress_ms: u64,
    timeout_ms: Option<u64>,
    oracle: Option<String>,
    oracles: Option<String>,
    store: Option<String>,
    max_inflight_per_client: usize,
}

const USAGE: &str = "usage: lift_server [--stdio | --listen ADDR] [--workers N] [--queue N] \
[--search-jobs N] [--progress-ms N] [--timeout-ms N] [--oracle SPEC] [--oracles KIND,KIND] \
[--store PATH] [--max-inflight-per-client N]";

fn usage_error(message: &str) -> ! {
    eprintln!("lift_server: {message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: None,
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        queue: 64,
        search_jobs: 1,
        progress_ms: 100,
        timeout_ms: None,
        oracle: None,
        oracles: None,
        store: None,
        max_inflight_per_client: 0,
    };
    let mut stdio = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
        };
        let int_value = |name: &str, raw: String| -> u64 {
            raw.parse().unwrap_or_else(|_| {
                usage_error(&format!("{name} expects an integer, got `{raw}`"))
            })
        };
        match flag.as_str() {
            "--stdio" => stdio = true,
            "--listen" => args.listen = Some(value("--listen")),
            "--workers" => args.workers = int_value("--workers", value("--workers")) as usize,
            "--queue" => args.queue = int_value("--queue", value("--queue")) as usize,
            "--search-jobs" => {
                args.search_jobs = int_value("--search-jobs", value("--search-jobs")) as usize
            }
            "--progress-ms" => {
                args.progress_ms = int_value("--progress-ms", value("--progress-ms"))
            }
            "--timeout-ms" => {
                args.timeout_ms = Some(int_value("--timeout-ms", value("--timeout-ms")))
            }
            "--oracle" => args.oracle = Some(value("--oracle")),
            "--oracles" => args.oracles = Some(value("--oracles")),
            "--store" => args.store = Some(value("--store")),
            "--max-inflight-per-client" => {
                args.max_inflight_per_client = int_value(
                    "--max-inflight-per-client",
                    value("--max-inflight-per-client"),
                ) as usize
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag `{other}`")),
        }
    }
    if stdio && args.listen.is_some() {
        usage_error("--stdio and --listen are mutually exclusive");
    }
    args
}

fn main() {
    let args = parse_args();
    // The server's own base oracle spec (`--oracle`) and the provider
    // kinds requests may select per lift (`--oracles`, the allowlist).
    let mut base = StaggConfig::top_down().with_jobs(args.search_jobs.max(1));
    if let Some(raw) = &args.oracle {
        let spec = OracleSpec::from_cli_name(raw)
            .unwrap_or_else(|| usage_error(&format!("unparseable --oracle spec `{raw}`")));
        // Fail fast on an unusable fixture instead of per request.
        if let Err(e) = spec.provider() {
            usage_error(&format!("--oracle: {e}"));
        }
        base = base.with_oracle(spec);
    }
    let oracle_allowlist: Vec<String> = match &args.oracles {
        None => vec!["synthetic".to_string()],
        Some(list) => list.split(',').map(str::to_string).collect(),
    };
    for kind in &oracle_allowlist {
        if !matches!(kind.as_str(), "synthetic" | "scripted" | "replay" | "record") {
            usage_error(&format!("unknown oracle kind `{kind}` in --oracles"));
        }
    }
    // The persistent store: recover, compact when mostly superseded,
    // report what warm-start will serve.
    let store = args.store.as_ref().map(|path| {
        let store = gtl_store::LiftStore::open(path)
            .unwrap_or_else(|e| usage_error(&format!("--store: {e}")));
        if store.recovery().truncated_tail {
            eprintln!(
                "lift_server: store {path}: dropped a torn tail record ({} bytes)",
                store.recovery().dropped_bytes
            );
        }
        match store.compact_if_stale() {
            Ok(Some(stats)) => eprintln!(
                "lift_server: store {path}: compacted {} -> {} records",
                stats.records_before, stats.records_after
            ),
            Ok(None) => {}
            Err(e) => eprintln!("lift_server: store {path}: compaction failed: {e}"),
        }
        eprintln!(
            "lift_server: store {path}: {} outcome(s) loaded",
            store.len()
        );
        Arc::new(store)
    });
    let server = LiftServer::start(ServerConfig {
        workers: args.workers.max(1),
        queue_capacity: args.queue.max(1),
        base,
        progress_interval: Duration::from_millis(args.progress_ms.max(10)),
        default_timeout: args.timeout_ms.map(Duration::from_millis),
        oracle_allowlist,
        store,
        max_inflight_per_client: args.max_inflight_per_client,
        ..ServerConfig::default()
    });

    match &args.listen {
        None => {
            // EOF on stdin means "no more requests": finish outstanding
            // lifts before exiting, so `printf reqs | lift_server` is a
            // complete batch run. An explicit `shutdown` request skips
            // the drain and cancels everything immediately.
            if serve_stdio(server.handle()) != LineAction::Shutdown {
                server.drain();
            }
        }
        Some(addr) => serve_listener(&server, addr),
    }

    eprintln!("lift_server: shutting down");
    server.shutdown();
}

/// Serves one client on stdin/stdout until EOF or a `shutdown` request.
fn serve_stdio(handle: ServerHandle) -> LineAction {
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    let sink: EventSink = Arc::new(move |event: &Event| {
        let mut out = stdout.lock().expect("stdout poisoned");
        let _ = writeln!(out, "{}", event.to_line());
        let _ = out.flush();
    });
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if handle.handle_line(&line, &sink) == LineAction::Shutdown {
            return LineAction::Shutdown;
        }
    }
    LineAction::Continue
}

/// Accepts TCP clients until one of them requests shutdown. Sibling
/// connections are unblocked by shutting their sockets down, so a
/// `shutdown` request stops the whole server promptly even while other
/// clients sit idle in blocking reads.
fn serve_listener(server: &LiftServer, addr: &str) {
    let listener = TcpListener::bind(addr)
        .unwrap_or_else(|e| usage_error(&format!("cannot listen on {addr}: {e}")));
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on listener");
    eprintln!("lift_server: listening on {addr}");
    let stop = AtomicBool::new(false);
    let connections: Mutex<Vec<std::net::TcpStream>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        loop {
            if stop.load(Ordering::Acquire) {
                break;
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    eprintln!("lift_server: client {peer} connected");
                    if let Ok(clone) = stream.try_clone() {
                        connections.lock().expect("connections poisoned").push(clone);
                    }
                    let handle = server.handle();
                    let stop = &stop;
                    scope.spawn(move || {
                        if serve_tcp(handle, stream) == LineAction::Shutdown {
                            stop.store(true, Ordering::Release);
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => {
                    eprintln!("lift_server: accept failed: {e}");
                    break;
                }
            }
        }
        // Unblock every connection thread parked in a read; their
        // `serve_tcp` loops then exit and the scope join completes.
        for conn in connections.lock().expect("connections poisoned").iter() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    });
}

/// Serves one TCP client until disconnect or a `shutdown` request.
fn serve_tcp(handle: ServerHandle, stream: std::net::TcpStream) -> LineAction {
    let Ok(writer) = stream.try_clone() else {
        return LineAction::Continue;
    };
    let writer = Arc::new(Mutex::new(writer));
    let sink: EventSink = Arc::new(move |event: &Event| {
        let mut out = writer.lock().expect("writer poisoned");
        // A disconnected peer just drops its events.
        let _ = writeln!(out, "{}", event.to_line());
        let _ = out.flush();
    });
    let reader = std::io::BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if handle.handle_line(&line, &sink) == LineAction::Shutdown {
            return LineAction::Shutdown;
        }
    }
    // Disconnected mid-stream: stop this client's abandoned lifts so
    // they do not keep burning workers.
    let cancelled = handle.cancel_all();
    if cancelled > 0 {
        eprintln!("lift_server: client disconnected, cancelled {cancelled} in-flight lift(s)");
    }
    LineAction::Continue
}
