//! The scripted lift client: submits requests to a running
//! `lift_server` over TCP and prints the event stream.
//!
//! ```text
//! lift_client --connect ADDR --benchmark NAME [--id ID] [config flags]
//! lift_client --connect ADDR --source FILE --params JSON [--ground-truth PROG] [--label L]
//! lift_client --connect ADDR --cancel ID
//! lift_client --connect ADDR --stats
//! lift_client --connect ADDR --metrics
//! lift_client --connect ADDR --trace TRACE_ID
//! lift_client --connect ADDR --shutdown
//! ```
//!
//! Config flags: `--oracle SPEC` (`synthetic[:SEED]`, `replay:PATH`,
//! `record:PATH[:INNER]` — subject to the server's allowlist),
//! `--oracle-rounds N`, `--mode td|bu`, `--grammar NAME`,
//! `--search-jobs N`, `--max-attempts N`, `--max-nodes N`,
//! `--time-limit-ms N`, `--timeout-ms N`, `--trace-id ID` (attach an
//! explicit trace ID to the lift; the default lets the server mint
//! one). `--metrics` prints the Prometheus text exposition; `--trace`
//! prints the recorded spans of one trace ID, one JSON line each.
//! `--ground-truth` is the
//! synthetic oracle's hint and optional (replay-backed lifts don't
//! need it). `--params` takes the JSON array of the protocol's
//! `params` member, e.g.
//! `'[{"name":"n","kind":"size"},{"name":"x","kind":"array_in","dims":["n"]},
//!    {"name":"out","kind":"array_out","dims":[]}]'`.
//!
//! Events are printed one JSON line each (exactly as received); the
//! exit code is 0 when the lift ends in `done`, 1 on `failed`/`error`.

use gtl::{GrammarMode, SearchMode};
use gtl_serve::json::{parse, Json};
use gtl_serve::{ConfigOverrides, Event, KernelSpec, LiftClient, LiftRequest, Request};

const USAGE: &str = "usage: lift_client --connect ADDR \
(--benchmark NAME | --source FILE --params JSON [--ground-truth PROG] [--label L] \
| --cancel ID | --stats | --metrics | --trace TRACE_ID | --shutdown) [--id ID] \
[--trace-id ID] [--oracle SPEC] [--oracle-rounds N] \
[--mode td|bu] [--grammar NAME] [--search-jobs N] [--max-attempts N] [--max-nodes N] \
[--time-limit-ms N] [--timeout-ms N]";

fn usage_error(message: &str) -> ! {
    eprintln!("lift_client: {message}\n{USAGE}");
    std::process::exit(2);
}

#[derive(Default)]
struct Args {
    connect: Option<String>,
    benchmark: Option<String>,
    source: Option<String>,
    params: Option<String>,
    ground_truth: Option<String>,
    label: Option<String>,
    id: Option<String>,
    trace_id: Option<String>,
    cancel: Option<String>,
    trace: Option<String>,
    oracle: Option<String>,
    stats: bool,
    metrics: bool,
    shutdown: bool,
    overrides: ConfigOverrides,
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
        };
        let uint = |name: &str, raw: String| -> u64 {
            raw.parse().unwrap_or_else(|_| {
                usage_error(&format!("{name} expects an integer, got `{raw}`"))
            })
        };
        match flag.as_str() {
            "--connect" => args.connect = Some(value("--connect")),
            "--benchmark" => args.benchmark = Some(value("--benchmark")),
            "--source" => args.source = Some(value("--source")),
            "--params" => args.params = Some(value("--params")),
            "--ground-truth" => args.ground_truth = Some(value("--ground-truth")),
            "--label" => args.label = Some(value("--label")),
            "--id" => args.id = Some(value("--id")),
            "--trace-id" => args.trace_id = Some(value("--trace-id")),
            "--cancel" => args.cancel = Some(value("--cancel")),
            "--trace" => args.trace = Some(value("--trace")),
            "--oracle" => args.oracle = Some(value("--oracle")),
            "--stats" => args.stats = true,
            "--metrics" => args.metrics = true,
            "--shutdown" => args.shutdown = true,
            "--mode" => {
                let raw = value("--mode");
                args.overrides.mode = Some(
                    SearchMode::from_cli_name(&raw)
                        .unwrap_or_else(|| usage_error(&format!("unknown mode `{raw}`"))),
                );
            }
            "--grammar" => {
                let raw = value("--grammar");
                args.overrides.grammar = Some(
                    GrammarMode::from_cli_name(&raw)
                        .unwrap_or_else(|| usage_error(&format!("unknown grammar `{raw}`"))),
                );
            }
            "--search-jobs" => {
                args.overrides.search_jobs =
                    Some(uint("--search-jobs", value("--search-jobs")) as usize)
            }
            "--oracle-rounds" => {
                args.overrides.oracle_rounds =
                    Some(uint("--oracle-rounds", value("--oracle-rounds")) as usize)
            }
            "--max-attempts" => {
                args.overrides.max_attempts = Some(uint("--max-attempts", value("--max-attempts")))
            }
            "--max-nodes" => {
                args.overrides.max_nodes = Some(uint("--max-nodes", value("--max-nodes")))
            }
            "--time-limit-ms" => {
                args.overrides.time_limit_ms =
                    Some(uint("--time-limit-ms", value("--time-limit-ms")))
            }
            "--timeout-ms" => {
                args.overrides.timeout_ms = Some(uint("--timeout-ms", value("--timeout-ms")))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag `{other}`")),
        }
    }
    args
}

/// Builds the raw-source lift request by assembling the wire JSON and
/// routing it through the protocol's own parser — the CLI accepts
/// exactly what the server accepts, with the server's diagnostics.
fn source_request(
    id: &str,
    path: &str,
    source: String,
    params_raw: &str,
    ground_truth: Option<String>,
    label: Option<String>,
) -> LiftRequest {
    let params = parse(params_raw).unwrap_or_else(|e| usage_error(&format!("--params: {e}")));
    if params.as_arr().is_none() {
        usage_error("--params must be a JSON array");
    }
    let mut fields = vec![
        ("type", Json::str("lift")),
        ("id", Json::str(id)),
        ("label", Json::str(label.unwrap_or_else(|| path.to_string()))),
        ("source", Json::Str(source)),
        ("params", params),
    ];
    if let Some(ground_truth) = ground_truth {
        fields.push(("ground_truth", Json::Str(ground_truth)));
    }
    let line = Json::obj(fields).to_line();
    match Request::parse_line(&line) {
        Ok(Request::Lift(request)) => request,
        Ok(_) => unreachable!("a lift line parses as a lift"),
        Err(e) => usage_error(&format!("--params: {e}")),
    }
}

fn main() {
    let args = parse_args();
    let addr = args
        .connect
        .clone()
        .unwrap_or_else(|| usage_error("--connect ADDR is required"));
    let mut client = LiftClient::connect(&addr)
        .unwrap_or_else(|e| usage_error(&format!("cannot connect to {addr}: {e}")));

    if let Some(id) = &args.cancel {
        client
            .cancel(id.clone())
            .unwrap_or_else(|e| usage_error(&format!("cancel failed: {e}")));
        // The cancelled lift's failure event streams to *its* submitting
        // connection, not this one; the only answer this connection can
        // receive is an `error` (unknown id). Silence means accepted.
        client
            .set_read_timeout(Some(std::time::Duration::from_millis(1000)))
            .ok();
        match client.next_event() {
            Ok(Some(event @ Event::Error { .. })) => {
                println!("{}", event.to_line());
                std::process::exit(1);
            }
            _ => return, // timeout or clean close: cancel accepted
        }
    }
    if args.stats {
        let stats = client
            .stats()
            .unwrap_or_else(|e| usage_error(&format!("stats failed: {e}")));
        println!("{}", Event::Stats { stats }.to_line());
        return;
    }
    if args.metrics {
        let text = client
            .metrics()
            .unwrap_or_else(|e| usage_error(&format!("metrics failed: {e}")));
        print!("{text}");
        return;
    }
    if let Some(trace_id) = &args.trace {
        let spans = client
            .trace(trace_id.clone())
            .unwrap_or_else(|e| usage_error(&format!("trace failed: {e}")));
        for span in &spans {
            println!("{}", span.to_json().to_line());
        }
        return;
    }
    if args.shutdown {
        client
            .send(&Request::Shutdown)
            .unwrap_or_else(|e| usage_error(&format!("shutdown failed: {e}")));
        return;
    }

    let kernel = match (&args.benchmark, &args.source) {
        (Some(name), None) => KernelSpec::Benchmark { name: name.clone() },
        (None, Some(path)) => {
            let source = std::fs::read_to_string(path)
                .unwrap_or_else(|e| usage_error(&format!("cannot read {path}: {e}")));
            let params_raw = args
                .params
                .as_deref()
                .unwrap_or_else(|| usage_error("--source requires --params"));
            // Optional since the oracle redesign: replay-backed lifts
            // need no ground-truth hint.
            let ground_truth = args.ground_truth.clone();
            let id = args.id.clone().unwrap_or_else(|| "lift-1".to_string());
            let request = source_request(
                &id,
                path,
                source,
                params_raw,
                ground_truth,
                args.label.clone(),
            );
            request.kernel
        }
        _ => usage_error("exactly one of --benchmark or --source is required"),
    };
    let id = args.id.clone().unwrap_or_else(|| "lift-1".to_string());
    let request = LiftRequest {
        id,
        kernel,
        oracle: args.oracle.clone(),
        overrides: args.overrides.clone(),
        trace_id: args.trace_id.clone(),
    };
    let events = client
        .lift(request)
        .unwrap_or_else(|e| usage_error(&format!("lift failed: {e}")));
    let mut ok = false;
    for event in &events {
        println!("{}", event.to_line());
        if matches!(event, Event::Done { .. }) {
            ok = true;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
