//! The multi-client lift server: a bounded job queue drained by a
//! persistent worker pool, streaming incremental events per request.
//!
//! ```text
//!  clients ──submit──▶ bounded queue ──pop──▶ workers (one EvalCache each)
//!     ▲                                          │ Stagg::lift_with
//!     │                                          │   hooks: CancelFlag,
//!     └───────────── events (sink) ◀─────────────┘   SearchProgress, observer
//!                       ▲
//!            monitor ───┘  (progress ticks, timeout enforcement)
//! ```
//!
//! Each worker owns one long-lived [`EvalCache`], so kernels recurring
//! across requests never recompile; a request-level [`ResultCache`]
//! sits in front of the pipeline and answers repeated identical
//! requests without running a search at all. Cancellation (client
//! `cancel`, request timeout, server shutdown) rides the search
//! engine's [`CancelFlag`] machinery end to end.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gtl::{FailureReason, LiftHooks, LiftObserver, LiftQuery, OracleSpec, Stagg, StaggConfig};
use gtl_benchsuite::by_name;
use gtl_cfront::parse_c;
use gtl_oracle::OracleProvider;
use gtl_search::{CancelFlag, SearchHooks, SearchProgress};
use gtl_store::{LiftRecord, LiftStore};
use gtl_taco::{parse_program, EvalCache, TacoProgram};
use gtl_trace::{
    new_trace_id, LatencyHistogram, Phase, PhaseCollector, SpanJournal, SpanRecord,
};
use gtl_validate::{LiftTask, TaskParam, TaskParamKind};

use crate::cache::{request_key, CachedOutcome, ResultCache};
use crate::protocol::{
    ErrorCode, Event, KernelSpec, LiftRequest, OracleStat, Request, ServerStats, WireError,
    WireParamKind,
};

/// Where a request's events go. Called from worker and monitor threads;
/// implementations must be quick and must tolerate disconnected peers
/// (drop the event, don't panic).
pub type EventSink = Arc<dyn Fn(&Event) + Send + Sync>;

/// Server construction knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Lift worker threads (minimum 1).
    pub workers: usize,
    /// Bounded job-queue capacity; submissions beyond it are rejected
    /// with `queue_full` (minimum 1).
    pub queue_capacity: usize,
    /// The base pipeline configuration; per-request overrides apply on
    /// top of it.
    pub base: StaggConfig,
    /// Cadence of `search_progress` events and timeout checks.
    pub progress_interval: Duration,
    /// Default per-request timeout (from lift start); `None` means no
    /// timeout unless the request asks for one.
    pub default_timeout: Option<Duration>,
    /// Result-cache entry bound.
    pub result_cache_capacity: usize,
    /// Which oracle provider *kinds* requests may name in their
    /// `oracle` field (`synthetic`, `scripted`, `replay`, `record`).
    /// The default admits only `synthetic` — replay/record touch
    /// server-side files, so an operator opts in explicitly. The
    /// server's own base spec is always allowed (requests without an
    /// `oracle` field never hit the allowlist).
    pub oracle_allowlist: Vec<String>,
    /// The persistent lift store, when the server should survive
    /// restarts: the result cache is prefilled from it at startup and
    /// every *solved* lift is appended to it (failures are cached
    /// in-memory only — a wall-clock budget failure must not become
    /// permanent across restarts). This is the `lift_server --store`
    /// path; `None` keeps results in-memory only.
    pub store: Option<Arc<LiftStore>>,
    /// Per-client fairness: the maximum lifts one client may have
    /// queued or running at once. Submissions beyond it are rejected
    /// with `rate_limited`. `0` means unlimited.
    pub max_inflight_per_client: usize,
    /// Peer replica addresses (`host:port`). Every locally *solved*
    /// lift is pushed to each peer as a `share_lift` request,
    /// best-effort and in the background, so any replica answers a
    /// repeat of the kernel as a warm cache hit. Failures are logged
    /// and never affect the solving request's own stream.
    pub peers: Vec<String>,
    /// Whether this server accepts `share_lift` pushes. Off by default:
    /// a shared record enters the result cache (and the store) without
    /// a local search, so an operator opts in explicitly
    /// (`lift_server --accept-shares`).
    pub accept_shared_lifts: bool,
    /// Slow-request log threshold: a lift whose pipeline run takes at
    /// least this long is logged to stderr with its trace ID and
    /// per-phase breakdown (`lift_server --slow-lift-ms`). `None`
    /// disables the log.
    pub slow_lift_threshold: Option<Duration>,
    /// Bound on the span journal behind the `trace` request (total
    /// retained spans across all traces; the oldest are evicted).
    pub journal_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 64,
            base: StaggConfig::top_down(),
            progress_interval: Duration::from_millis(100),
            default_timeout: None,
            result_cache_capacity: 1024,
            oracle_allowlist: vec!["synthetic".to_string()],
            store: None,
            max_inflight_per_client: 0,
            peers: Vec::new(),
            accept_shared_lifts: false,
            slow_lift_threshold: None,
            journal_capacity: 4096,
        }
    }
}

/// Why a job was terminated from outside the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TerminalCause {
    Cancelled,
    Timeout,
    Shutdown,
}

impl TerminalCause {
    fn reason(self) -> &'static str {
        match self {
            TerminalCause::Cancelled => "cancelled",
            TerminalCause::Timeout => "timeout",
            TerminalCause::Shutdown => "shutting_down",
        }
    }
}

const PHASE_QUEUED: u8 = 0;
const PHASE_RUNNING: u8 = 1;

/// Server-wide observability state shared by every job: the latency
/// histograms and per-phase totals that surface in `stats` and the
/// Prometheus `metrics` exposition.
#[derive(Default)]
struct ServingMetrics {
    /// Admission → terminal-event latency of every closed stream.
    service_time: Mutex<LatencyHistogram>,
    /// Admission → worker-pickup latency of every started job.
    queue_wait: Mutex<LatencyHistogram>,
    /// Per-phase pipeline totals summed over every lift served.
    phases: PhaseCollector,
}

/// Shared, externally visible state of one admitted job.
struct JobState {
    id: String,
    /// The request's trace ID: client-supplied or minted at admission.
    /// Stamped onto every event through the emit funnels below.
    trace_id: String,
    /// When the job was admitted (service-time / queue-wait baseline).
    admitted: Instant,
    /// The owning client (half of the active-registry key).
    client: u64,
    sink: EventSink,
    cancel: Arc<CancelFlag>,
    progress: Arc<SearchProgress>,
    cause: Mutex<Option<TerminalCause>>,
    phase: AtomicU8,
    /// Set when the worker starts the lift (progress/timeout baseline).
    started: Mutex<Option<Instant>>,
    deadline: Mutex<Option<Instant>>,
    /// `true` once the terminal event has been emitted. Doubles as the
    /// per-job emission lock that keeps the monitor's `search_progress`
    /// from interleaving into (or trailing) the terminal sequence.
    closed: Mutex<bool>,
    /// The server-wide count of admitted-but-not-yet-closed streams;
    /// decremented exactly once, after this job's terminal emission, so
    /// `drain` can wait for events to have actually reached sinks.
    outstanding: Arc<AtomicU64>,
    /// Server-wide terminal-event counters, bumped inside the one-close
    /// gate so they count events actually delivered (a lost race to
    /// close never counts).
    terminals: Arc<TerminalCounters>,
    /// Server-wide histograms; service time is recorded inside the
    /// one-close gate so every stream is counted exactly once.
    metrics: Arc<ServingMetrics>,
}

/// Counts of terminal (and share/error) events actually emitted on the
/// wire — the ground truth loadgen's exactly-one-terminal invariant
/// checks against. `done`/`failed` move strictly inside
/// [`JobState::emit_terminal`]'s single-close gate, so a finish path
/// that loses the close race is never counted.
#[derive(Debug, Default)]
struct TerminalCounters {
    done: AtomicU64,
    failed: AtomicU64,
    error: AtomicU64,
    shared: AtomicU64,
}

impl JobState {
    /// Records the external cause (first one wins) and raises the
    /// cancel flag. Returns the cause now in effect.
    fn terminate(&self, cause: TerminalCause) -> TerminalCause {
        let mut slot = self.cause.lock().expect("cause poisoned");
        let effective = *slot.get_or_insert(cause);
        drop(slot);
        self.cancel.cancel();
        effective
    }

    fn cause(&self) -> Option<TerminalCause> {
        *self.cause.lock().expect("cause poisoned")
    }

    /// Emits a non-terminal event unless the stream is already closed,
    /// stamping the job's trace ID. Every per-request event funnels
    /// through here or [`JobState::emit_terminal`], so no event of an
    /// admitted lift leaves the server unattributed.
    fn emit(&self, mut event: Event) {
        event.set_trace_id(&self.trace_id);
        let closed = self.closed.lock().expect("stream poisoned");
        if !*closed {
            (self.sink)(&event);
        }
    }

    /// Closes the stream with `events` (the last must be terminal);
    /// exactly one close wins, later attempts are dropped. The trace ID
    /// is stamped on every event, and the stream's service time is
    /// recorded inside the gate — exactly once per admitted job. The
    /// server-wide outstanding count drops only after the events have
    /// been handed to the sink.
    fn emit_terminal(&self, events: Vec<Event>) {
        let mut closed = self.closed.lock().expect("stream poisoned");
        if *closed {
            return;
        }
        *closed = true;
        let service_us = self
            .admitted
            .elapsed()
            .as_micros()
            .min(u64::MAX as u128) as u64;
        self.metrics
            .service_time
            .lock()
            .expect("service histogram poisoned")
            .record(service_us);
        for mut event in events {
            event.set_trace_id(&self.trace_id);
            (self.sink)(&event);
            match event {
                Event::Done { .. } => {
                    self.terminals.done.fetch_add(1, Ordering::Relaxed);
                }
                Event::Failed { .. } => {
                    self.terminals.failed.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One queued job: the resolved query + configuration, ready to lift.
struct Job {
    state: Arc<JobState>,
    query: LiftQuery,
    config: StaggConfig,
    timeout: Option<Duration>,
    cache_key: u64,
}

/// The active-job registry: every admitted, unfinished job plus a
/// per-client inflight count maintained incrementally, so the fairness
/// check at admission is O(1) instead of a scan over every active job.
/// The counter moves strictly under the same lock as the map, so the
/// two can never disagree; every finish path (worker completion,
/// cancel, timeout, disconnect, shutdown drain) funnels through
/// [`Active::remove`] via `Inner::release`.
#[derive(Default)]
struct Active {
    jobs: HashMap<(u64, String), Arc<JobState>>,
    inflight: HashMap<u64, usize>,
}

impl Active {
    fn insert(&mut self, key: (u64, String), state: Arc<JobState>) {
        *self.inflight.entry(key.0).or_default() += 1;
        self.jobs.insert(key, state);
    }

    fn remove(&mut self, key: &(u64, String)) -> Option<Arc<JobState>> {
        let state = self.jobs.remove(key)?;
        match self.inflight.get_mut(&key.0) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                // Idle clients leave no residue: a serving process sees
                // a fresh client id per connection, and an entry per
                // ever-seen connection would grow without bound.
                self.inflight.remove(&key.0);
            }
        }
        Some(state)
    }

    fn inflight(&self, client: u64) -> usize {
        self.inflight.get(&client).copied().unwrap_or(0)
    }
}

#[derive(Default)]
struct Counters {
    received: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    /// Static-analysis tier totals, summed over every lift driven by
    /// this process (cache hits excluded — no search ran).
    pruned_infeasible: AtomicU64,
    pruned_equivalent: AtomicU64,
    unchecked_kernels: AtomicU64,
}

struct Inner {
    config: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// Streams admitted but not yet closed with a terminal event.
    outstanding: Arc<AtomicU64>,
    /// Every admitted, unfinished job, keyed by (client, request id),
    /// with per-client inflight counts for O(1) fairness checks.
    active: Mutex<Active>,
    results: ResultCache,
    counters: Counters,
    /// Lifts actually driven per oracle spec (cache hits excluded).
    oracle_counts: Mutex<BTreeMap<String, u64>>,
    /// One provider instance per distinct spec, shared by every worker
    /// (providers are `Send + Sync` by design). Sharing is load-bearing
    /// for `record:` specs: all workers must feed one `FixtureStore`,
    /// or concurrent recordings to the same path would clobber each
    /// other's labels.
    providers: Mutex<HashMap<OracleSpec, Arc<dyn OracleProvider>>>,
    /// Provider instances built since start (the cache misses once per
    /// distinct spec, never once per request).
    providers_built: AtomicU64,
    shutdown: AtomicBool,
    next_client: AtomicU64,
    /// High-water mark of the queue length, maxed under the queue lock
    /// at every admission — monotone, never lowered by drains.
    peak_queued: AtomicU64,
    /// One busy flag per worker (`1` while a job runs on it), indexed
    /// by worker number — the in-flight-per-worker gauge.
    worker_busy: Vec<AtomicU64>,
    /// Terminal/share/error event counts actually emitted (shared with
    /// every [`JobState`]).
    terminals: Arc<TerminalCounters>,
    /// Histograms + per-phase totals (shared with every [`JobState`]).
    metrics: Arc<ServingMetrics>,
    /// Bounded ring buffer of recent spans behind the `trace` request.
    journal: SpanJournal,
}

impl Inner {
    fn stats(&self) -> ServerStats {
        let queued = self.queue.lock().expect("queue poisoned").len() as u64;
        let total_active = self.active.lock().expect("active poisoned").jobs.len() as u64;
        let oracles = self
            .oracle_counts
            .lock()
            .expect("oracle counts poisoned")
            .iter()
            .map(|(spec, lifts)| OracleStat {
                spec: spec.clone(),
                lifts: *lifts,
            })
            .collect();
        let store = self
            .config
            .store
            .as_ref()
            .map(|s| s.counters())
            .unwrap_or_default();
        ServerStats {
            received: self.counters.received.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            cache_hits: self.results.hits(),
            cache_misses: self.results.misses(),
            queued,
            active: total_active.saturating_sub(queued),
            workers: self.config.workers as u64,
            providers_built: self.providers_built.load(Ordering::Relaxed),
            store_loaded: store.loaded,
            store_appended: store.appended,
            store_compactions: store.compactions,
            oracles,
            peak_queued: self.peak_queued.load(Ordering::Relaxed),
            worker_inflight: self
                .worker_busy
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            done_events: self.terminals.done.load(Ordering::Relaxed),
            failed_events: self.terminals.failed.load(Ordering::Relaxed),
            error_events: self.terminals.error.load(Ordering::Relaxed),
            shared_events: self.terminals.shared.load(Ordering::Relaxed),
            // Plain servers have no replica view; the router overrides.
            replicas: Vec::new(),
            pruned_infeasible: self.counters.pruned_infeasible.load(Ordering::Relaxed),
            pruned_equivalent: self.counters.pruned_equivalent.load(Ordering::Relaxed),
            unchecked_kernels: self.counters.unchecked_kernels.load(Ordering::Relaxed),
            service_time: self
                .metrics
                .service_time
                .lock()
                .expect("service histogram poisoned")
                .clone(),
            queue_wait: self
                .metrics
                .queue_wait
                .lock()
                .expect("queue-wait histogram poisoned")
                .clone(),
            phase_times: self.metrics.phases.snapshot(),
        }
    }

    /// Caches a deterministic terminal outcome and, when a store is
    /// configured and the lift *solved*, persists it so a restarted
    /// server answers the same request without running a search.
    /// Failures stay in-memory only: a budget can be exhausted by wall
    /// clock, so persisting one would make a transient failure
    /// permanent across restarts (and a restart is exactly when a
    /// faster box or a raised budget deserves a fresh try — the same
    /// rule the warm-started batch runner applies). Persistence is
    /// best-effort: the in-memory answer is already correct, and the
    /// next identical outcome supersedes cleanly.
    fn remember(
        &self,
        key: u64,
        label: &str,
        outcome: CachedOutcome,
        elapsed_ms: u64,
        trace: (&str, &str), // (trace_id, request_id) for the append span
    ) {
        self.results.insert(key, outcome.clone());
        if outcome.solution.is_none() {
            return;
        }
        let record = outcome.to_record(key, label, elapsed_ms as f64 / 1000.0);
        if let Some(store) = &self.config.store {
            let append_started = Instant::now();
            if let Err(e) = store.append(record.clone()) {
                eprintln!("lift_server: store append failed: {e}");
            }
            let append_us = append_started
                .elapsed()
                .as_micros()
                .min(u64::MAX as u128) as u64;
            self.metrics.phases.add(Phase::StoreAppend, append_us);
            self.journal.record(SpanRecord {
                trace_id: trace.0.to_string(),
                request_id: trace.1.to_string(),
                name: Phase::StoreAppend.name().to_string(),
                start_ms: self.journal.now_ms(),
                dur_us: append_us,
            });
        }
        self.push_to_peers(&record);
    }

    /// Pushes a locally solved lift to every configured peer replica,
    /// best-effort and off the worker thread: a slow or dead peer must
    /// not delay the solving request's own terminal events. Only
    /// *locally* solved lifts go out — records that arrived via
    /// `share_lift` are stored without re-pushing (see
    /// [`ServerHandle::share`]), so a fully-meshed replica set cannot
    /// ring-forward a record forever.
    fn push_to_peers(&self, record: &LiftRecord) {
        if self.config.peers.is_empty() {
            return;
        }
        let peers = self.config.peers.clone();
        let record = record.clone();
        let spawned = std::thread::Builder::new()
            .name("gtl-serve-share".into())
            .spawn(move || {
                for peer in peers {
                    if let Err(e) = push_share(&peer, &record) {
                        eprintln!(
                            "lift_server: share of {:016x} to {peer} failed: {e}",
                            record.key
                        );
                    }
                }
            });
        if let Err(e) = spawned {
            eprintln!("lift_server: could not spawn share thread: {e}");
        }
    }

    /// Removes a finished job from the active registry, releasing its
    /// fairness slot.
    fn release(&self, client: u64, id: &str) {
        self.active
            .lock()
            .expect("active poisoned")
            .remove(&(client, id.to_string()));
    }
}

/// Delivers one `share_lift` to a peer and waits for its one-line ack
/// (so a crash-looping peer surfaces as an error here, not silence).
fn push_share(peer: &str, record: &LiftRecord) -> std::io::Result<()> {
    use std::io::{BufRead, BufReader, Write};

    let timeout = Duration::from_secs(10);
    let addr = peer
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("`{peer}` resolves to no address"),
            )
        })?;
    let mut stream = std::net::TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = Request::ShareLift {
        id: format!("share-{:016x}", record.key),
        record: record.clone(),
    };
    stream.write_all(format!("{}\n", request.to_line()).as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut ack = String::new();
    reader.read_line(&mut ack)?;
    match Event::parse_line(&ack) {
        Ok(Event::Shared { .. }) => Ok(()),
        Ok(other) => Err(std::io::Error::other(format!(
            "peer rejected share: {}",
            other.to_line()
        ))),
        Err(e) => Err(std::io::Error::other(format!("bad share ack: {e}"))),
    }
}

/// Builds the pipeline query for a request, or a protocol error. Also
/// used by the router, which resolves queries locally to compute the
/// consistent-hash routing key without contacting a replica.
pub(crate) fn resolve_query(request: &LiftRequest) -> Result<LiftQuery, WireError> {
    match &request.kernel {
        KernelSpec::Benchmark { name } => {
            let b = by_name(name).ok_or_else(|| {
                WireError::new(
                    ErrorCode::UnknownBenchmark,
                    format!("no suite benchmark named `{name}`"),
                )
                .with_id(request.id.clone())
            })?;
            Ok(LiftQuery {
                label: b.name.to_string(),
                source: b.source.to_string(),
                task: b.lift_task(),
                ground_truth: Some(b.parse_ground_truth()),
            })
        }
        KernelSpec::Source {
            label,
            source,
            params,
            ground_truth,
        } => {
            let bad_source = |m: String| {
                WireError::new(ErrorCode::BadSource, m).with_id(request.id.clone())
            };
            let prog = parse_c(source).map_err(|e| bad_source(format!("C kernel: {e}")))?;
            let func = prog.kernel().clone();
            if func.params.len() != params.len() {
                return Err(bad_source(format!(
                    "kernel has {} parameters but {} param specs were given",
                    func.params.len(),
                    params.len()
                )));
            }
            let ground_truth = match ground_truth {
                // Optional: replay/scripted lifts work without a hint;
                // the synthetic oracle simply abstains.
                None => None,
                Some(gt) => Some(
                    parse_program(gt).map_err(|e| bad_source(format!("ground truth: {e}")))?,
                ),
            };
            let mut output = None;
            let task_params: Vec<TaskParam> = params
                .iter()
                .zip(&func.params)
                .enumerate()
                .map(|(i, (spec, p))| TaskParam {
                    name: p.name.clone(),
                    kind: match &spec.kind {
                        WireParamKind::Size { symbol } => {
                            TaskParamKind::Size(symbol.clone())
                        }
                        WireParamKind::ScalarIn { nonzero } => {
                            TaskParamKind::ScalarIn { nonzero: *nonzero }
                        }
                        WireParamKind::ArrayIn { dims, nonzero } => TaskParamKind::ArrayIn {
                            dims: dims.clone(),
                            nonzero: *nonzero,
                        },
                        WireParamKind::ArrayOut { dims } => {
                            output = Some(i);
                            TaskParamKind::ArrayOut { dims: dims.clone() }
                        }
                    },
                })
                .collect();
            let output = output
                .ok_or_else(|| bad_source("no `array_out` parameter".to_string()))?;
            let constants = func.int_constants();
            Ok(LiftQuery {
                label: label.clone(),
                source: source.clone(),
                task: LiftTask {
                    func,
                    params: task_params,
                    output,
                    constants,
                    ref_program: Default::default(),
                },
                ground_truth,
            })
        }
    }
}

/// Streams `candidate_found` events from inside the pipeline.
struct SinkObserver<'a> {
    id: &'a str,
    trace_id: &'a str,
    sink: &'a EventSink,
}

impl LiftObserver for SinkObserver<'_> {
    fn validated(&self, concrete: &TacoProgram) {
        (self.sink)(&Event::CandidateFound {
            id: self.id.to_string(),
            candidate: concrete.to_string(),
            trace_id: Some(self.trace_id.to_string()),
        });
    }
}

/// The wire reason for a pipeline failure.
fn wire_reason(failure: &FailureReason) -> (String, Option<String>) {
    match failure {
        FailureReason::NoUsableCandidates => ("no_usable_candidates".into(), None),
        FailureReason::SearchExhausted => ("search_exhausted".into(), None),
        FailureReason::BudgetExceeded => ("budget_exceeded".into(), None),
        FailureReason::BadQuery(m) => ("bad_query".into(), Some(m.clone())),
        FailureReason::Cancelled => ("cancelled".into(), None),
    }
}

fn worker_loop(inner: &Inner, worker: usize) {
    // One evaluation cache per worker, reused across every lift this
    // worker runs: recurring kernels never recompile. Oracle providers
    // are hoisted further still — one instance per spec per *server*
    // (see `Inner::providers`) — so workers share recording stores and
    // replay fixtures instead of rebuilding them per request.
    let eval_cache = EvalCache::default();
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = inner
                    .queue_cv
                    .wait(queue)
                    .expect("queue poisoned");
            }
        };
        inner.worker_busy[worker].store(1, Ordering::Release);
        process(inner, job, &eval_cache);
        inner.worker_busy[worker].store(0, Ordering::Release);
    }
}

/// Resolves a job's provider from the server-wide cache, building (and
/// counting) it on first sight of the spec. The lock is held across
/// construction so two workers racing on a new `record:` spec cannot
/// both open (and truncate-merge) the same fixture path.
fn resolve_provider(
    inner: &Inner,
    spec: &OracleSpec,
) -> Result<Arc<dyn OracleProvider>, String> {
    let mut providers = inner.providers.lock().expect("providers poisoned");
    if let Some(provider) = providers.get(spec) {
        return Ok(Arc::clone(provider));
    }
    let provider = spec
        .provider()
        .map_err(|e| format!("oracle `{}`: {e}", spec.cli_name()))?;
    inner.providers_built.fetch_add(1, Ordering::Relaxed);
    providers.insert(spec.clone(), Arc::clone(&provider));
    Ok(provider)
}

fn process(inner: &Inner, job: Job, eval_cache: &EvalCache) {
    let state = &job.state;
    let id = state.id.clone();
    let client = state.client;
    state.phase.store(PHASE_RUNNING, Ordering::Release);

    // Queue wait: admission → this pickup. Recorded whatever happens
    // next (a job cancelled while queued still waited).
    let queue_us = state
        .admitted
        .elapsed()
        .as_micros()
        .min(u64::MAX as u128) as u64;
    inner
        .metrics
        .queue_wait
        .lock()
        .expect("queue-wait histogram poisoned")
        .record(queue_us);
    inner.journal.record(SpanRecord {
        trace_id: state.trace_id.clone(),
        request_id: id.clone(),
        name: "queue_wait".to_string(),
        start_ms: inner.journal.now_ms(),
        dur_us: queue_us,
    });

    // Cancelled (or shut down) while still queued?
    if let Some(cause) = state.cause() {
        inner.release(client, &id);
        finish_failed(inner, state, cause.reason().to_string(), None, (0, 0, 0), false);
        return;
    }

    // Result cache: identical request already answered? (Bookkeeping
    // strictly precedes the terminal emission throughout: a client that
    // reacts to the terminal event must observe the slot released and
    // the counters settled.)
    if let Some(cached) = inner.results.lookup(job.cache_key) {
        inner.release(client, &id);
        match cached.solution {
            Some(solution) => {
                inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                state.emit_terminal(vec![
                    Event::Verified {
                        id: id.clone(),
                        solution: solution.clone(),
                        trace_id: None,
                    },
                    Event::Done {
                        id: id.clone(),
                        solution,
                        attempts: cached.attempts,
                        nodes: cached.nodes,
                        elapsed_ms: 0,
                        cached: true,
                        trace_id: None,
                    },
                ]);
            }
            None => {
                let reason = cached
                    .reason
                    .unwrap_or_else(|| "search_exhausted".to_string());
                inner.counters.failed.fetch_add(1, Ordering::Relaxed);
                state.emit_terminal(vec![Event::Failed {
                    id: id.clone(),
                    reason,
                    detail: cached.detail,
                    attempts: cached.attempts,
                    nodes: cached.nodes,
                    elapsed_ms: 0,
                    cached: true,
                    trace_id: None,
                }]);
            }
        }
        return;
    }

    // Resolve the oracle provider from the shared cache (hoisted per
    // spec, not per request). A spec whose fixture went away between
    // admission and execution fails the job, not the worker.
    let provider = match resolve_provider(inner, &job.config.oracle) {
        Ok(provider) => provider,
        Err(detail) => {
            inner.release(client, &id);
            finish_failed(
                inner,
                state,
                "bad_query".to_string(),
                Some(detail),
                (0, 0, 0),
                false,
            );
            return;
        }
    };
    *inner
        .oracle_counts
        .lock()
        .expect("oracle counts poisoned")
        .entry(job.config.oracle.cli_name())
        .or_default() += 1;

    // Arm the lift: progress baseline + timeout deadline.
    let started = Instant::now();
    *state.started.lock().expect("started poisoned") = Some(started);
    if let Some(timeout) = job.timeout {
        *state.deadline.lock().expect("deadline poisoned") = Some(started + timeout);
    }

    let observer = SinkObserver {
        id: &id,
        trace_id: &state.trace_id,
        sink: &state.sink,
    };
    let hooks = LiftHooks {
        observer: Some(&observer),
        search: SearchHooks {
            cancel: Some(Arc::clone(&state.cancel)),
            progress: Some(Arc::clone(&state.progress)),
        },
        eval_cache: Some(eval_cache),
    };
    let report = Stagg::new(provider, job.config.clone()).lift_with(&job.query, &hooks);
    let elapsed_ms = started.elapsed().as_millis() as u64;

    // Fold the lift's per-phase breakdown into the server totals and
    // journal one span per non-empty phase (plus the whole-lift span),
    // so a `trace` request replays where this request's time went.
    inner.metrics.phases.merge_times(&report.phase_times);
    let lift_end_ms = inner.journal.now_ms();
    for (phase, us) in report.phase_times.iter() {
        if us > 0 {
            inner.journal.record(SpanRecord {
                trace_id: state.trace_id.clone(),
                request_id: id.clone(),
                name: phase.name().to_string(),
                start_ms: lift_end_ms,
                dur_us: us,
            });
        }
    }
    inner.journal.record(SpanRecord {
        trace_id: state.trace_id.clone(),
        request_id: id.clone(),
        name: "lift".to_string(),
        start_ms: lift_end_ms,
        dur_us: started.elapsed().as_micros().min(u64::MAX as u128) as u64,
    });
    if let Some(threshold) = inner.config.slow_lift_threshold {
        if started.elapsed() >= threshold {
            eprintln!(
                "lift_server: slow lift `{}` (trace {}): {}ms, phases {}",
                job.query.label,
                state.trace_id,
                elapsed_ms,
                report
                    .phase_times
                    .iter()
                    .filter(|(_, us)| *us > 0)
                    .map(|(p, us)| format!("{}={}us", p.name(), us))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
        }
    }

    // Static-analysis totals accumulate whatever the outcome — pruning
    // work done on a failed lift is still work saved.
    inner
        .counters
        .pruned_infeasible
        .fetch_add(report.pruned_infeasible, Ordering::Relaxed);
    inner
        .counters
        .pruned_equivalent
        .fetch_add(report.pruned_equivalent, Ordering::Relaxed);
    inner
        .counters
        .unchecked_kernels
        .fetch_add(report.unchecked_kernels, Ordering::Relaxed);

    // An external cause (cancel / timeout / shutdown) overrides the
    // pipeline's own classification.
    if let Some(cause) = state.cause() {
        inner.release(client, &id);
        finish_failed(
            inner,
            state,
            cause.reason().to_string(),
            None,
            (report.attempts, report.nodes_expanded, elapsed_ms),
            false,
        );
        return;
    }

    match report.solution {
        Some(solution) => {
            let solution = solution.to_string();
            // Store before announcing: a client that reacts to `done` by
            // resubmitting the same kernel must find the entry in place
            // (and, with `--store`, already on disk).
            inner.remember(
                job.cache_key,
                &job.query.label,
                CachedOutcome {
                    solution: Some(solution.clone()),
                    reason: None,
                    detail: None,
                    attempts: report.attempts,
                    nodes: report.nodes_expanded,
                },
                elapsed_ms,
                (&state.trace_id, &id),
            );
            inner.release(client, &id);
            inner.counters.completed.fetch_add(1, Ordering::Relaxed);
            state.emit_terminal(vec![
                Event::Verified {
                    id: id.clone(),
                    solution: solution.clone(),
                    trace_id: None,
                },
                Event::Done {
                    id: id.clone(),
                    solution,
                    attempts: report.attempts,
                    nodes: report.nodes_expanded,
                    elapsed_ms,
                    cached: false,
                    trace_id: None,
                },
            ]);
        }
        None => {
            let failure = report
                .failure
                .unwrap_or(FailureReason::SearchExhausted);
            let (reason, detail) = wire_reason(&failure);
            // `Cancelled` without a recorded cause can only be a race
            // where the flag rose as the search finished; report it as a
            // plain cancel and do not cache.
            if !matches!(failure, FailureReason::Cancelled) {
                inner.remember(
                    job.cache_key,
                    &job.query.label,
                    CachedOutcome {
                        solution: None,
                        reason: Some(reason.clone()),
                        detail: detail.clone(),
                        attempts: report.attempts,
                        nodes: report.nodes_expanded,
                    },
                    elapsed_ms,
                    (&state.trace_id, &id),
                );
            }
            inner.release(client, &id);
            finish_failed(
                inner,
                state,
                reason,
                detail,
                (report.attempts, report.nodes_expanded, elapsed_ms),
                false,
            );
        }
    }
}

fn finish_failed(
    inner: &Inner,
    state: &JobState,
    reason: String,
    detail: Option<String>,
    stats: (u64, u64, u64), // (attempts, nodes, elapsed_ms)
    cached: bool,
) {
    let counter = match reason.as_str() {
        "cancelled" | "timeout" | "shutting_down" => &inner.counters.cancelled,
        _ => &inner.counters.failed,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    state.emit_terminal(vec![Event::Failed {
        id: state.id.clone(),
        reason,
        detail,
        attempts: stats.0,
        nodes: stats.1,
        elapsed_ms: stats.2,
        cached,
        trace_id: None,
    }]);
}

/// The monitor thread: every `progress_interval`, stream
/// `search_progress` for running jobs and enforce deadlines.
fn monitor_loop(inner: &Inner) {
    while !inner.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(inner.config.progress_interval);
        let running: Vec<Arc<JobState>> = {
            let active = inner.active.lock().expect("active poisoned");
            active
                .jobs
                .values()
                .filter(|s| s.phase.load(Ordering::Acquire) == PHASE_RUNNING)
                .cloned()
                .collect()
        };
        let now = Instant::now();
        for state in running {
            let started = *state.started.lock().expect("started poisoned");
            let Some(started) = started else { continue };
            if state.cause().is_some() {
                continue; // already terminating; the worker reports
            }
            let deadline = *state.deadline.lock().expect("deadline poisoned");
            if deadline.is_some_and(|d| now >= d) {
                state.terminate(TerminalCause::Timeout);
                continue;
            }
            state.emit(Event::SearchProgress {
                id: state.id.clone(),
                nodes: state.progress.nodes(),
                attempts: state.progress.attempts(),
                elapsed_ms: started.elapsed().as_millis() as u64,
                trace_id: None,
            });
        }
    }
}

/// A handle for submitting work to a running [`LiftServer`]. Each
/// handle represents one client: request ids are scoped to it, so
/// independent clients can reuse ids without colliding.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
    client: u64,
}

/// What a transport should do after [`ServerHandle::handle_line`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineAction {
    /// Keep reading requests.
    Continue,
    /// The client asked for server shutdown.
    Shutdown,
}

impl ServerHandle {
    /// Admits a lift request. On success the job is queued, a `queued`
    /// event has been emitted to `sink`, and the queue position (jobs in
    /// the queue at admission, this one included) is returned. All
    /// further events of the request arrive through `sink` from server
    /// threads.
    ///
    /// # Errors
    ///
    /// [`WireError`] with code `shutting_down`, `unknown_benchmark`,
    /// `bad_source`, `duplicate_id` or `queue_full`; no events have been
    /// emitted for the request in that case.
    pub fn submit(&self, request: LiftRequest, sink: EventSink) -> Result<usize, WireError> {
        let inner = &self.inner;
        let reject = |e: WireError| {
            inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            Err(e)
        };
        if inner.shutdown.load(Ordering::Acquire) {
            return reject(
                WireError::new(ErrorCode::ShuttingDown, "server is shutting down")
                    .with_id(request.id.clone()),
            );
        }
        let query = match resolve_query(&request) {
            Ok(q) => q,
            Err(e) => return reject(e),
        };
        let mut config = request.overrides.apply(&inner.config.base);
        if let Some(raw) = &request.oracle {
            // A request-selected oracle must parse and every provider
            // kind it involves must be allowlisted. Provider *instances*
            // are built lazily per worker, not here.
            let Some(spec) = OracleSpec::from_cli_name(raw) else {
                return reject(
                    WireError::new(
                        ErrorCode::OracleRejected,
                        format!("unparseable oracle spec `{raw}`"),
                    )
                    .with_id(request.id.clone()),
                );
            };
            if let Some(kind) = spec
                .kinds()
                .iter()
                .find(|k| !inner.config.oracle_allowlist.iter().any(|a| a == *k))
            {
                return reject(
                    WireError::new(
                        ErrorCode::OracleRejected,
                        format!(
                            "oracle kind `{kind}` is not allowed here (allowed: {})",
                            inner.config.oracle_allowlist.join(", ")
                        ),
                    )
                    .with_id(request.id.clone()),
                );
            }
            config.oracle = spec;
        }
        let timeout = request
            .overrides
            .timeout_ms
            .map(Duration::from_millis)
            .or(inner.config.default_timeout);
        let cache_key = request_key(&query, &config);
        // The trace ID: client-supplied (or router-stamped), else
        // minted here at admission.
        let trace_id = request.trace_id.clone().unwrap_or_else(new_trace_id);
        let state = Arc::new(JobState {
            id: request.id.clone(),
            trace_id,
            admitted: Instant::now(),
            client: self.client,
            sink,
            cancel: Arc::new(CancelFlag::new()),
            progress: Arc::new(SearchProgress::new()),
            cause: Mutex::new(None),
            phase: AtomicU8::new(PHASE_QUEUED),
            started: Mutex::new(None),
            deadline: Mutex::new(None),
            closed: Mutex::new(false),
            outstanding: Arc::clone(&inner.outstanding),
            terminals: Arc::clone(&inner.terminals),
            metrics: Arc::clone(&inner.metrics),
        });

        let key = (self.client, request.id.clone());
        {
            let mut active = inner.active.lock().expect("active poisoned");
            if active.jobs.contains_key(&key) {
                drop(active);
                return reject(
                    WireError::new(
                        ErrorCode::DuplicateId,
                        format!("request `{}` is still in flight", request.id),
                    )
                    .with_id(request.id.clone()),
                );
            }
            // Per-client fairness: one client may not occupy more than
            // its share of the shared queue. Checked under the active
            // lock, so concurrent submissions cannot both slip under
            // the cap; the registry keeps the count, so the check is
            // O(1) however many jobs other clients have in flight.
            let cap = inner.config.max_inflight_per_client;
            if cap > 0 {
                let inflight = active.inflight(self.client);
                if inflight >= cap {
                    drop(active);
                    return reject(
                        WireError::new(
                            ErrorCode::RateLimited,
                            format!(
                                "client already has {inflight} lift(s) in flight \
                                 (limit {cap}); retry after one finishes"
                            ),
                        )
                        .with_id(request.id.clone()),
                    );
                }
            }
            // Queue admission under the active lock, so a concurrent
            // duplicate of the same id cannot slip between the check and
            // the push.
            let mut queue = inner.queue.lock().expect("queue poisoned");
            if queue.len() >= inner.config.queue_capacity {
                return reject(
                    WireError::new(
                        ErrorCode::QueueFull,
                        format!(
                            "queue is at capacity ({})",
                            inner.config.queue_capacity
                        ),
                    )
                    .with_id(request.id.clone()),
                );
            }
            active.insert(key, Arc::clone(&state));
            queue.push_back(Job {
                state: Arc::clone(&state),
                query,
                config,
                timeout,
                cache_key,
            });
            let position = queue.len();
            // Maxed under the queue lock, so the gauge can never miss a
            // momentary high-water mark between push and sample.
            inner.peak_queued.fetch_max(position as u64, Ordering::Relaxed);
            inner.counters.received.fetch_add(1, Ordering::Relaxed);
            inner.outstanding.fetch_add(1, Ordering::AcqRel);
            // Emit `queued` while still holding the queue lock: a worker
            // cannot pop the job (and race a `done` ahead of it) until
            // the lock drops, so the stream provably opens with `queued`.
            (state.sink)(&Event::Queued {
                id: request.id,
                position,
                trace_id: Some(state.trace_id.clone()),
            });
            drop(queue);
            drop(active);
            inner.queue_cv.notify_one();
            Ok(position)
        }
    }

    /// Cancels a queued or running lift of this client. A queued job is
    /// removed from the queue immediately (releasing its slot) and its
    /// stream closed with `failed`/`cancelled`; a running job is stopped
    /// through the search engine's cancel flag and its worker closes the
    /// stream. Returns `false` when the id is unknown (already finished
    /// or never admitted).
    pub fn cancel(&self, id: &str) -> bool {
        self.cancel_client(self.client, id)
    }

    /// Cancels a lift with this id submitted by *any* client — the
    /// fallback behind wire-level `cancel` requests, since a scripted
    /// `lift_client --cancel` arrives on a fresh connection (a fresh
    /// client namespace). When several clients share the id, an
    /// arbitrary one is cancelled. Returns `false` when no client has
    /// the id in flight.
    pub fn cancel_any_client(&self, id: &str) -> bool {
        let owner = {
            let active = self.inner.active.lock().expect("active poisoned");
            active
                .jobs
                .keys()
                .find(|(_, key_id)| key_id == id)
                .map(|(client, _)| *client)
        };
        match owner {
            Some(client) => self.cancel_client(client, id),
            None => false,
        }
    }

    fn cancel_client(&self, client: u64, id: &str) -> bool {
        let key = (client, id.to_string());
        let state = {
            let active = self.inner.active.lock().expect("active poisoned");
            match active.jobs.get(&key) {
                Some(state) => Arc::clone(state),
                None => return false,
            }
        };
        state.terminate(TerminalCause::Cancelled);
        // Still queued? Pull it out now so the slot frees immediately.
        let removed = {
            let mut queue = self.inner.queue.lock().expect("queue poisoned");
            let before = queue.len();
            queue.retain(|job| !Arc::ptr_eq(&job.state, &state));
            before != queue.len()
        };
        if removed {
            self.inner.release(client, id);
            self.inner
                .counters
                .cancelled
                .fetch_add(1, Ordering::Relaxed);
            state.emit_terminal(vec![Event::Failed {
                id: state.id.clone(),
                reason: "cancelled".into(),
                detail: None,
                attempts: 0,
                nodes: 0,
                elapsed_ms: 0,
                cached: false,
                trace_id: None,
            }]);
        }
        true
    }

    /// Cancels every queued or running lift of this client — the
    /// disconnect path: a transport whose peer went away calls this so
    /// abandoned lifts stop burning workers. Returns how many were
    /// cancelled.
    pub fn cancel_all(&self) -> usize {
        let ids: Vec<String> = {
            let active = self.inner.active.lock().expect("active poisoned");
            active
                .jobs
                .keys()
                .filter(|(client, _)| *client == self.client)
                .map(|(_, id)| id.clone())
                .collect()
        };
        ids.iter().filter(|id| self.cancel(id)).count()
    }

    /// A statistics snapshot.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }

    /// Accepts a lift record pushed by a peer replica (the receiving
    /// half of replica lift-sharing), returning the terminal event for
    /// the share request's one-event stream.
    ///
    /// The record enters the result cache — and the store, when one is
    /// configured — exactly as if this server had solved it, so a
    /// repeat of the kernel is answered as a warm cache hit with zero
    /// search attempts. The store's identical-append dedup makes
    /// re-pushes idempotent (`stored: false` on the ack), and accepted
    /// records are deliberately *not* re-pushed to this server's own
    /// peers: in a full mesh every replica hears each solve directly
    /// from the solver, and forwarding would circulate records forever.
    pub fn share(&self, id: &str, record: LiftRecord) -> Event {
        let inner = &self.inner;
        let reject = |message: String| {
            inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            Event::Error {
                id: Some(id.to_string()),
                code: ErrorCode::BadRequest,
                message,
                trace_id: None,
            }
        };
        if !inner.config.accept_shared_lifts {
            return reject(
                "this server does not accept shared lifts \
                 (start it with --accept-shares)"
                    .to_string(),
            );
        }
        if !record.solved() {
            // The write path never persists failures (a wall-clock
            // budget failure must not become permanent); the same rule
            // holds for pushed records.
            return reject("only solved lifts may be shared".to_string());
        }
        if !record.seconds.is_finite() {
            return reject(format!(
                "record seconds must be finite, got {}",
                record.seconds
            ));
        }
        let stored = match &inner.config.store {
            Some(store) => match store.append(record.clone()) {
                Ok(appended) => appended,
                Err(e) => {
                    // The in-memory cache still serves the record; only
                    // durability was lost, as with local solves.
                    eprintln!("lift_server: shared-lift append failed: {e}");
                    false
                }
            },
            None => false,
        };
        inner
            .results
            .insert(record.key, CachedOutcome::from_record(&record));
        Event::Shared {
            id: id.to_string(),
            stored,
        }
    }

    /// Parses and executes one wire line: lifts are submitted, cancels
    /// and stats answered, errors reported — all through `sink`. This is
    /// the single dispatch point shared by the stdio and TCP transports.
    pub fn handle_line(&self, line: &str, sink: &EventSink) -> LineAction {
        let line = line.trim();
        if line.is_empty() {
            return LineAction::Continue;
        }
        let terminals = &self.inner.terminals;
        let emit_error = |event: &Event| {
            terminals.error.fetch_add(1, Ordering::Relaxed);
            sink(event);
        };
        match Request::parse_line(line) {
            Err(e) => emit_error(&e.to_event()),
            Ok(Request::Lift(request)) => {
                if let Err(e) = self.submit(request, Arc::clone(sink)) {
                    emit_error(&e.to_event());
                }
            }
            Ok(Request::Cancel { id }) => {
                // Own ids first; fall back across clients so a cancel
                // arriving on a fresh connection (scripted use) still
                // reaches the lift it names.
                if !self.cancel(&id) && !self.cancel_any_client(&id) {
                    emit_error(&Event::Error {
                        id: Some(id.clone()),
                        code: ErrorCode::UnknownRequest,
                        message: format!("no queued or running lift `{id}`"),
                        trace_id: None,
                    });
                }
            }
            Ok(Request::Stats) => sink(&Event::Stats {
                stats: self.stats(),
            }),
            Ok(Request::Metrics) => sink(&Event::Metrics {
                text: crate::protocol::render_prometheus(&self.stats()),
            }),
            Ok(Request::Trace { trace_id }) => sink(&Event::Trace {
                spans: self.inner.journal.dump(&trace_id),
                trace_id,
            }),
            Ok(Request::ShareLift { id, record }) => {
                let event = self.share(&id, record);
                match &event {
                    Event::Shared { .. } => {
                        terminals.shared.fetch_add(1, Ordering::Relaxed);
                        sink(&event);
                    }
                    _ => emit_error(&event),
                }
            }
            Ok(Request::Shutdown) => return LineAction::Shutdown,
        }
        LineAction::Continue
    }

    /// Submits a request and blocks until its stream terminates,
    /// returning every event in order. Convenience for scripted batch
    /// use and tests; admission errors come back as a one-event stream.
    pub fn lift_blocking(&self, request: LiftRequest) -> Vec<Event> {
        let (tx, rx) = std::sync::mpsc::channel::<Event>();
        let sink: EventSink = Arc::new(move |event: &Event| {
            let _ = tx.send(event.clone());
        });
        if let Err(e) = self.submit(request, sink) {
            return vec![e.to_event()];
        }
        let mut events = Vec::new();
        while let Ok(event) = rx.recv() {
            let terminal = event.is_terminal();
            events.push(event);
            if terminal {
                break;
            }
        }
        events
    }
}

/// The running server: worker pool + monitor thread. Dropping it (or
/// calling [`LiftServer::shutdown`]) shuts down gracefully: admission
/// stops, running lifts are cancelled through their [`CancelFlag`]s,
/// queued jobs drain with `failed`/`shutting_down` events, and every
/// thread is joined.
///
/// ```
/// use gtl_serve::{LiftRequest, LiftServer, ServerConfig};
///
/// let server = LiftServer::start(ServerConfig {
///     workers: 1,
///     ..ServerConfig::default()
/// });
/// let handle = server.handle();
/// let events = handle.lift_blocking(LiftRequest::benchmark("r1", "blas_dot"));
/// assert!(matches!(events.last(), Some(gtl_serve::Event::Done { .. })));
/// server.shutdown();
/// ```
pub struct LiftServer {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl LiftServer {
    /// Starts the worker pool and monitor. With a configured
    /// [`ServerConfig::store`], the result cache is prefilled from the
    /// store's live records, so repeat lifts from before a restart are
    /// answered as cache hits with zero search attempts.
    pub fn start(config: ServerConfig) -> LiftServer {
        let workers = config.workers.max(1);
        // A store-backed cache must hold at least the whole store, or
        // prefilling would evict the very outcomes it just loaded.
        let capacity = match &config.store {
            Some(store) => config.result_cache_capacity.max(store.len()),
            None => config.result_cache_capacity,
        };
        let results = ResultCache::new(capacity);
        if let Some(store) = &config.store {
            // Solved records only: the write side never persists
            // failures, but a merged or hand-edited store may carry
            // them, and serving one forever would make a transient
            // failure permanent — the exact thing the filter in
            // `remember` exists to prevent.
            for record in store.records() {
                if record.solved() {
                    results.insert(record.key, CachedOutcome::from_record(&record));
                }
            }
        }
        let journal = SpanJournal::new(config.journal_capacity.max(1));
        let inner = Arc::new(Inner {
            results,
            config: ServerConfig { workers, ..config },
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            outstanding: Arc::new(AtomicU64::new(0)),
            active: Mutex::new(Active::default()),
            counters: Counters::default(),
            oracle_counts: Mutex::new(BTreeMap::new()),
            providers: Mutex::new(HashMap::new()),
            providers_built: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            next_client: AtomicU64::new(0),
            peak_queued: AtomicU64::new(0),
            worker_busy: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            terminals: Arc::new(TerminalCounters::default()),
            metrics: Arc::new(ServingMetrics::default()),
            journal,
        });
        let mut threads = Vec::with_capacity(workers + 1);
        for worker in 0..workers {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gtl-serve-worker-{worker}"))
                    .spawn(move || worker_loop(&inner, worker))
                    .expect("spawn worker"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("gtl-serve-monitor".into())
                    .spawn(move || monitor_loop(&inner))
                    .expect("spawn monitor"),
            );
        }
        LiftServer { inner, threads }
    }

    /// A fresh client handle (its own request-id namespace).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
            client: self.inner.next_client.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Blocks until every admitted job has terminated *and its terminal
    /// event has been handed to its sink*. The batch idiom: submit
    /// everything, `drain`, then [`LiftServer::shutdown`] — used by the
    /// stdio transport on EOF.
    pub fn drain(&self) {
        while self.inner.outstanding.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Graceful shutdown (also runs on drop): stop admission, cancel
    /// everything in flight, drain the queue with `shutting_down`
    /// failures, join all threads.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for LiftServer {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let active = self.inner.active.lock().expect("active poisoned");
            for state in active.jobs.values() {
                state.terminate(TerminalCause::Shutdown);
            }
        }
        self.inner.queue_cv.notify_all();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}
