//! The lift-serving layer of the Guided Tensor Lifting reproduction:
//! a multi-client server that turns the one-shot STAGG pipeline into a
//! long-running service, toward the roadmap's "heavy lift traffic"
//! north star.
//!
//! Lift requests (a suite benchmark name, or raw C kernel source with
//! task metadata, plus per-request configuration overrides) arrive on a
//! JSON-lines protocol — over stdin/stdout or TCP via the `lift_server`
//! binary, or in-process through [`ServerHandle`]. Each request is
//! admitted to a **bounded job queue** drained by a **persistent worker
//! pool**; workers run the full pipeline (`gtl::Stagg::lift_with`) with
//! the parallel search engine and a long-lived per-worker
//! `gtl_taco::EvalCache`, and stream incremental [`Event`]s back to the
//! submitting client: `queued`, `search_progress`, `candidate_found`,
//! `verified`, then a terminal `done` / `failed` / `error`.
//!
//! A request-level [`ResultCache`] keyed by a normalized hash of the C
//! source + configuration answers repeated identical lifts instantly
//! (hit/miss counters surface in the `stats` request), and
//! cancellation — client `cancel` requests, per-request timeouts,
//! graceful shutdown — rides the search engine's
//! `gtl_search::CancelFlag` machinery end to end.
//!
//! The wire protocol is specified in `docs/PROTOCOL.md`; the serving
//! architecture is part of `docs/ARCHITECTURE.md`.
//!
//! # Example: an in-process server
//!
//! ```
//! use gtl_serve::{Event, LiftRequest, LiftServer, ServerConfig};
//!
//! let server = LiftServer::start(ServerConfig {
//!     workers: 2,
//!     ..ServerConfig::default()
//! });
//! let handle = server.handle();
//!
//! // Submit one suite benchmark and wait for its event stream.
//! let events = handle.lift_blocking(LiftRequest::benchmark("r1", "blas_dot"));
//! assert!(matches!(events.first(), Some(Event::Queued { .. })));
//! let Some(Event::Done { solution, cached: false, .. }) = events.last() else {
//!     panic!("expected an uncached done, got {:?}", events.last());
//! };
//!
//! // The identical request is now answered from the result cache.
//! let again = handle.lift_blocking(LiftRequest::benchmark("r2", "blas_dot"));
//! match again.last() {
//!     Some(Event::Done { solution: hit, cached: true, .. }) => assert_eq!(hit, solution),
//!     other => panic!("expected a cached done, got {other:?}"),
//! }
//! assert_eq!(handle.stats().cache_hits, 1);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod router;
pub mod server;
pub mod transport;

// The JSON implementation moved into `gtl_store` (the persistence logs
// and oracle fixtures share it); re-exported here so wire-protocol
// callers keep their `gtl_serve::json` path.
pub use gtl_store::json;

pub use cache::{normalize_source, request_key, CachedOutcome, ResultCache};
pub use client::{ClientError, LiftClient};
pub use json::{Json, JsonError};
pub use gtl_trace::{LatencyHistogram, Phase, PhaseTimes, SpanRecord};
pub use protocol::{
    merge_stats, render_prometheus, ConfigOverrides, ErrorCode, Event, KernelSpec, LiftRequest,
    OracleStat, ReplicaStat, Request, ServerStats, WireError, WireParam, WireParamKind,
};
pub use router::{HashRing, LiftRouter, RouterConfig, RouterHandle};
pub use server::{EventSink, LiftServer, LineAction, ServerConfig, ServerHandle};
pub use transport::{serve_listener, serve_stdio, LineHandler};
