//! A small synchronous TCP client for `lift_server`, used by the
//! `lift_client` binary and available to scripted consumers.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use gtl_trace::SpanRecord;

use crate::protocol::{Event, LiftRequest, Request, ServerStats, WireError};

/// A connected client: sends [`Request`]s, reads [`Event`]s.
pub struct LiftClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A client-side failure: transport error or a malformed server line.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection failed or dropped.
    Io(std::io::Error),
    /// The server sent a line that does not decode as an event.
    Protocol(WireError),
    /// The server closed the stream before the expected event arrived.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl LiftClient {
    /// Connects to a running `lift_server`.
    ///
    /// # Errors
    ///
    /// Any connection error.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<LiftClient, ClientError> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(LiftClient { writer, reader })
    }

    /// Applies a read timeout to [`LiftClient::next_event`]; `None`
    /// blocks indefinitely (the default). A timed-out read surfaces as
    /// [`ClientError::Io`] with kind `WouldBlock`/`TimedOut`.
    ///
    /// # Errors
    ///
    /// Any socket-option error.
    pub fn set_read_timeout(&mut self, timeout: Option<std::time::Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Any write error.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next event; `None` on a cleanly closed connection.
    ///
    /// # Errors
    ///
    /// Read errors, or a server line that does not decode.
    pub fn next_event(&mut self) -> Result<Option<Event>, ClientError> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            return Event::parse_line(line.trim())
                .map(Some)
                .map_err(ClientError::Protocol);
        }
    }

    /// Submits a lift and blocks until its stream terminates, returning
    /// every event of the request (interleaved events of *other*
    /// requests on this connection are returned too — a scripted client
    /// normally has one request in flight).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or disconnection mid-stream.
    pub fn lift(&mut self, request: LiftRequest) -> Result<Vec<Event>, ClientError> {
        let id = request.id.clone();
        self.send(&Request::Lift(request))?;
        let mut events = Vec::new();
        loop {
            match self.next_event()? {
                None => return Err(ClientError::Disconnected),
                Some(event) => {
                    let terminal =
                        event.is_terminal() && event.id().is_none_or(|eid| eid == id);
                    events.push(event);
                    if terminal {
                        return Ok(events);
                    }
                }
            }
        }
    }

    /// Cancels an in-flight lift.
    ///
    /// # Errors
    ///
    /// Any write error.
    pub fn cancel(&mut self, id: impl Into<String>) -> Result<(), ClientError> {
        self.send(&Request::Cancel { id: id.into() })
    }

    /// Fetches a server statistics snapshot. Must not be called while a
    /// lift of this connection is still streaming (events would
    /// interleave); scripted clients call it between lifts.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or disconnection before the answer.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        self.send(&Request::Stats)?;
        loop {
            match self.next_event()? {
                None => return Err(ClientError::Disconnected),
                Some(Event::Stats { stats }) => return Ok(stats),
                Some(_) => continue, // stale events of finished lifts
            }
        }
    }

    /// Fetches the Prometheus text-format metrics exposition. Same
    /// interleaving caveat as [`LiftClient::stats`].
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or disconnection before the answer.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(&Request::Metrics)?;
        loop {
            match self.next_event()? {
                None => return Err(ClientError::Disconnected),
                Some(Event::Metrics { text }) => return Ok(text),
                Some(_) => continue, // stale events of finished lifts
            }
        }
    }

    /// Fetches the recent spans recorded under one trace ID (through a
    /// router, the concatenation over every replica). Same interleaving
    /// caveat as [`LiftClient::stats`].
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or disconnection before the answer.
    pub fn trace(&mut self, trace_id: impl Into<String>) -> Result<Vec<SpanRecord>, ClientError> {
        let trace_id = trace_id.into();
        self.send(&Request::Trace {
            trace_id: trace_id.clone(),
        })?;
        loop {
            match self.next_event()? {
                None => return Err(ClientError::Disconnected),
                Some(Event::Trace { trace_id: got, spans }) if got == trace_id => {
                    return Ok(spans)
                }
                Some(_) => continue, // stale events of finished lifts
            }
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// Any write error.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)
    }
}
