//! The request-level result cache: repeated lifts of the same kernel
//! under the same configuration are answered instantly, without
//! re-running search.
//!
//! The key is a 64-bit hash of the *normalized* C source (whitespace
//! runs collapsed, so formatting differences still hit), the request
//! label, the ground-truth program, the task's parameter layout, and
//! every resolved configuration field that can influence the outcome.
//! Only deterministic terminal outcomes are stored — lifts that ended by
//! cancellation, timeout or shutdown are not, since rerunning them can
//! legitimately produce a different answer.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gtl::{LiftQuery, StaggConfig};
use gtl_store::LiftRecord;

/// A stored terminal outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedOutcome {
    /// The verified solution, when the lift succeeded.
    pub solution: Option<String>,
    /// The wire failure reason, when it did not.
    pub reason: Option<String>,
    /// Optional failure detail.
    pub detail: Option<String>,
    /// Templates sent to validation by the original run.
    pub attempts: u64,
    /// Search-queue pops of the original run.
    pub nodes: u64,
}

impl CachedOutcome {
    /// The persistent form of this outcome, for `--store` servers.
    pub fn to_record(&self, key: u64, label: &str, seconds: f64) -> LiftRecord {
        LiftRecord {
            key,
            label: label.to_string(),
            solution: self.solution.clone(),
            reason: self.reason.clone(),
            detail: self.detail.clone(),
            attempts: self.attempts,
            nodes: self.nodes,
            seconds,
        }
    }

    /// Rehydrates a persisted outcome (the warm-start direction).
    pub fn from_record(record: &LiftRecord) -> CachedOutcome {
        CachedOutcome {
            solution: record.solution.clone(),
            reason: record.reason.clone(),
            detail: record.detail.clone(),
            attempts: record.attempts,
            nodes: record.nodes,
        }
    }
}

/// Collapses whitespace runs to single spaces and trims, so the cache
/// key survives reformatting of the same kernel.
pub fn normalize_source(source: &str) -> String {
    let mut out = String::with_capacity(source.len());
    let mut in_space = true; // leading whitespace is dropped
    for c in source.chars() {
        if c.is_whitespace() {
            if !in_space {
                out.push(' ');
                in_space = true;
            }
        } else {
            out.push(c);
            in_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// The cache key of one resolved request: normalized source + label +
/// ground truth + task layout + outcome-relevant configuration.
pub fn request_key(query: &LiftQuery, config: &StaggConfig) -> u64 {
    let mut h = DefaultHasher::new();
    normalize_source(&query.source).hash(&mut h);
    query.label.hash(&mut h);
    query
        .ground_truth
        .as_ref()
        .map(ToString::to_string)
        .hash(&mut h);
    // Task layout: parameter roles and shapes drive example generation
    // and verification. `Debug` form is a stable in-process encoding.
    format!("{:?}", query.task.params).hash(&mut h);
    query.task.output.hash(&mut h);
    query.task.constants.hash(&mut h);
    // Configuration: everything that can change the outcome. `jobs` is
    // included — parallel runs may surface a different (equally valid)
    // solution first, and a cache must never mix the two streams.
    config.mode.cli_name().hash(&mut h);
    config.grammar.cli_name().hash(&mut h);
    config.jobs.hash(&mut h);
    // The guidance source determines the candidate stream, hence the
    // grammar, hence the outcome — different oracles must never share
    // a cache entry. Rounds likewise.
    config.oracle.cli_name().hash(&mut h);
    config.oracle_rounds.hash(&mut h);
    config.budget.max_nodes.hash(&mut h);
    config.budget.max_attempts.hash(&mut h);
    config.budget.time_limit.as_millis().hash(&mut h);
    config.budget.max_depth.hash(&mut h);
    format!("{:?}", config.penalties).hash(&mut h);
    format!("{:?}", config.examples).hash(&mut h);
    format!("{:?}", config.verify).hash(&mut h);
    h.finish()
}

/// A bounded, thread-safe map of request keys to terminal outcomes,
/// with hit/miss counters surfaced through the `stats` request.
#[derive(Debug)]
pub struct ResultCache {
    map: Mutex<HashMap<u64, CachedOutcome>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Creates a cache bounded to `capacity` entries (minimum 1); a full
    /// cache is cleared wholesale, like the eval cache's shards.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a key, counting the outcome as a hit or miss.
    pub fn lookup(&self, key: u64) -> Option<CachedOutcome> {
        let found = self
            .map
            .lock()
            .expect("result cache poisoned")
            .get(&key)
            .cloned();
        match found {
            Some(outcome) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(outcome)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a terminal outcome.
    pub fn insert(&self, key: u64, outcome: CachedOutcome) {
        let mut map = self.map.lock().expect("result cache poisoned");
        if map.len() >= self.capacity && !map.contains_key(&key) {
            map.clear();
        }
        map.insert(key, outcome);
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("result cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ResultCache {
    fn default() -> ResultCache {
        ResultCache::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_benchsuite::by_name;

    fn query(name: &str) -> LiftQuery {
        let b = by_name(name).unwrap();
        LiftQuery {
            label: b.name.to_string(),
            source: b.source.to_string(),
            task: b.lift_task(),
            ground_truth: Some(b.parse_ground_truth()),
        }
    }

    #[test]
    fn normalization_collapses_whitespace() {
        assert_eq!(
            normalize_source("  void f( int n )\n\t{ return; }  "),
            "void f( int n ) { return; }"
        );
        assert_eq!(normalize_source(""), "");
        assert_eq!(normalize_source("   \n\t  "), "");
    }

    #[test]
    fn key_ignores_formatting_but_not_config() {
        let a = query("blas_dot");
        let mut b = a.clone();
        b.source = a.source.split_whitespace().collect::<Vec<_>>().join("  \n ");
        let cfg = StaggConfig::top_down();
        assert_eq!(request_key(&a, &cfg), request_key(&b, &cfg));

        let other_cfg = StaggConfig::bottom_up();
        assert_ne!(request_key(&a, &cfg), request_key(&a, &other_cfg));
        assert_ne!(
            request_key(&a, &cfg),
            request_key(&query("blas_gemv"), &cfg)
        );
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = ResultCache::new(8);
        assert!(cache.lookup(7).is_none());
        assert_eq!(cache.misses(), 1);
        cache.insert(
            7,
            CachedOutcome {
                solution: Some("a = b(i)".into()),
                reason: None,
                detail: None,
                attempts: 3,
                nodes: 10,
            },
        );
        let hit = cache.lookup(7).unwrap();
        assert_eq!(hit.solution.as_deref(), Some("a = b(i)"));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn capacity_bound_clears_wholesale() {
        let cache = ResultCache::new(2);
        for key in 0..3 {
            cache.insert(
                key,
                CachedOutcome {
                    solution: None,
                    reason: Some("search_exhausted".into()),
                    detail: None,
                    attempts: 0,
                    nodes: 0,
                },
            );
        }
        assert!(cache.len() <= 2, "bounded: {}", cache.len());
        // Re-inserting an existing key never clears.
        let before = cache.len();
        cache.insert(
            2,
            CachedOutcome {
                solution: None,
                reason: Some("search_exhausted".into()),
                detail: None,
                attempts: 1,
                nodes: 1,
            },
        );
        assert_eq!(cache.len(), before);
    }
}
