//! Chaos integration test: the load generator drives a two-replica
//! router set over real TCP while one replica is killed mid-run.
//!
//! The serving invariants under fault injection:
//! - every request gets **exactly one** terminal event (none lost, none
//!   duplicated), whether its stream finished on the victim, was cut
//!   mid-stream, or failed over;
//! - the router counts failovers per replica (the dead replica's
//!   refusals are visible from the routing side);
//! - warm reruns keep answering as zero-search cache hits, because
//!   replica lift-sharing had already spread the victim's solutions.

use std::net::TcpListener;
use std::time::Duration;

use gtl::{LiftQuery, StaggConfig};
use gtl_bench::loadgen::{run_load, Arrival, ChaosEvent, LoadOptions};
use gtl_benchsuite::{all_benchmarks, by_name};
use gtl_search::SearchBudget;
use gtl_serve::{
    request_key, serve_listener, HashRing, LiftRouter, LiftServer, RouterConfig, ServerConfig,
};

fn quick_base() -> StaggConfig {
    StaggConfig::top_down().with_budget(SearchBudget {
        time_limit: Duration::from_secs(30),
        ..SearchBudget::default()
    })
}

/// The routing key of a suite benchmark under `base` — the same value
/// the router and the replicas compute.
fn key_for(name: &str, base: &StaggConfig) -> u64 {
    let b = by_name(name).expect("suite benchmark");
    let query = LiftQuery {
        label: b.name.to_string(),
        source: b.source.to_string(),
        task: b.lift_task(),
        ground_truth: Some(b.parse_ground_truth()),
    };
    request_key(&query, base)
}

/// A quick-solving benchmark whose primary replica is `target`.
fn benchmark_routed_to(ring: &HashRing, target: &str, base: &StaggConfig) -> String {
    let preferred = ["blas_dot", "blas_axpy", "blas_scal", "sa_add_scalar", "blas_gemv"];
    let rest = all_benchmarks()
        .into_iter()
        .map(|b| b.name.to_string())
        .filter(|name| !preferred.contains(&name.as_str()));
    preferred
        .iter()
        .map(|s| s.to_string())
        .chain(rest)
        .find(|name| ring.primary(key_for(name, base)) == Some(target))
        .expect("some benchmark routes to the target replica")
}

#[test]
fn replica_kill_under_load_loses_no_terminal_events() {
    // Two replicas with mutual lift-sharing, bound before start so each
    // knows its peer.
    let listener_a = TcpListener::bind("127.0.0.1:0").expect("bind a");
    let listener_b = TcpListener::bind("127.0.0.1:0").expect("bind b");
    let addr_a = listener_a.local_addr().expect("addr").to_string();
    let addr_b = listener_b.local_addr().expect("addr").to_string();
    let replica = |listener: TcpListener, peer: String| {
        std::thread::spawn(move || {
            let server = LiftServer::start(ServerConfig {
                workers: 2,
                queue_capacity: 16,
                base: quick_base(),
                progress_interval: Duration::from_millis(20),
                peers: vec![peer],
                accept_shared_lifts: true,
                ..ServerConfig::default()
            });
            serve_listener(listener, "chaos-replica", || server.handle());
            server.shutdown();
        })
    };
    let thread_a = replica(listener_a, addr_b.clone());
    let thread_b = replica(listener_b, addr_a.clone());

    // The router in front, on its own TCP address.
    let router_listener = TcpListener::bind("127.0.0.1:0").expect("bind router");
    let router_addr = router_listener.local_addr().expect("addr").to_string();
    let router = LiftRouter::new(RouterConfig {
        replicas: vec![addr_a.clone(), addr_b.clone()],
        vnodes: 64,
        connect_timeout: Duration::from_millis(1500),
        base: quick_base(),
    });
    let router_thread = std::thread::spawn(move || {
        serve_listener(router_listener, "chaos-router", || router.handle());
    });

    // A corpus with one benchmark owned by each replica, so the victim
    // demonstrably carried traffic.
    let base = quick_base();
    let ring = HashRing::new(vec![addr_a.clone(), addr_b.clone()], 64);
    let on_a = benchmark_routed_to(&ring, &addr_a, &base);
    let on_b = benchmark_routed_to(&ring, &addr_b, &base);
    let options = |requests: usize, seed: u64| LoadOptions {
        addr: router_addr.clone(),
        labels: vec![on_a.clone(), on_b.clone()],
        requests,
        concurrency: 2,
        arrival: Arrival::Closed,
        seed,
        sample_interval: Some(Duration::from_millis(50)),
        request_timeout: Duration::from_secs(60),
        oracle: None,
    };

    // Phase 1: concurrent traffic, replica A killed 400ms in. Streams
    // cut mid-flight must fail over or terminate — never vanish.
    let chaos = vec![ChaosEvent::kill_replica(
        Duration::from_millis(400),
        addr_a.clone(),
    )];
    let under_fire = run_load(&options(16, 1), chaos);
    assert!(
        under_fire.invariants_hold(),
        "lost {} / duplicated {} terminal events under a replica kill",
        under_fire.lost_streams,
        under_fire.duplicate_terminals
    );
    assert_eq!(under_fire.completed, 16, "every stream terminated exactly once");
    assert_eq!(under_fire.latency.count(), 16, "every completion was measured");
    assert_eq!(under_fire.chaos.len(), 1, "the kill fired");

    // Phase 2: the victim stays dead; its keys must fail over, and the
    // router's own counters must show it.
    let failover_run = run_load(&options(8, 2), Vec::new());
    assert!(failover_run.invariants_hold());
    assert_eq!(failover_run.completed, 8);
    assert_eq!(
        failover_run.done, 8,
        "the survivor answers everything: {:?}",
        failover_run.errors
    );
    let stats = failover_run.server.expect("final stats through the router");
    let victim = stats
        .replicas
        .iter()
        .find(|r| r.addr == addr_a)
        .expect("router reports the dead replica's counters");
    assert!(
        victim.failovers >= 1,
        "requests owned by the dead replica must have failed over: {stats:?}"
    );
    let survivor = stats
        .replicas
        .iter()
        .find(|r| r.addr == addr_b)
        .expect("router reports the survivor's counters");
    assert!(survivor.forwards >= 1, "the survivor carried streams: {stats:?}");

    // Phase 3: by now the survivor has solved (or been handed) every
    // label — a warm rerun is all zero-search cache hits.
    let warm = run_load(&options(8, 3), Vec::new());
    assert!(warm.invariants_hold());
    assert_eq!(warm.done, 8, "warm rerun all done: {:?}", warm.errors);
    assert_eq!(
        warm.cached, warm.done,
        "warm reruns must be served from the cache without search"
    );

    // Tear down: B and the router are still alive.
    let mut client = gtl_serve::LiftClient::connect(&router_addr).expect("connect router");
    client.shutdown().expect("shutdown broadcast");
    router_thread.join().expect("router thread");
    thread_a.join().expect("replica a thread");
    thread_b.join().expect("replica b thread");
}
