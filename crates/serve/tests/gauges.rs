//! Integration tests of the live serving gauges added for the load
//! harness: queue depth rising behind a stalled worker and draining
//! back to zero, monotone peak-queue high-water marks, per-worker
//! in-flight flags, per-terminal-event counters, and gauge release on
//! TCP disconnect.

use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gtl::StaggConfig;
use gtl_search::SearchBudget;
use gtl_serve::{
    serve_listener, Event, EventSink, LiftClient, LiftRequest, LiftServer, Request,
    ServerConfig, ServerStats,
};

fn quick_base() -> StaggConfig {
    StaggConfig::top_down().with_budget(SearchBudget {
        time_limit: Duration::from_secs(30),
        ..SearchBudget::default()
    })
}

fn single_worker_config() -> ServerConfig {
    ServerConfig {
        workers: 1,
        queue_capacity: 16,
        base: quick_base(),
        progress_interval: Duration::from_millis(20),
        ..ServerConfig::default()
    }
}

/// The unsolved 4-D kernel with an enormous budget: runs until
/// cancelled, pinning the worker deterministically.
fn stall_request(id: &str) -> LiftRequest {
    let mut r = LiftRequest::benchmark(id, "sa_4d_add");
    r.overrides.max_attempts = Some(50_000_000);
    r.overrides.max_nodes = Some(u64::MAX / 2);
    r.overrides.time_limit_ms = Some(120_000);
    r
}

fn sink_channel() -> (EventSink, Receiver<Event>) {
    let (tx, rx) = channel::<Event>();
    let sink: EventSink = Arc::new(move |event: &Event| {
        let _ = tx.send(event.clone());
    });
    (sink, rx)
}

/// Polls `stats` until `pred` holds (or panics after 30s).
fn wait_for_stats(
    handle: &gtl_serve::ServerHandle,
    what: &str,
    pred: impl Fn(&ServerStats) -> bool,
) -> ServerStats {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = handle.stats();
        if pred(&stats) {
            return stats;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: {stats:?}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn queue_depth_rises_behind_a_stalled_worker_and_drains_to_zero() {
    let server = LiftServer::start(single_worker_config());
    let handle = server.handle();
    let (sink, rx) = sink_channel();

    // Pin the only worker.
    handle.handle_line(&Request::Lift(stall_request("stall")).to_line(), &sink);
    let stalled = wait_for_stats(&handle, "the stall to occupy the worker", |s| {
        s.active == 1 && s.queued == 0
    });
    assert_eq!(stalled.worker_inflight, vec![1], "the worker is busy");

    // Three quick lifts pile up behind it; the worker cannot drain any.
    for n in 0..3 {
        handle.handle_line(
            &Request::Lift(LiftRequest::benchmark(format!("q{n}"), "blas_dot")).to_line(),
            &sink,
        );
    }
    let piled = wait_for_stats(&handle, "the queue to fill", |s| s.queued == 3);
    assert_eq!(piled.active, 1, "the stall still runs");
    assert!(
        piled.peak_queued >= 3,
        "admission high-water mark must cover the pile: {piled:?}"
    );
    let peak_before = piled.peak_queued;

    // Release the worker; everything drains.
    handle.handle_line(&Request::Cancel { id: "stall".into() }.to_line(), &sink);
    let mut terminals = 0;
    while terminals < 4 {
        let event = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("stream died before the queue drained");
        if event.is_terminal() {
            terminals += 1;
        }
    }
    let drained = wait_for_stats(&handle, "the gauges to return to zero", |s| {
        s.queued == 0 && s.active == 0 && s.worker_inflight == vec![0]
    });
    // The high-water mark is monotone: draining never lowers it.
    assert!(
        drained.peak_queued >= peak_before,
        "peak_queued regressed: {} -> {}",
        peak_before,
        drained.peak_queued
    );
    // Terminal counters match the outcome invariants exactly.
    assert_eq!(drained.done_events, drained.completed, "done terminals == completed");
    assert_eq!(
        drained.failed_events,
        drained.failed + drained.cancelled,
        "failed terminals == failed + cancelled"
    );
    assert_eq!(drained.done_events, 3, "the three queued lifts solved");
    assert_eq!(drained.failed_events, 1, "the cancelled stall");
    server.shutdown();
}

#[test]
fn terminal_event_counters_cover_every_event_class() {
    let server = LiftServer::start(ServerConfig {
        workers: 2,
        ..single_worker_config()
    });
    let handle = server.handle();

    // done (uncached), then done (cached).
    let first = handle.lift_blocking(LiftRequest::benchmark("a", "blas_dot"));
    assert!(matches!(first.last(), Some(Event::Done { cached: false, .. })), "{first:?}");
    let again = handle.lift_blocking(LiftRequest::benchmark("b", "blas_dot"));
    assert!(matches!(again.last(), Some(Event::Done { cached: true, .. })), "{again:?}");

    // error: an unknown benchmark terminates with a wire error.
    let (sink, rx) = sink_channel();
    handle.handle_line(
        &Request::Lift(LiftRequest::benchmark("c", "no_such_kernel")).to_line(),
        &sink,
    );
    match rx.recv_timeout(Duration::from_secs(10)) {
        Ok(Event::Error { .. }) => {}
        other => panic!("expected an error terminal: {other:?}"),
    }

    let stats = wait_for_stats(&handle, "counters to settle", |s| s.done_events == 2);
    assert_eq!(stats.done_events, stats.completed);
    assert_eq!(stats.error_events, 1, "the rejected lift");
    assert_eq!(stats.failed_events, 0);
    assert_eq!(stats.shared_events, 0);
    server.shutdown();
}

#[test]
fn tcp_disconnect_releases_the_gauges() {
    // Over real TCP: a client pins the single worker and queues one
    // more lift, then vanishes. The disconnect hook cancels its work,
    // and every live gauge returns to zero.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = LiftServer::start(single_worker_config());
    let observer_handle = server.handle();
    let thread = std::thread::spawn(move || {
        let server_for_conns = server;
        serve_listener(listener, "gauge-replica", || server_for_conns.handle());
        server_for_conns.shutdown();
    });

    let mut doomed = LiftClient::connect(&addr).expect("connect");
    doomed.send(&Request::Lift(stall_request("pinned"))).expect("send stall");
    match doomed.next_event().expect("queued") {
        Some(Event::Queued { .. }) => {}
        other => panic!("expected queued: {other:?}"),
    }
    doomed.send(&Request::Lift(LiftRequest::benchmark("waiting", "blas_dot"))).expect("send");
    match doomed.next_event().expect("queued") {
        Some(Event::Queued { .. }) => {}
        other => panic!("expected queued: {other:?}"),
    }
    let busy = wait_for_stats(&observer_handle, "the stall to occupy the worker", |s| {
        s.worker_inflight == vec![1] && s.queued >= 1
    });
    assert!(busy.peak_queued >= 1);
    drop(doomed); // Disconnect without cancelling anything.

    let released = wait_for_stats(&observer_handle, "gauges to release", |s| {
        s.queued == 0 && s.active == 0 && s.worker_inflight == vec![0]
    });
    assert!(released.cancelled >= 1, "the disconnect cancelled the stall: {released:?}");
    assert_eq!(
        released.failed_events,
        released.failed + released.cancelled,
        "terminal accounting survives disconnect cleanup"
    );

    // Shut the listener down so the server thread joins.
    let mut shutter = LiftClient::connect(&addr).expect("connect");
    shutter.shutdown().expect("send shutdown");
    thread.join().expect("server thread");
}
