//! In-process integration tests of the lift server: concurrent clients
//! with ordered event streams, result-cache hits, cancellation and
//! timeout semantics, queue-slot accounting and graceful shutdown.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gtl::StaggConfig;
use gtl_search::SearchBudget;
use gtl_serve::{
    ConfigOverrides, ErrorCode, Event, EventSink, KernelSpec, LiftRequest, LiftServer,
    ServerConfig, ServerHandle,
};

/// A small-budget base config so tests stay fast.
fn quick_base() -> StaggConfig {
    StaggConfig::top_down().with_budget(SearchBudget {
        time_limit: Duration::from_secs(30),
        ..SearchBudget::default()
    })
}

fn quick_server(workers: usize) -> LiftServer {
    LiftServer::start(ServerConfig {
        workers,
        queue_capacity: 16,
        base: quick_base(),
        progress_interval: Duration::from_millis(20),
        default_timeout: None,
        result_cache_capacity: 64,
        ..ServerConfig::default()
    })
}

/// Submits through a channel sink; panics on admission errors.
fn submit(handle: &ServerHandle, request: LiftRequest) -> Receiver<Event> {
    let (rx, result) = try_submit(handle, request);
    result.expect("admission failed");
    rx
}

fn try_submit(
    handle: &ServerHandle,
    request: LiftRequest,
) -> (Receiver<Event>, Result<usize, gtl_serve::WireError>) {
    let (tx, rx) = channel::<Event>();
    let sink: EventSink = Arc::new(move |event: &Event| {
        let _ = tx.send(event.clone());
    });
    let result = handle.submit(request, sink);
    (rx, result)
}

/// Drains a stream until its terminal event (with a generous deadline).
fn collect_stream(rx: &Receiver<Event>) -> Vec<Event> {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut events = Vec::new();
    loop {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .expect("stream did not terminate within 60s");
        match rx.recv_timeout(remaining) {
            Ok(event) => {
                let terminal = event.is_terminal();
                events.push(event);
                if terminal {
                    return events;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                panic!("stream did not terminate; got so far: {events:?}")
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("sink dropped before terminal event; got: {events:?}")
            }
        }
    }
}

/// Asserts the protocol's per-request ordering contract.
fn assert_well_ordered(id: &str, events: &[Event]) {
    assert!(
        matches!(events.first(), Some(Event::Queued { .. })),
        "{id}: stream must open with `queued`: {events:?}"
    );
    let terminal_count = events.iter().filter(|e| e.is_terminal()).count();
    assert_eq!(terminal_count, 1, "{id}: exactly one terminal: {events:?}");
    assert!(
        events.last().unwrap().is_terminal(),
        "{id}: terminal must be last: {events:?}"
    );
    for event in events {
        if let Some(event_id) = event.id() {
            assert_eq!(event_id, id, "{id}: foreign id in stream: {events:?}");
        }
    }
    if let Some(pos) = events
        .iter()
        .position(|e| matches!(e, Event::Verified { .. }))
    {
        assert!(
            matches!(events.get(pos + 1), Some(Event::Done { .. })),
            "{id}: `verified` must immediately precede `done`: {events:?}"
        );
    }
}

#[test]
fn three_concurrent_clients_get_ordered_streams() {
    let server = quick_server(3);
    let benchmarks = ["blas_dot", "blas_axpy", "sa_add_scalar"];
    std::thread::scope(|scope| {
        for (n, name) in benchmarks.iter().enumerate() {
            let handle = server.handle();
            scope.spawn(move || {
                let id = format!("client{n}-req");
                let rx = submit(&handle, LiftRequest::benchmark(&id, *name));
                let events = collect_stream(&rx);
                assert_well_ordered(&id, &events);
                match events.last().unwrap() {
                    Event::Done { solution, .. } => {
                        assert!(!solution.is_empty(), "{name}: empty solution")
                    }
                    Event::Failed { reason, .. } => {
                        // Every chosen benchmark solves under the default
                        // budget; a failure here is a regression.
                        panic!("{name}: unexpected failure `{reason}`")
                    }
                    other => panic!("{name}: unexpected terminal {other:?}"),
                }
            });
        }
    });
    let stats = server.handle().stats();
    assert_eq!(stats.received, 3);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.active, 0);
    server.shutdown();
}

#[test]
fn repeated_request_is_answered_from_the_result_cache() {
    let server = quick_server(2);
    let handle = server.handle();

    let first = handle.lift_blocking(LiftRequest::benchmark("a", "blas_dot"));
    assert_well_ordered("a", &first);
    let Event::Done {
        solution: first_solution,
        cached: false,
        ..
    } = first.last().unwrap()
    else {
        panic!("first lift must be an uncached done: {first:?}");
    };
    let hits_before = handle.stats().cache_hits;

    let second = handle.lift_blocking(LiftRequest::benchmark("b", "blas_dot"));
    assert_well_ordered("b", &second);
    match second.last().unwrap() {
        Event::Done {
            solution,
            cached: true,
            ..
        } => assert_eq!(solution, first_solution),
        other => panic!("second lift must be a cached done: {other:?}"),
    }
    assert_eq!(
        handle.stats().cache_hits,
        hits_before + 1,
        "hit counter must increment"
    );
    assert!(
        !second
            .iter()
            .any(|e| matches!(e, Event::SearchProgress { .. })),
        "a cache hit must not run a search: {second:?}"
    );

    // A config change is a different key: no hit.
    let overridden = handle.lift_blocking(LiftRequest {
        id: "c".into(),
        kernel: KernelSpec::Benchmark {
            name: "blas_dot".into(),
        },
        oracle: None,
        overrides: ConfigOverrides {
            max_attempts: Some(7777),
            ..ConfigOverrides::default()
        },
        trace_id: None,
    });
    match overridden.last().unwrap() {
        Event::Done { cached, .. } => assert!(!cached, "override must miss the cache"),
        other => panic!("expected done: {other:?}"),
    }
    server.shutdown();
}

/// A lift that runs long enough to cancel: the unsolved 4-D kernel with
/// an enormous budget.
fn long_request(id: &str) -> LiftRequest {
    LiftRequest {
        id: id.into(),
        kernel: KernelSpec::Benchmark {
            name: "sa_4d_add".into(),
        },
        oracle: None,
        overrides: ConfigOverrides {
            max_attempts: Some(50_000_000),
            max_nodes: Some(u64::MAX / 2),
            time_limit_ms: Some(120_000),
            ..ConfigOverrides::default()
        },
        trace_id: None,
    }
}

fn wait_for_progress(rx: &Receiver<Event>) -> Vec<Event> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut seen = Vec::new();
    loop {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .expect("no search_progress within 30s");
        let event = rx.recv_timeout(remaining).expect("stream stalled");
        let is_progress = matches!(event, Event::SearchProgress { .. });
        seen.push(event);
        if is_progress {
            return seen;
        }
    }
}

#[test]
fn mid_search_cancel_stops_workers_and_releases_state() {
    let server = quick_server(1);
    let handle = server.handle();

    let rx = submit(&handle, long_request("long"));
    // The job is demonstrably mid-search once progress streams.
    wait_for_progress(&rx);
    let cancelled_at = Instant::now();
    assert!(handle.cancel("long"), "job must be cancellable while running");

    // The stream terminates promptly with `failed`/`cancelled`.
    let mut tail = Vec::new();
    loop {
        let event = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("no terminal event after cancel");
        let terminal = event.is_terminal();
        tail.push(event);
        if terminal {
            break;
        }
    }
    assert!(
        cancelled_at.elapsed() < Duration::from_secs(10),
        "cancellation took {:?}",
        cancelled_at.elapsed()
    );
    match tail.last().unwrap() {
        Event::Failed { reason, cached, .. } => {
            assert_eq!(reason, "cancelled");
            assert!(!cached);
        }
        other => panic!("expected failed/cancelled: {other:?}"),
    }

    // State is released: nothing queued or active, id reusable.
    let stats = handle.stats();
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.active, 0);
    assert_eq!(stats.cancelled, 1);

    // The worker and its shared caches are not poisoned: the same
    // worker immediately serves a fresh lift to completion, and the
    // cancelled request was never cached as a result.
    let after = handle.lift_blocking(LiftRequest::benchmark("after", "blas_dot"));
    assert!(
        matches!(after.last(), Some(Event::Done { .. })),
        "worker must stay healthy after a cancel: {after:?}"
    );
    let again = submit(&handle, long_request("long"));
    let opening = wait_for_progress(&again);
    assert!(
        !opening.iter().any(|e| e.is_terminal()),
        "cancelled outcome must not have been cached: {opening:?}"
    );
    assert!(handle.cancel("long"));
    collect_stream(&again);
    server.shutdown();
}

#[test]
fn cancelling_a_queued_job_frees_its_slot_immediately() {
    let server = LiftServer::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        base: quick_base(),
        progress_interval: Duration::from_millis(20),
        default_timeout: None,
        result_cache_capacity: 64,
        ..ServerConfig::default()
    });
    let handle = server.handle();

    // `running` occupies the one worker; `queued` fills the one slot.
    let running_rx = submit(&handle, long_request("running"));
    wait_for_progress(&running_rx);
    let queued_rx = submit(&handle, LiftRequest::benchmark("queued", "blas_dot"));

    // The queue is full now.
    let (_rx, rejected) = try_submit(&handle, LiftRequest::benchmark("third", "blas_axpy"));
    assert_eq!(rejected.unwrap_err().code, ErrorCode::QueueFull);

    // Cancelling the queued job closes its stream and frees the slot.
    assert!(handle.cancel("queued"));
    let queued_events = collect_stream(&queued_rx);
    assert_well_ordered("queued", &queued_events);
    assert!(
        matches!(
            queued_events.last(),
            Some(Event::Failed { reason, .. }) if reason == "cancelled"
        ),
        "queued job must fail as cancelled: {queued_events:?}"
    );
    let replacement_rx = submit(&handle, LiftRequest::benchmark("fourth", "blas_scal"));

    // Unblock the worker; the replacement then completes.
    assert!(handle.cancel("running"));
    collect_stream(&running_rx);
    let replacement = collect_stream(&replacement_rx);
    assert!(
        matches!(replacement.last(), Some(Event::Done { .. })),
        "replacement lift must complete: {replacement:?}"
    );
    server.shutdown();
}

#[test]
fn request_timeout_fails_with_timeout_reason() {
    let server = quick_server(1);
    let handle = server.handle();
    let request = LiftRequest {
        overrides: ConfigOverrides {
            timeout_ms: Some(250),
            ..long_request("slow").overrides
        },
        ..long_request("slow")
    };
    let rx = submit(&handle, request);
    let events = collect_stream(&rx);
    assert_well_ordered("slow", &events);
    match events.last().unwrap() {
        Event::Failed { reason, .. } => assert_eq!(reason, "timeout"),
        other => panic!("expected failed/timeout: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn admission_errors_are_synchronous_and_typed() {
    let server = quick_server(1);
    let handle = server.handle();

    let (_rx, unknown) = try_submit(&handle, LiftRequest::benchmark("u", "no_such_kernel"));
    assert_eq!(unknown.unwrap_err().code, ErrorCode::UnknownBenchmark);

    let running_rx = submit(&handle, long_request("dup"));
    wait_for_progress(&running_rx);
    let (_rx, duplicate) = try_submit(&handle, long_request("dup"));
    assert_eq!(duplicate.unwrap_err().code, ErrorCode::DuplicateId);
    assert!(handle.cancel("dup"));
    collect_stream(&running_rx);

    assert!(!handle.cancel("never-submitted"));
    let stats = handle.stats();
    assert_eq!(stats.rejected, 2);
    server.shutdown();
}

#[test]
fn client_disconnect_cancels_all_in_flight_lifts() {
    // `cancel_all` is the disconnect path of the TCP transport: a
    // vanished client's running and queued lifts must all stop.
    let server = quick_server(1);
    let gone = server.handle();
    let running_rx = submit(&gone, long_request("running"));
    wait_for_progress(&running_rx);
    let queued_rx = submit(&gone, LiftRequest::benchmark("queued", "blas_dot"));

    assert_eq!(gone.cancel_all(), 2);
    for rx in [&running_rx, &queued_rx] {
        let events = collect_stream(rx);
        assert!(
            matches!(
                events.last(),
                Some(Event::Failed { reason, .. }) if reason == "cancelled"
            ),
            "disconnect must cancel: {events:?}"
        );
    }

    // Other clients are untouched and the pool stays healthy.
    let other = server.handle();
    let events = other.lift_blocking(LiftRequest::benchmark("other", "blas_axpy"));
    assert!(matches!(events.last(), Some(Event::Done { .. })), "{events:?}");
    server.shutdown();
}

#[test]
fn cancel_from_another_client_reaches_the_lift() {
    // A wire-level cancel arrives on a fresh connection (fresh client
    // namespace); the cross-client fallback must still stop the lift.
    let server = quick_server(1);
    let submitter = server.handle();
    let rx = submit(&submitter, long_request("shared-id"));
    wait_for_progress(&rx);

    let other = server.handle();
    assert!(!other.cancel("shared-id"), "own-namespace miss");
    assert!(other.cancel_any_client("shared-id"), "cross-client hit");
    let events = collect_stream(&rx);
    assert!(
        matches!(
            events.last(),
            Some(Event::Failed { reason, .. }) if reason == "cancelled"
        ),
        "{events:?}"
    );
    assert!(!other.cancel_any_client("shared-id"), "already finished");
    server.shutdown();
}

#[test]
fn drain_waits_for_outstanding_lifts() {
    let server = quick_server(2);
    let handle = server.handle();
    let rx_a = submit(&handle, LiftRequest::benchmark("a", "blas_dot"));
    let rx_b = submit(&handle, LiftRequest::benchmark("b", "blas_gemv"));
    server.drain();
    // After drain both streams must already hold their terminal events.
    for rx in [rx_a, rx_b] {
        let mut saw_terminal = false;
        while let Ok(event) = rx.try_recv() {
            saw_terminal |= event.is_terminal();
        }
        assert!(saw_terminal, "drain returned before a stream terminated");
    }
    assert_eq!(handle.stats().completed, 2);
    server.shutdown();
}

#[test]
fn shutdown_drains_queued_jobs_with_shutting_down() {
    let server = LiftServer::start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        base: quick_base(),
        progress_interval: Duration::from_millis(20),
        default_timeout: None,
        result_cache_capacity: 64,
        ..ServerConfig::default()
    });
    let handle = server.handle();
    let running_rx = submit(&handle, long_request("running"));
    wait_for_progress(&running_rx);
    let queued_rx = submit(&handle, LiftRequest::benchmark("waiting", "blas_dot"));

    server.shutdown();

    let running = collect_stream(&running_rx);
    assert!(
        matches!(
            running.last(),
            Some(Event::Failed { reason, .. }) if reason == "shutting_down"
        ),
        "running lift must be cancelled by shutdown: {running:?}"
    );
    let queued = collect_stream(&queued_rx);
    assert!(
        matches!(
            queued.last(),
            Some(Event::Failed { reason, .. }) if reason == "shutting_down"
        ),
        "queued lift must drain with shutting_down: {queued:?}"
    );
}
