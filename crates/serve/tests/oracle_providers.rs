//! Serving-layer tests for the oracle provider redesign: per-worker
//! provider reuse, allowlist enforcement, per-provider statistics, and
//! isolation between concurrent requests that name different oracles.

use std::path::PathBuf;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

use gtl::StaggConfig;
use gtl_oracle::{FixtureStore, Oracle, OracleQuery, SyntheticOracle};
use gtl_search::SearchBudget;
use gtl_serve::{
    ErrorCode, Event, EventSink, LiftRequest, LiftServer, ServerConfig, ServerHandle,
};

fn quick_base() -> StaggConfig {
    StaggConfig::top_down().with_budget(SearchBudget {
        time_limit: Duration::from_secs(30),
        ..SearchBudget::default()
    })
}

fn server_with(workers: usize, allowlist: &[&str]) -> LiftServer {
    LiftServer::start(ServerConfig {
        workers,
        queue_capacity: 16,
        base: quick_base(),
        progress_interval: Duration::from_millis(20),
        default_timeout: None,
        result_cache_capacity: 64,
        oracle_allowlist: allowlist.iter().map(|s| s.to_string()).collect(),
        ..ServerConfig::default()
    })
}

fn tmp_fixture(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gtl-serve-oracle-{name}-{}.json", std::process::id()));
    p
}

/// Records the synthetic oracle's round-0 answer for a benchmark into
/// a fixture file (what `batch_suite --oracle record:…` does at scale).
fn record_benchmark(path: &PathBuf, benchmark: &str) {
    let b = gtl_benchsuite::by_name(benchmark).expect("suite benchmark");
    let gt = b.parse_ground_truth();
    let store = FixtureStore::open(path).expect("fixture path usable");
    let mut oracle = SyntheticOracle::default();
    let lines = oracle.candidates(&OracleQuery {
        label: b.name,
        c_source: b.source,
        ground_truth: Some(&gt),
    });
    store.record(b.name, 0, lines);
}

fn terminal_of(handle: &ServerHandle, request: LiftRequest) -> Event {
    handle
        .lift_blocking(request)
        .last()
        .cloned()
        .expect("stream is never empty")
}

#[test]
fn worker_reuses_one_provider_across_requests() {
    // Three lifts naming the same spec: the provider is built exactly
    // once and reused. A fourth lift with a different seed builds a
    // second provider — per spec, never per request.
    let server = server_with(1, &["synthetic"]);
    let handle = server.handle();
    for (n, benchmark) in ["blas_dot", "blas_axpy", "sa_add_scalar"].iter().enumerate() {
        let request = LiftRequest::benchmark(format!("r{n}"), *benchmark)
            .with_oracle("synthetic:77");
        assert!(
            matches!(terminal_of(&handle, request), Event::Done { .. }),
            "{benchmark}: lift should solve"
        );
    }
    let stats = handle.stats();
    assert_eq!(
        stats.providers_built, 1,
        "one worker + one spec = one provider: {stats:?}"
    );
    assert_eq!(stats.oracles.len(), 1);
    assert_eq!(stats.oracles[0].spec, "synthetic:77");
    assert_eq!(stats.oracles[0].lifts, 3);

    let other = LiftRequest::benchmark("r-other", "blas_copy").with_oracle("synthetic:78");
    assert!(matches!(terminal_of(&handle, other), Event::Done { .. }));
    let stats = handle.stats();
    assert_eq!(stats.providers_built, 2, "second spec, second provider");
    server.shutdown();
}

#[test]
fn concurrent_requests_with_different_oracles_do_not_cross_contaminate() {
    // Fixture A holds real candidates for blas_dot; fixture B is
    // empty. Two concurrent lifts naming different replay specs must
    // each see exactly their own fixture: A solves, B fails with
    // `no_usable_candidates` — and nothing falls back to the synthetic
    // generator (the per-provider stats prove it never ran).
    let good = tmp_fixture("good");
    let empty = tmp_fixture("empty");
    let _ = std::fs::remove_file(&good);
    let _ = std::fs::remove_file(&empty);
    record_benchmark(&good, "blas_dot");
    FixtureStore::open(&empty).expect("create the empty fixture");

    let server = server_with(2, &["synthetic", "replay"]);
    let results: Vec<(String, Event)> = std::thread::scope(|scope| {
        let handles: Vec<_> = [
            ("blas_dot", good.display().to_string()),
            ("blas_axpy", empty.display().to_string()),
        ]
        .into_iter()
        .enumerate()
        .map(|(n, (benchmark, fixture))| {
            let handle = server.handle();
            scope.spawn(move || {
                let request = LiftRequest::benchmark(format!("c{n}"), benchmark)
                    .with_oracle(format!("replay:{fixture}"));
                (benchmark.to_string(), terminal_of(&handle, request))
            })
        })
        .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (benchmark, terminal) in &results {
        match benchmark.as_str() {
            "blas_dot" => assert!(
                matches!(terminal, Event::Done { .. }),
                "recorded fixture must carry the lift: {terminal:?}"
            ),
            _ => assert!(
                matches!(
                    terminal,
                    Event::Failed { reason, .. } if reason == "no_usable_candidates"
                ),
                "empty fixture must starve the lift: {terminal:?}"
            ),
        }
    }
    let stats = server.handle().stats();
    assert_eq!(stats.oracles.len(), 2, "one entry per replay spec: {stats:?}");
    assert!(
        stats.oracles.iter().all(|o| o.spec.starts_with("replay:") && o.lifts == 1),
        "replay lifts must run zero synthetic invocations: {stats:?}"
    );
    server.shutdown();
    let _ = std::fs::remove_file(&good);
    let _ = std::fs::remove_file(&empty);
}

#[test]
fn concurrent_recording_across_workers_feeds_one_fixture() {
    // `record:` providers are shared server-wide: four workers
    // recording to one path must all land in the same store, so the
    // fixture ends up with *every* lifted label (a per-worker store
    // would clobber the file with whichever worker saved last).
    let path = tmp_fixture("multi-worker-record");
    let _ = std::fs::remove_file(&path);
    let server = server_with(4, &["synthetic", "record"]);
    let benchmarks = ["blas_dot", "blas_axpy", "blas_copy", "sa_add_scalar"];
    let spec = format!("record:{}", path.display());
    std::thread::scope(|scope| {
        for (n, benchmark) in benchmarks.iter().enumerate() {
            let handle = server.handle();
            let spec = spec.clone();
            scope.spawn(move || {
                let request =
                    LiftRequest::benchmark(format!("w{n}"), *benchmark).with_oracle(spec);
                assert!(
                    matches!(terminal_of(&handle, request), Event::Done { .. }),
                    "{benchmark}: recorded lift should solve"
                );
            });
        }
    });
    assert_eq!(
        server.handle().stats().providers_built,
        1,
        "one record spec = one shared provider across all workers"
    );
    server.shutdown();
    let fixture = gtl_oracle::Fixture::load(path.as_path()).expect("fixture written");
    for benchmark in benchmarks {
        assert!(
            fixture.lines(benchmark, 0).is_some_and(|l| !l.is_empty()),
            "{benchmark}: recording lost under concurrency; labels: {:?}",
            fixture.labels().collect::<Vec<_>>()
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn oracle_specs_outside_the_allowlist_are_rejected() {
    let server = server_with(1, &["synthetic"]); // the default policy
    let handle = server.handle();
    let submit = |spec: &str| {
        let (tx, _rx) = channel::<Event>();
        let sink: EventSink = Arc::new(move |event: &Event| {
            let _ = tx.send(event.clone());
        });
        handle.submit(
            LiftRequest::benchmark("r", "blas_dot").with_oracle(spec),
            sink,
        )
    };
    // Unparseable spec.
    let err = submit("gpt4").unwrap_err();
    assert_eq!(err.code, ErrorCode::OracleRejected);
    // Parseable but unlisted kind.
    let err = submit("replay:/tmp/never.json").unwrap_err();
    assert_eq!(err.code, ErrorCode::OracleRejected);
    assert!(err.message.contains("replay"), "{}", err.message);
    // Record wrapping an unlisted kind is rejected recursively.
    let err = submit("record:/tmp/out.json:replay:/tmp/never.json").unwrap_err();
    assert_eq!(err.code, ErrorCode::OracleRejected);
    // The allowlisted kind still works.
    assert!(
        matches!(
            terminal_of(&handle, LiftRequest::benchmark("ok", "blas_dot").with_oracle("synthetic")),
            Event::Done { .. }
        ),
        "allowlisted spec must pass"
    );
    assert_eq!(handle.stats().rejected, 3);
    server.shutdown();
}

#[test]
fn missing_fixture_fails_the_job_not_the_worker() {
    // The spec validates textually at admission; the worker discovers
    // the missing file when it builds the provider, fails that job,
    // and stays healthy for the next one.
    let server = server_with(1, &["synthetic", "replay"]);
    let handle = server.handle();
    let gone = terminal_of(
        &handle,
        LiftRequest::benchmark("gone", "blas_dot").with_oracle("replay:/definitely/not/here.json"),
    );
    assert!(
        matches!(
            &gone,
            Event::Failed { reason, detail: Some(d), .. }
                if reason == "bad_query" && d.contains("oracle")
        ),
        "missing fixture must fail as bad_query with detail: {gone:?}"
    );
    let after = terminal_of(&handle, LiftRequest::benchmark("after", "blas_dot"));
    assert!(
        matches!(after, Event::Done { .. }),
        "the worker must survive a provider build failure: {after:?}"
    );
    server.shutdown();
}

#[test]
fn base_config_lifts_need_no_allowlist_entry() {
    // Requests without an `oracle` field run the server's base spec
    // even under an empty allowlist — the allowlist gates client
    // *choices*, not the operator's own configuration.
    let server = server_with(1, &[]);
    let handle = server.handle();
    let terminal = terminal_of(&handle, LiftRequest::benchmark("plain", "blas_dot"));
    assert!(matches!(terminal, Event::Done { .. }), "{terminal:?}");
    let stats = handle.stats();
    assert_eq!(stats.oracles.len(), 1);
    assert_eq!(stats.oracles[0].spec, "synthetic");
    server.shutdown();
}
