//! End-to-end tests of the observability tier: trace IDs riding every
//! event of a lift (including across an injected mid-stream replica
//! failover), the span journal answering `trace` requests, and the
//! router's `metrics` fan-out merging per-replica histograms exactly
//! like a single process would have recorded them.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gtl::{LiftQuery, StaggConfig};
use gtl_benchsuite::{all_benchmarks, by_name};
use gtl_search::SearchBudget;
use gtl_serve::protocol::merge_stats;
use gtl_serve::{
    request_key, serve_listener, Event, EventSink, HashRing, LiftClient, LiftRequest,
    LiftRouter, LiftServer, Phase, Request, RouterConfig, RouterHandle, ServerConfig,
    ServerStats,
};

fn quick_base() -> StaggConfig {
    StaggConfig::top_down().with_budget(SearchBudget {
        time_limit: Duration::from_secs(30),
        ..SearchBudget::default()
    })
}

fn replica_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 16,
        base: quick_base(),
        progress_interval: Duration::from_millis(20),
        result_cache_capacity: 128,
        ..ServerConfig::default()
    }
}

struct Replica {
    addr: String,
    thread: Option<std::thread::JoinHandle<()>>,
}

fn spawn_replica(config: ServerConfig) -> Replica {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind replica");
    let addr = listener.local_addr().expect("local addr").to_string();
    let thread = std::thread::spawn(move || {
        let server = LiftServer::start(config);
        serve_listener(listener, "trace-test-replica", || server.handle());
        server.shutdown();
    });
    Replica {
        addr,
        thread: Some(thread),
    }
}

impl Replica {
    fn stop(mut self) {
        if let Ok(mut stream) = TcpStream::connect(&self.addr) {
            let _ = writeln!(stream, "{}", Request::Shutdown.to_line());
            let _ = stream.flush();
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// A replica that admits one lift (echoing its trace ID on the
/// `queued` event, as a real server would) and then drops the
/// connection — the mid-stream death that forces a failover.
fn spawn_flaky_replica() -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind flaky");
    let addr = listener.local_addr().expect("local addr").to_string();
    let thread = std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            let (id, trace_id) = match Request::parse_line(line.trim()) {
                Ok(Request::Lift(request)) => (request.id, request.trace_id),
                _ => (String::from("?"), None),
            };
            let event = Event::Queued {
                id,
                position: 1,
                trace_id,
            };
            let mut writer = stream;
            let _ = writeln!(writer, "{}", event.to_line());
            let _ = writer.flush();
        }
    });
    (addr, thread)
}

fn router_config(replicas: Vec<String>) -> RouterConfig {
    RouterConfig {
        replicas,
        vnodes: 64,
        connect_timeout: Duration::from_millis(1500),
        base: quick_base(),
    }
}

fn key_for(name: &str, base: &StaggConfig) -> u64 {
    let b = by_name(name).expect("suite benchmark");
    let query = LiftQuery {
        label: b.name.to_string(),
        source: b.source.to_string(),
        task: b.lift_task(),
        ground_truth: Some(b.parse_ground_truth()),
    };
    request_key(&query, base)
}

/// A fast-solving benchmark whose hash makes `target` the primary.
fn benchmark_routed_to(ring: &HashRing, target: &str, base: &StaggConfig) -> String {
    let preferred = ["blas_dot", "blas_axpy", "blas_scal", "sa_add_scalar", "blas_gemv"];
    let rest = all_benchmarks()
        .into_iter()
        .map(|b| b.name.to_string())
        .filter(|name| !preferred.contains(&name.as_str()));
    preferred
        .iter()
        .map(|s| s.to_string())
        .chain(rest)
        .find(|name| ring.primary(key_for(name, base)) == Some(target))
        .expect("some benchmark routes to the target replica")
}

fn sink_channel() -> (EventSink, Receiver<Event>) {
    let (tx, rx) = channel::<Event>();
    let sink: EventSink = Arc::new(move |event: &Event| {
        let _ = tx.send(event.clone());
    });
    (sink, rx)
}

fn collect_stream(rx: &Receiver<Event>) -> Vec<Event> {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut events = Vec::new();
    loop {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .expect("stream did not terminate within 60s");
        match rx.recv_timeout(remaining) {
            Ok(event) => {
                let terminal = event.is_terminal();
                events.push(event);
                if terminal {
                    return events;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                panic!("stream did not terminate; got so far: {events:?}")
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("sink dropped before terminal event; got: {events:?}")
            }
        }
    }
}

fn lift_via(handle: &RouterHandle, request: &LiftRequest) -> Vec<Event> {
    let (sink, rx) = sink_channel();
    let line = Request::Lift(request.clone()).to_line();
    handle.handle_line(&line, &sink);
    collect_stream(&rx)
}

/// One non-lift request through the router handle, answered by a
/// single event (`stats`, `metrics`, `trace`).
fn ask_router(handle: &RouterHandle, request: &Request) -> Event {
    let (sink, rx) = sink_channel();
    handle.handle_line(&request.to_line(), &sink);
    rx.recv_timeout(Duration::from_secs(30))
        .expect("router answered")
}

#[test]
fn client_supplied_trace_id_rides_every_event_and_fills_the_journal() {
    let replica = spawn_replica(replica_config());
    let mut client = LiftClient::connect(&replica.addr).expect("connect");
    let trace_id = "feedface00c0ffee";
    let events = client
        .lift(LiftRequest::benchmark("t1", "blas_dot").with_trace_id(trace_id))
        .expect("lift");
    assert!(
        matches!(events.last(), Some(Event::Done { .. })),
        "lift must solve: {events:?}"
    );
    for event in &events {
        assert_eq!(
            event.trace_id(),
            Some(trace_id),
            "every event must carry the client's trace ID: {event:?}"
        );
    }

    // The journal has the lift's spans under exactly that ID: the
    // queue-wait span, per-phase spans, and the whole-lift span.
    let spans = client.trace(trace_id).expect("trace dump");
    assert!(!spans.is_empty(), "the journal must have spans");
    for span in &spans {
        assert_eq!(span.trace_id, trace_id);
        assert_eq!(span.request_id, "t1");
    }
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"lift"), "whole-lift span expected: {names:?}");
    assert!(
        names.contains(&"queue_wait"),
        "queue-wait span expected: {names:?}"
    );
    assert!(
        Phase::ALL.iter().any(|p| names.contains(&p.name())),
        "at least one pipeline phase span expected: {names:?}"
    );

    // An unknown trace ID dumps nothing rather than failing.
    assert!(client.trace("0000000000000000").expect("empty dump").is_empty());
    replica.stop();
}

#[test]
fn server_mints_one_trace_id_per_admitted_lift() {
    let replica = spawn_replica(replica_config());
    let mut client = LiftClient::connect(&replica.addr).expect("connect");
    let events = client
        .lift(LiftRequest::benchmark("minted", "blas_axpy"))
        .expect("lift");
    let first = events
        .first()
        .and_then(Event::trace_id)
        .expect("the server must mint a trace ID at admission")
        .to_string();
    assert_eq!(first.len(), 16, "16 lowercase hex chars: {first}");
    assert!(first.chars().all(|c| c.is_ascii_hexdigit()));
    for event in &events {
        assert_eq!(event.trace_id(), Some(first.as_str()));
    }
    replica.stop();
}

#[test]
fn trace_id_survives_midstream_failover_and_the_survivor_has_the_spans() {
    let live = spawn_replica(replica_config());
    let (flaky, flaky_thread) = spawn_flaky_replica();
    let base = quick_base();
    // The flaky replica must be the primary so the lift starts there,
    // dies mid-stream, and fails over to the live one.
    let ring = HashRing::new(vec![flaky.clone(), live.addr.clone()], 64);
    let name = benchmark_routed_to(&ring, &flaky, &base);

    let router = LiftRouter::new(router_config(vec![flaky, live.addr.clone()]));
    let handle = router.handle();
    let trace_id = "deadbeef12345678";
    let request = LiftRequest::benchmark("chaos", &name).with_trace_id(trace_id);
    let events = lift_via(&handle, &request);
    assert!(
        matches!(events.last(), Some(Event::Done { .. })),
        "the lift must finish on the surviving replica: {events:?}"
    );
    // The first queued comes from the replica that then died; the rest
    // from the survivor. One trace ID, no seams.
    for event in &events {
        assert_eq!(
            event.trace_id(),
            Some(trace_id),
            "trace ID must survive the failover: {event:?}"
        );
    }

    // The trace fan-out reaches the survivor (the dead replica simply
    // contributes nothing) and returns the spans of this very lift.
    let answer = ask_router(
        &handle,
        &Request::Trace {
            trace_id: trace_id.to_string(),
        },
    );
    let Event::Trace { trace_id: echoed, spans } = answer else {
        panic!("expected a trace event, got {answer:?}");
    };
    assert_eq!(echoed, trace_id);
    assert!(
        spans.iter().any(|s| s.name == "lift"),
        "the surviving replica's journal must hold the lift span: {spans:?}"
    );
    assert!(spans.iter().all(|s| s.trace_id == trace_id));

    let _ = flaky_thread.join();
    router.drain();
    live.stop();
}

#[test]
fn router_metrics_merge_equals_the_per_replica_histograms() {
    let a = spawn_replica(replica_config());
    let b = spawn_replica(replica_config());
    let router = LiftRouter::new(router_config(vec![a.addr.clone(), b.addr.clone()]));
    let handle = router.handle();

    // One solved lift per replica so both record service time.
    let base = quick_base();
    let ring = HashRing::new(vec![a.addr.clone(), b.addr.clone()], 64);
    for (n, addr) in [&a.addr, &b.addr].into_iter().enumerate() {
        let name = benchmark_routed_to(&ring, addr, &base);
        let events = lift_via(&handle, &LiftRequest::benchmark(format!("m-{n}"), &name));
        assert!(matches!(events.last(), Some(Event::Done { .. })), "{events:?}");
    }

    // Merging the two replicas' own snapshots by hand must equal what
    // the router's stats fan-out reports — the histogram and phase-map
    // merge algebra is associative, so "merge at the router" and "one
    // big process" are indistinguishable.
    let mut expected = ServerStats::default();
    for addr in [&a.addr, &b.addr] {
        let stats = LiftClient::connect(addr)
            .expect("connect replica")
            .stats()
            .expect("replica stats");
        merge_stats(&mut expected, &stats);
    }
    let answer = ask_router(&handle, &Request::Stats);
    let Event::Stats { stats: merged } = answer else {
        panic!("expected stats, got {answer:?}");
    };
    assert_eq!(merged.service_time, expected.service_time);
    assert_eq!(merged.queue_wait, expected.queue_wait);
    assert_eq!(merged.phase_times, expected.phase_times);
    assert_eq!(merged.service_time.count(), 2, "one admitted lift per replica");

    // The Prometheus exposition through the router covers the merged
    // registry, the histograms and the per-phase series.
    let answer = ask_router(&handle, &Request::Metrics);
    let Event::Metrics { text } = answer else {
        panic!("expected metrics, got {answer:?}");
    };
    for series in [
        "gtl_received_total 2",
        "gtl_service_time_us_count 2",
        "gtl_queue_wait_us_count 2",
        "gtl_phase_us_total{phase=\"search\"}",
        "gtl_workers",
    ] {
        assert!(text.contains(series), "metrics must carry `{series}`:\n{text}");
    }

    router.drain();
    a.stop();
    b.stop();
}
