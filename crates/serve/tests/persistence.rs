//! The persistence contract of `--store` serving: a restarted server
//! answers repeat lifts from the store as result-cache hits with zero
//! search attempts and an answer identical to the original in every
//! deterministic field, and per-client fairness caps admissions with a
//! typed `rate_limited` error.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use gtl::StaggConfig;
use gtl_search::SearchBudget;
use gtl_serve::{
    ErrorCode, Event, LiftRequest, LiftServer, ServerConfig, ServerHandle, WireError,
};
use gtl_store::LiftStore;

fn quick_base() -> StaggConfig {
    StaggConfig::top_down().with_budget(SearchBudget {
        time_limit: Duration::from_secs(30),
        ..SearchBudget::default()
    })
}

fn stored_server(store: Arc<LiftStore>, workers: usize) -> LiftServer {
    LiftServer::start(ServerConfig {
        workers,
        queue_capacity: 16,
        base: quick_base(),
        progress_interval: Duration::from_millis(20),
        default_timeout: None,
        result_cache_capacity: 64,
        store: Some(store),
        ..ServerConfig::default()
    })
}

fn tmp_store(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gtl-serve-store-{name}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// The terminal `done` of a blocking lift, or a panic with the stream.
fn done_of(handle: &ServerHandle, request: LiftRequest) -> (String, u64, u64, bool) {
    let events = handle.lift_blocking(request);
    match events.last() {
        Some(Event::Done {
            solution,
            attempts,
            nodes,
            cached,
            ..
        }) => (solution.clone(), *attempts, *nodes, *cached),
        other => panic!("expected done, got {other:?}"),
    }
}

#[test]
fn restart_round_trip_serves_repeats_with_zero_search() {
    let path = tmp_store("restart");

    // Run 1: solve two benchmarks, persisting as they complete.
    let (dot, gemv) = {
        let store = Arc::new(LiftStore::open(&path).unwrap());
        let server = stored_server(store, 2);
        let handle = server.handle();
        let dot = done_of(&handle, LiftRequest::benchmark("r1", "blas_dot"));
        let gemv = done_of(&handle, LiftRequest::benchmark("r2", "blas_gemv"));
        assert!(!dot.3 && !gemv.3, "first sight must not be cached");
        let stats = handle.stats();
        assert_eq!(stats.store_appended, 2);
        assert_eq!(stats.store_loaded, 0);
        server.shutdown();
        (dot, gemv)
    };

    // Run 2: a fresh server on the same file — the "restart". Repeat
    // lifts must be result-cache hits: no search (zero fresh attempts
    // anywhere — the echoed numbers are the *original* run's), and the
    // identical solution.
    {
        let store = Arc::new(LiftStore::open(&path).unwrap());
        assert_eq!(store.counters().loaded, 2);
        let server = stored_server(store, 2);
        let handle = server.handle();
        let stats = handle.stats();
        assert_eq!(stats.store_loaded, 2);
        assert_eq!(stats.store_appended, 0);

        let dot2 = done_of(&handle, LiftRequest::benchmark("r1", "blas_dot"));
        let gemv2 = done_of(&handle, LiftRequest::benchmark("r2", "blas_gemv"));
        assert!(dot2.3 && gemv2.3, "repeats must be cache hits");
        assert_eq!((&dot2.0, dot2.1, dot2.2), (&dot.0, dot.1, dot.2));
        assert_eq!((&gemv2.0, gemv2.1, gemv2.2), (&gemv.0, gemv.1, gemv.2));

        let stats = handle.stats();
        assert_eq!(stats.cache_hits, 2, "both answered from the cache");
        assert_eq!(
            stats.oracles.len(),
            0,
            "zero lifts driven: no oracle was ever consulted"
        );
        assert_eq!(stats.store_appended, 0, "hits are not re-persisted");
        server.shutdown();
    }

    // Run 3: compaction between restarts must not change any answer.
    {
        let store = Arc::new(LiftStore::open(&path).unwrap());
        store.compact().unwrap();
        let server = stored_server(Arc::clone(&store), 1);
        let handle = server.handle();
        let dot3 = done_of(&handle, LiftRequest::benchmark("r1", "blas_dot"));
        assert!(dot3.3);
        assert_eq!((&dot3.0, dot3.1, dot3.2), (&dot.0, dot.1, dot.2));
        assert_eq!(handle.stats().store_compactions, 1);
        server.shutdown();
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn config_scoped_keys_do_not_cross_store_entries() {
    // A stored outcome is keyed by the full configuration: the same
    // benchmark under a different search mode must miss and run fresh.
    let path = tmp_store("scoped");
    {
        let store = Arc::new(LiftStore::open(&path).unwrap());
        let server = stored_server(store, 1);
        let handle = server.handle();
        done_of(&handle, LiftRequest::benchmark("r1", "blas_dot"));
        server.shutdown();
    }
    {
        let store = Arc::new(LiftStore::open(&path).unwrap());
        let server = LiftServer::start(ServerConfig {
            workers: 1,
            base: StaggConfig::bottom_up().with_budget(SearchBudget {
                time_limit: Duration::from_secs(30),
                ..SearchBudget::default()
            }),
            store: Some(store),
            ..ServerConfig::default()
        });
        let handle = server.handle();
        let (_, _, _, cached) = done_of(&handle, LiftRequest::benchmark("r1", "blas_dot"));
        assert!(!cached, "a different config must not hit the stored entry");
        server.shutdown();
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unreadable_store_is_a_typed_error_not_a_panic() {
    let path = tmp_store("corrupt");
    std::fs::write(&path, "this is not a store\n").unwrap();
    let err = LiftStore::open(&path).unwrap_err();
    assert!(
        matches!(err, gtl_store::StoreError::Version { .. }),
        "expected a Version error, got {err:?}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn per_client_inflight_cap_rejects_with_rate_limited() {
    let server = LiftServer::start(ServerConfig {
        workers: 1,
        queue_capacity: 16,
        base: quick_base(),
        progress_interval: Duration::from_millis(20),
        max_inflight_per_client: 2,
        ..ServerConfig::default()
    });
    let handle = server.handle();
    let sink: gtl_serve::EventSink = Arc::new(|_| {});

    // Two slow admissions fill the client's allowance…
    let slow = |id: &str| {
        let mut r = LiftRequest::benchmark(id, "sa_4d_add");
        r.overrides.max_attempts = Some(50_000);
        r.overrides.time_limit_ms = Some(20_000);
        r
    };
    handle.submit(slow("a"), Arc::clone(&sink)).unwrap();
    handle.submit(slow("b"), Arc::clone(&sink)).unwrap();

    // …the third is rejected with the typed admission error.
    let err: WireError = handle.submit(slow("c"), Arc::clone(&sink)).unwrap_err();
    assert_eq!(err.code, ErrorCode::RateLimited);
    assert_eq!(err.id.as_deref(), Some("c"));
    assert_eq!(err.code.wire_name(), "rate_limited");

    // A *different* client is unaffected — the cap is per client, not
    // global.
    let other = server.handle();
    other.submit(slow("a"), Arc::clone(&sink)).unwrap();

    // Freeing a slot re-admits the first client. Cancel the *queued*
    // job: its slot releases synchronously (a running job's release
    // waits for its worker to notice the flag).
    assert!(handle.cancel("b"));
    handle.submit(slow("d"), Arc::clone(&sink)).unwrap();
    assert_eq!(handle.stats().rejected, 1);
    server.shutdown();
}
