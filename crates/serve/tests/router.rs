//! Integration tests of the lift router: consistent-hash routing to a
//! live replica set over real TCP, the failover matrix (replica down at
//! connect, replica dying mid-stream, every replica down), cancel
//! routing, and replica lift-sharing end to end.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gtl::{LiftQuery, StaggConfig};
use gtl_benchsuite::{all_benchmarks, by_name};
use gtl_search::SearchBudget;
use gtl_serve::{
    request_key, serve_listener, ErrorCode, Event, EventSink, HashRing, LiftRequest,
    LiftRouter, LiftServer, Request, RouterConfig, RouterHandle, ServerConfig,
};

fn quick_base() -> StaggConfig {
    StaggConfig::top_down().with_budget(SearchBudget {
        time_limit: Duration::from_secs(30),
        ..SearchBudget::default()
    })
}

fn replica_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 16,
        base: quick_base(),
        progress_interval: Duration::from_millis(20),
        result_cache_capacity: 128,
        ..ServerConfig::default()
    }
}

/// A lift server listening on an ephemeral port, driven by the real TCP
/// transport — exactly what `lift_server --listen` runs.
struct Replica {
    addr: String,
    thread: Option<std::thread::JoinHandle<()>>,
}

fn spawn_replica(config: ServerConfig) -> Replica {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind replica");
    let addr = listener.local_addr().expect("local addr").to_string();
    let thread = std::thread::spawn(move || {
        let server = LiftServer::start(config);
        serve_listener(listener, "test-replica", || server.handle());
        server.shutdown();
    });
    Replica {
        addr,
        thread: Some(thread),
    }
}

impl Replica {
    fn stop(mut self) {
        if let Ok(mut stream) = TcpStream::connect(&self.addr) {
            let _ = writeln!(stream, "{}", Request::Shutdown.to_line());
            let _ = stream.flush();
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// An address nothing listens on (bound once to reserve it, then
/// dropped), for connect-failure scenarios.
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.local_addr().expect("local addr").to_string()
}

/// A replica that admits one lift (`queued`) and then drops the
/// connection without a terminal event — the mid-stream death case.
fn spawn_flaky_replica() -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind flaky");
    let addr = listener.local_addr().expect("local addr").to_string();
    let thread = std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            let id = match Request::parse_line(line.trim()) {
                Ok(Request::Lift(request)) => request.id,
                _ => String::from("?"),
            };
            let mut writer = stream;
            let event = Event::Queued {
                id,
                position: 1,
                trace_id: None,
            };
            let _ = writeln!(writer, "{}", event.to_line());
            let _ = writer.flush();
            // Dropping the stream here is the mid-stream death.
        }
    });
    (addr, thread)
}

fn router_config(replicas: Vec<String>) -> RouterConfig {
    RouterConfig {
        replicas,
        vnodes: 64,
        connect_timeout: Duration::from_millis(1500),
        base: quick_base(),
    }
}

/// The routing key of a suite benchmark under `base` — the same value
/// the router and the replicas compute.
fn key_for(name: &str, base: &StaggConfig) -> u64 {
    let b = by_name(name).expect("suite benchmark");
    let query = LiftQuery {
        label: b.name.to_string(),
        source: b.source.to_string(),
        task: b.lift_task(),
        ground_truth: Some(b.parse_ground_truth()),
    };
    request_key(&query, base)
}

/// A benchmark whose hash makes `target` the primary replica, preferring
/// fast-solving kernels. The ring is deterministic, so searching the
/// suite always finds one (77 benchmarks versus a handful of replicas).
fn benchmark_routed_to(ring: &HashRing, target: &str, base: &StaggConfig) -> String {
    let preferred = ["blas_dot", "blas_axpy", "blas_scal", "sa_add_scalar", "blas_gemv"];
    let rest = all_benchmarks()
        .into_iter()
        .map(|b| b.name.to_string())
        .filter(|name| !preferred.contains(&name.as_str()));
    preferred
        .iter()
        .map(|s| s.to_string())
        .chain(rest)
        .find(|name| ring.primary(key_for(name, base)) == Some(target))
        .expect("some benchmark routes to the target replica")
}

fn sink_channel() -> (EventSink, Receiver<Event>) {
    let (tx, rx) = channel::<Event>();
    let sink: EventSink = Arc::new(move |event: &Event| {
        let _ = tx.send(event.clone());
    });
    (sink, rx)
}

fn collect_stream(rx: &Receiver<Event>) -> Vec<Event> {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut events = Vec::new();
    loop {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .expect("stream did not terminate within 60s");
        match rx.recv_timeout(remaining) {
            Ok(event) => {
                let terminal = event.is_terminal();
                events.push(event);
                if terminal {
                    return events;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                panic!("stream did not terminate; got so far: {events:?}")
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("sink dropped before terminal event; got: {events:?}")
            }
        }
    }
}

fn lift_via(handle: &RouterHandle, request: &LiftRequest) -> Vec<Event> {
    let (sink, rx) = sink_channel();
    let line = Request::Lift(request.clone()).to_line();
    handle.handle_line(&line, &sink);
    collect_stream(&rx)
}

#[test]
fn lifts_route_by_hash_and_repeats_hit_the_owners_cache() {
    let a = spawn_replica(replica_config());
    let b = spawn_replica(replica_config());
    let router = LiftRouter::new(router_config(vec![a.addr.clone(), b.addr.clone()]));
    let handle = router.handle();

    // One benchmark per replica, so both receive traffic.
    let base = quick_base();
    let ring = HashRing::new(vec![a.addr.clone(), b.addr.clone()], 64);
    let on_a = benchmark_routed_to(&ring, &a.addr, &base);
    let on_b = benchmark_routed_to(&ring, &b.addr, &base);

    for (n, name) in [&on_a, &on_b].into_iter().enumerate() {
        let first = lift_via(&handle, &LiftRequest::benchmark(format!("first-{n}"), name));
        assert!(
            matches!(first.first(), Some(Event::Queued { .. })),
            "stream must open with queued: {first:?}"
        );
        let Some(Event::Done { cached: false, .. }) = first.last() else {
            panic!("{name}: expected an uncached done, got {:?}", first.last());
        };
        // The repeat hashes to the same replica — the one that cached
        // the answer — so it must be a hit (the echoed attempt count is
        // the original run's; no fresh search happens).
        let again = lift_via(&handle, &LiftRequest::benchmark(format!("again-{n}"), name));
        match again.last() {
            Some(Event::Done { cached: true, .. }) => {}
            other => panic!("{name}: repeat must be a cached done: {other:?}"),
        }
    }

    router.drain();
    a.stop();
    b.stop();
}

#[test]
fn connect_failure_fails_over_to_the_next_candidate() {
    let live = spawn_replica(replica_config());
    let dead = dead_addr();
    let base = quick_base();
    // The dead replica must be the primary, or the test would never
    // exercise failover.
    let ring = HashRing::new(vec![dead.clone(), live.addr.clone()], 64);
    let name = benchmark_routed_to(&ring, &dead, &base);

    let router = LiftRouter::new(router_config(vec![dead, live.addr.clone()]));
    let handle = router.handle();
    let events = lift_via(&handle, &LiftRequest::benchmark("failover", &name));
    assert!(
        matches!(events.first(), Some(Event::Queued { .. })),
        "failover stream still opens with queued: {events:?}"
    );
    assert!(
        matches!(events.last(), Some(Event::Done { .. })),
        "the surviving replica must answer: {events:?}"
    );
    router.drain();
    live.stop();
}

#[test]
fn mid_stream_death_fails_over_without_duplicate_queued() {
    let live = spawn_replica(replica_config());
    let (flaky, flaky_thread) = spawn_flaky_replica();
    let base = quick_base();
    let ring = HashRing::new(vec![flaky.clone(), live.addr.clone()], 64);
    let name = benchmark_routed_to(&ring, &flaky, &base);

    let router = LiftRouter::new(router_config(vec![flaky, live.addr.clone()]));
    let handle = router.handle();
    let events = lift_via(&handle, &LiftRequest::benchmark("midstream", &name));
    let queued = events
        .iter()
        .filter(|e| matches!(e, Event::Queued { .. }))
        .count();
    assert_eq!(
        queued, 1,
        "failover re-admission must not duplicate queued: {events:?}"
    );
    assert!(
        matches!(events.last(), Some(Event::Done { .. })),
        "the lift must finish on the surviving replica: {events:?}"
    );
    let _ = flaky_thread.join();
    router.drain();
    live.stop();
}

#[test]
fn exhausting_every_replica_yields_replica_unavailable() {
    let router = LiftRouter::new(router_config(vec![dead_addr(), dead_addr()]));
    let handle = router.handle();
    let events = lift_via(&handle, &LiftRequest::benchmark("doomed", "blas_dot"));
    match events.as_slice() {
        [Event::Error { id, code, message, .. }] => {
            assert_eq!(id.as_deref(), Some("doomed"), "error must carry the id");
            assert_eq!(*code, ErrorCode::ReplicaUnavailable);
            assert!(
                message.contains("2 candidate replica(s)"),
                "message should count the candidates: {message}"
            );
        }
        other => panic!("expected exactly one replica_unavailable error: {other:?}"),
    }
    router.drain();
}

#[test]
fn resolution_errors_never_touch_replicas() {
    // Both replicas are dead, but an unknown benchmark is rejected
    // locally — typed, and with no connect delay.
    let router = LiftRouter::new(router_config(vec![dead_addr()]));
    let handle = router.handle();
    let events = lift_via(&handle, &LiftRequest::benchmark("nope", "no_such_kernel"));
    match events.as_slice() {
        [Event::Error { code, .. }] => assert_eq!(*code, ErrorCode::UnknownBenchmark),
        other => panic!("expected unknown_benchmark: {other:?}"),
    }
    router.drain();
}

#[test]
fn cancel_routes_to_the_replica_running_the_lift() {
    let replica = spawn_replica(replica_config());
    let router = LiftRouter::new(router_config(vec![replica.addr.clone()]));
    let handle = router.handle();

    // The unsolved 4-D kernel with an enormous budget runs long enough
    // to cancel deterministically.
    let request = LiftRequest {
        overrides: gtl_serve::ConfigOverrides {
            max_attempts: Some(50_000_000),
            max_nodes: Some(u64::MAX / 2),
            time_limit_ms: Some(120_000),
            ..Default::default()
        },
        ..LiftRequest::benchmark("long", "sa_4d_add")
    };
    let (sink, rx) = sink_channel();
    handle.handle_line(&Request::Lift(request).to_line(), &sink);
    // Wait until the lift demonstrably runs on the replica.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .expect("no search_progress within 30s");
        let event = rx.recv_timeout(remaining).expect("stream stalled");
        if matches!(event, Event::SearchProgress { .. }) {
            break;
        }
        assert!(!event.is_terminal(), "terminated before cancel: {event:?}");
    }
    handle.handle_line(&Request::Cancel { id: "long".into() }.to_line(), &sink);
    let mut tail = Vec::new();
    loop {
        let event = rx
            .recv_timeout(Duration::from_secs(15))
            .expect("no terminal event after cancel");
        let terminal = event.is_terminal();
        tail.push(event);
        if terminal {
            break;
        }
    }
    assert!(
        matches!(
            tail.last(),
            Some(Event::Failed { reason, .. }) if reason == "cancelled"
        ),
        "cancel must reach the replica: {tail:?}"
    );

    // An id the router never saw is rejected locally.
    let (sink2, rx2) = sink_channel();
    handle.handle_line(&Request::Cancel { id: "ghost".into() }.to_line(), &sink2);
    match rx2.recv_timeout(Duration::from_secs(5)) {
        Ok(Event::Error { code, .. }) => assert_eq!(code, ErrorCode::UnknownRequest),
        other => panic!("expected unknown_request: {other:?}"),
    }
    router.drain();
    replica.stop();
}

#[test]
fn stats_fan_out_and_sum_across_replicas() {
    let a = spawn_replica(replica_config());
    let b = spawn_replica(replica_config());
    let router = LiftRouter::new(router_config(vec![a.addr.clone(), b.addr.clone()]));
    let handle = router.handle();

    let events = lift_via(&handle, &LiftRequest::benchmark("one", "blas_dot"));
    assert!(matches!(events.last(), Some(Event::Done { .. })), "{events:?}");

    let (sink, rx) = sink_channel();
    handle.handle_line(&Request::Stats.to_line(), &sink);
    match rx.recv_timeout(Duration::from_secs(10)) {
        Ok(Event::Stats { stats }) => {
            assert_eq!(stats.received, 1, "one lift across the set");
            assert_eq!(stats.completed, 1);
            assert_eq!(stats.workers, 4, "2 workers x 2 replicas");
        }
        other => panic!("expected summed stats: {other:?}"),
    }
    router.drain();
    a.stop();
    b.stop();
}

#[test]
fn tcp_disconnect_without_cancel_releases_fairness_slots() {
    // A client at its inflight cap that vanishes without cancelling
    // must not pin its slots forever: the transport's disconnect hook
    // cancels its lifts, which decrements the per-client counters.
    let replica = spawn_replica(ServerConfig {
        workers: 1,
        max_inflight_per_client: 1,
        ..replica_config()
    });
    let long = |id: &str| {
        let mut r = LiftRequest::benchmark(id, "sa_4d_add");
        r.overrides.max_attempts = Some(50_000_000);
        r.overrides.max_nodes = Some(u64::MAX / 2);
        r.overrides.time_limit_ms = Some(120_000);
        r
    };

    let mut doomed = gtl_serve::LiftClient::connect(&replica.addr).expect("connect");
    doomed.send(&Request::Lift(long("pinned"))).expect("send lift");
    match doomed.next_event().expect("queued") {
        Some(Event::Queued { .. }) => {}
        other => panic!("expected queued: {other:?}"),
    }
    // At the cap: a second submission on the same connection bounces.
    doomed.send(&Request::Lift(long("excess"))).expect("send second");
    match doomed.next_event().expect("reject") {
        Some(Event::Error { code, .. }) => assert_eq!(code, ErrorCode::RateLimited),
        other => panic!("expected rate_limited: {other:?}"),
    }
    drop(doomed); // Disconnect without any cancel request.

    // The server notices the dead connection and releases everything.
    let mut observer = gtl_serve::LiftClient::connect(&replica.addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = observer.stats().expect("stats");
        if stats.cancelled >= 1 && stats.active == 0 && stats.queued == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect never released the slots: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    replica.stop();
}

#[test]
fn solved_lifts_propagate_to_peers_so_any_replica_serves_repeats() {
    // One-directional topology so arrival is observable: A pushes to B,
    // B accepts shares and persists them to a store whose
    // `store_appended` counter tells us exactly when the push landed —
    // before B has ever seen a lift itself.
    let mut store_path = std::env::temp_dir();
    store_path.push(format!("gtl-router-share-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&store_path);
    let listener_a = TcpListener::bind("127.0.0.1:0").expect("bind a");
    let listener_b = TcpListener::bind("127.0.0.1:0").expect("bind b");
    let addr_a = listener_a.local_addr().expect("addr").to_string();
    let addr_b = listener_b.local_addr().expect("addr").to_string();
    let thread_a = {
        let peer = addr_b.clone();
        std::thread::spawn(move || {
            let server = LiftServer::start(ServerConfig {
                peers: vec![peer],
                ..replica_config()
            });
            serve_listener(listener_a, "replica-a", || server.handle());
            server.shutdown();
        })
    };
    let thread_b = {
        let store = store_path.clone();
        std::thread::spawn(move || {
            let store = gtl_store::LiftStore::open(&store).expect("open b store");
            let server = LiftServer::start(ServerConfig {
                accept_shared_lifts: true,
                store: Some(Arc::new(store)),
                ..replica_config()
            });
            serve_listener(listener_b, "replica-b", || server.handle());
            server.shutdown();
        })
    };

    // Solve on A directly.
    let mut client_a = gtl_serve::LiftClient::connect(&addr_a).expect("connect a");
    let events = client_a
        .lift(LiftRequest::benchmark("solve", "blas_dot"))
        .expect("lift on a");
    let Some(Event::Done { solution, cached: false, .. }) = events.last() else {
        panic!("expected an uncached done on A: {events:?}");
    };
    let solution = solution.clone();

    // The push is asynchronous and best-effort; wait for it to land in
    // B's store before submitting anything to B.
    let mut client_b = gtl_serve::LiftClient::connect(&addr_b).expect("connect b");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = client_b.stats().expect("stats from b");
        if stats.store_appended >= 1 {
            assert_eq!(
                stats.received, 0,
                "B must not have run any lift of its own yet"
            );
            break;
        }
        assert!(Instant::now() < deadline, "share never reached B's store");
        std::thread::sleep(Duration::from_millis(50));
    }

    // B has never searched this kernel, yet answers the repeat as a
    // cache hit with A's exact solution.
    let repeat = client_b
        .lift(LiftRequest::benchmark("repeat", "blas_dot"))
        .expect("repeat on b");
    match repeat.last() {
        Some(Event::Done {
            solution: hit,
            cached: true,
            ..
        }) => assert_eq!(hit, &solution, "B must serve A's exact solution"),
        other => panic!("repeat on B must be a cached done: {other:?}"),
    }
    let stats = client_b.stats().expect("stats from b");
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 0, "no search may run on B");

    // Idempotence end to end: re-push the exact record from B's store
    // over the wire; the ack must say it was already present.
    let record = gtl_store::LiftStore::open(&store_path)
        .expect("reopen b store")
        .records()
        .into_iter()
        .next()
        .expect("the shared record");
    let share = Request::ShareLift {
        id: "repush".into(),
        record: record.clone(),
    };
    let mut stream = TcpStream::connect(&addr_b).expect("connect b raw");
    writeln!(stream, "{}", share.to_line()).expect("send share");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("read ack");
    match Event::parse_line(ack.trim()) {
        Ok(Event::Shared { stored: false, .. }) => {}
        other => panic!("re-push must dedup to stored=false: {other:?}"),
    }

    // A does not accept shares: the same push at A is a typed reject.
    let mut stream = TcpStream::connect(&addr_a).expect("connect a raw");
    writeln!(stream, "{}", share.to_line()).expect("send share to a");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("read ack from a");
    match Event::parse_line(ack.trim()) {
        Ok(Event::Error { code, .. }) => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("A must reject shares with bad_request: {other:?}"),
    }

    drop(client_a);
    drop(client_b);
    for addr in [&addr_a, &addr_b] {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = writeln!(stream, "{}", Request::Shutdown.to_line());
        }
    }
    let _ = thread_a.join();
    let _ = thread_b.join();
    let _ = std::fs::remove_file(&store_path);
}
