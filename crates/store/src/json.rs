//! A minimal JSON value, parser and compact serializer.
//!
//! The persistence logs, the serving wire protocol and the oracle
//! fixtures are all JSON, and the build environment has no crates.io
//! access, so — in the same spirit as the workspace's `shims/` — this
//! module carries the workspace's one small, std-only JSON
//! implementation instead of depending on `serde`. It supports the full
//! JSON grammar (objects, arrays, strings with escapes incl. `\uXXXX`
//! surrogate pairs, numbers, booleans, null). Integer-shaped numbers
//! (no fraction, no exponent) are held losslessly as [`Json::Int`], so
//! `u64` counters round-trip bit-exactly all the way to `u64::MAX`;
//! everything else is an [`Json::Num`] `f64`. The two compare equal
//! when they denote the same value, so `42` parses interchangeably.

use std::collections::BTreeMap;
use std::fmt;

/// The smallest integer magnitude at which `f64` can no longer
/// represent every integer (2⁵³). An integral `f64` at or beyond this
/// may have been silently rounded, so [`Json::as_u64`] rejects it.
const F64_EXACT_LIMIT: f64 = 9_007_199_254_740_992.0;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer-shaped number, held losslessly. `i128` covers the
    /// full `u64` and `i64` ranges.
    Int(i128),
    /// Any other JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps serialization deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Builds a number value from a `u64`, losslessly: the value is
    /// stored as [`Json::Int`] and round-trips bit-exactly through the
    /// serializer and parser for the full `u64` range.
    pub fn u64(n: u64) -> Json {
        Json::Int(n as i128)
    }

    /// Member lookup on an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number. Integers beyond 2⁵³
    /// lose precision in the conversion; use [`Json::as_u64`] when the
    /// value must be exact.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer (rejects fractions,
    /// negatives and non-numbers). An integral `f64` at or above 2⁵³
    /// is rejected too: such a value may have been rounded on the way
    /// in, so treating it as exact would launder corruption.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Num(n)
                if n.is_finite() && *n >= 0.0 && n.fract() == 0.0 && *n < F64_EXACT_LIMIT =>
            {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace) — one line, suitable for the
    /// JSON-lines wire format.
    pub fn to_line(&self) -> String {
        self.to_string()
    }
}

impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Int(a), Json::Int(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            // `42` may be held either way depending on whether it came
            // from the parser or `Json::num`; the two are the same
            // JSON value, so equality bridges the representations.
            (Json::Int(i), Json::Num(n)) | (Json::Num(n), Json::Int(i)) => int_eq_num(*i, *n),
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

fn int_eq_num(i: i128, n: f64) -> bool {
    // Truncation (`as i128`) is only meaningful for integral values
    // inside i128's range; anything else can't equal an Int. The upper
    // bound is strict because `i128::MAX as f64` rounds up to 2¹²⁷,
    // which is itself out of range.
    n.is_finite()
        && n.fract() == 0.0
        && n >= i128::MIN as f64
        && n < i128::MAX as f64
        && n as i128 == i
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(n) => {
                if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e18 {
                    write!(f, "{}", *n as i64)
                } else if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; the protocol never produces
                    // them, but degrade safely rather than emit garbage.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A JSON parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first violation.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            // hex4 advanced past the digits; compensate
                            // for the unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let mut integer_shaped = true;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            integer_shaped = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integer_shaped = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // Integer-shaped text parses losslessly; an integer too large
        // even for i128 degrades to f64 like any other JSON reader.
        if integer_shaped {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::obj([
            ("type", Json::str("lift")),
            ("id", Json::str("r-1")),
            ("nums", Json::Arr(vec![Json::u64(0), Json::u64(42), Json::Num(-1.5)])),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
        ]);
        let line = doc.to_line();
        assert_eq!(parse(&line).unwrap(), doc);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s":"a\"b\\c\nd\u0041\u00e9 ✓"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\ndAé ✓");
        // Surrogate pair: U+1F600.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
        // Serializer escapes control characters back out.
        assert_eq!(Json::str("a\nb\u{1}").to_line(), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn numbers_integer_and_float() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(parse("-3").unwrap().as_u64(), None, "negatives are not u64");
        assert_eq!(parse("1.5").unwrap().as_u64(), None, "fractions are not u64");
        assert_eq!(parse("2e3").unwrap().as_f64(), Some(2000.0));
        assert_eq!(Json::u64(123).to_line(), "123");
        assert_eq!(Json::Num(1.25).to_line(), "1.25");
    }

    #[test]
    fn u64_roundtrips_bit_exactly() {
        // The four acceptance-criteria values, plus neighbors that a
        // f64-routed path would collapse onto each other.
        for n in [
            0u64,
            1,
            (1 << 53) - 1,
            1 << 53,
            (1 << 53) + 1,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let line = Json::u64(n).to_line();
            assert_eq!(line, n.to_string(), "serializes as the decimal digits");
            assert_eq!(parse(&line).unwrap().as_u64(), Some(n), "round-trips {n}");
        }
    }

    #[test]
    fn as_u64_rejects_imprecise_f64() {
        // 2^53 as f64 is exactly representable, but an *original* of
        // 2^53 + 1 rounds to the same bits — the value is ambiguous, so
        // the precise accessor refuses it.
        assert_eq!(Json::Num(9_007_199_254_740_992.0).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
        assert_eq!(Json::Num(42.0).as_u64(), Some(42), "small integral f64 is exact");
        assert_eq!(Json::Num(f64::NAN).as_u64(), None);
    }

    #[test]
    fn int_and_num_compare_as_values() {
        assert_eq!(parse("42").unwrap(), Json::num(42.0));
        assert_eq!(Json::num(42.0), parse("42").unwrap());
        assert_ne!(parse("9007199254740993").unwrap(), Json::Num(9_007_199_254_740_992.0));
        assert_ne!(parse("42").unwrap(), Json::num(42.5));
        // Huge integers beyond i128 degrade to f64 instead of failing.
        assert!(matches!(parse("1e40").unwrap(), Json::Num(_)));
        assert!(matches!(
            parse("170141183460469231731687303715884105728").unwrap(),
            Json::Num(_)
        ));
        assert_eq!(parse("-9223372036854775808").unwrap().as_f64(), Some(-9.223372036854776e18));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2", "{'a':1}",
            "\"\\u12\"", "\"\\ud800x\"",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn object_member_access() {
        let v = parse(r#"{"a":{"b":[1,2]}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().get("b").unwrap().as_arr().unwrap().len(),
            2
        );
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("a").is_none());
    }
}
