//! The persistent lift store: completed lift outcomes keyed by the
//! serving layer's normalized request hash, durable across restarts.
//!
//! A [`LiftStore`] is an in-memory index over an append-only
//! [`JsonlLog`] of [`LiftRecord`]s. Appends are last-writer-wins per
//! key; superseded records stay in the log until [`LiftStore::compact`]
//! rewrites it down to the live set (atomically, via temp file +
//! rename). The same store file serves every consumer that can compute
//! the request key — `lift_server --store` warm-starts its result
//! cache from it, `batch_suite --store` skips already-solved
//! benchmarks, and `store_tool` inspects/compacts/exports it offline.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::json::Json;
use crate::log::{JsonlLog, Recovery, StoreError};

/// The header `kind` of lift-outcome logs.
pub const LIFT_LOG_KIND: &str = "lift_outcomes";

/// One completed lift, as persisted: everything a serving layer needs
/// to answer the identical request again without running a search.
#[derive(Debug, Clone, PartialEq)]
pub struct LiftRecord {
    /// The normalized request hash (`gtl_serve::request_key`): source +
    /// label + ground truth + task layout + outcome-relevant config.
    pub key: u64,
    /// The benchmark/request label, for humans and `store_tool`.
    pub label: String,
    /// The verified solution, when the lift succeeded.
    pub solution: Option<String>,
    /// The wire failure reason, when it did not.
    pub reason: Option<String>,
    /// Optional failure detail.
    pub detail: Option<String>,
    /// Templates sent to validation by the original run.
    pub attempts: u64,
    /// Search-queue pops of the original run.
    pub nodes: u64,
    /// End-to-end seconds of the original run.
    pub seconds: f64,
}

impl LiftRecord {
    /// Whether the recorded lift succeeded.
    pub fn solved(&self) -> bool {
        self.solution.is_some()
    }

    /// Encodes as one log record. The key travels as a 16-digit hex
    /// string — the established on-disk format (predating lossless
    /// [`Json`] integers), and what every existing store file holds.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("key", Json::str(format!("{:016x}", self.key))),
            ("label", Json::str(&self.label)),
            ("attempts", Json::u64(self.attempts)),
            ("nodes", Json::u64(self.nodes)),
            ("seconds", Json::num(self.seconds)),
        ];
        if let Some(solution) = &self.solution {
            fields.push(("solution", Json::str(solution)));
        }
        if let Some(reason) = &self.reason {
            fields.push(("reason", Json::str(reason)));
        }
        if let Some(detail) = &self.detail {
            fields.push(("detail", Json::str(detail)));
        }
        Json::obj(fields)
    }

    /// Decodes one log record.
    ///
    /// # Errors
    ///
    /// Returns a description of the missing/mistyped member.
    pub fn from_json(doc: &Json) -> Result<LiftRecord, String> {
        let key = doc
            .get("key")
            .and_then(Json::as_str)
            .ok_or("missing string `key`")?;
        let key = u64::from_str_radix(key, 16).map_err(|_| "non-hex `key`".to_string())?;
        let string = |k: &str| doc.get(k).and_then(Json::as_str).map(str::to_string);
        Ok(LiftRecord {
            key,
            label: string("label").ok_or("missing string `label`")?,
            solution: string("solution"),
            reason: string("reason"),
            detail: string("detail"),
            attempts: doc
                .get("attempts")
                .and_then(Json::as_u64)
                .ok_or("missing numeric `attempts`")?,
            nodes: doc
                .get("nodes")
                .and_then(Json::as_u64)
                .ok_or("missing numeric `nodes`")?,
            seconds: doc
                .get("seconds")
                .and_then(Json::as_f64)
                .ok_or("missing numeric `seconds`")?,
        })
    }
}

/// Monotonic activity counters of one open store, surfaced by the
/// serving layer's `stats` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Live records loaded at open (after last-writer-wins collapsing).
    pub loaded: u64,
    /// Records appended since open.
    pub appended: u64,
    /// Compactions performed since open.
    pub compactions: u64,
}

/// What a compaction accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Log records before (superseded included).
    pub records_before: u64,
    /// Live records after.
    pub records_after: u64,
    /// File bytes before.
    pub bytes_before: u64,
    /// File bytes after.
    pub bytes_after: u64,
}

/// The durable lift-outcome store. All methods are `&self`; the store
/// is `Sync` and meant to be shared by every worker of a server.
#[derive(Debug)]
pub struct LiftStore {
    log: Arc<JsonlLog>,
    index: Mutex<HashMap<u64, LiftRecord>>,
    loaded: u64,
    /// Superseded records observed in the log at open time.
    superseded_at_open: u64,
    /// Sealed segment count at which an append triggers the sealed
    /// merge ([`LiftStore::open_with_compaction`]); `None` leaves
    /// compaction entirely to explicit [`LiftStore::compact`] calls.
    compact_at_segments: Option<u64>,
    recovery: Recovery,
    appended: AtomicU64,
    compactions: Arc<AtomicU64>,
    /// The background merge worker ([`LiftStore::open_with_compaction`]
    /// only): threshold-crossing appends signal it instead of merging
    /// inline, so the write path never pays for a compaction.
    merger: Option<MergeWorker>,
}

/// Shared handshake between appenders and the merge thread.
#[derive(Debug, Default)]
struct MergeSignal {
    state: Mutex<MergeState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct MergeState {
    /// An append crossed the segment threshold; a merge should run.
    requested: bool,
    /// The worker is currently inside a merge.
    running: bool,
    /// The store is dropping; finish any requested work and exit.
    shutdown: bool,
}

/// The background sealed-segment merge thread. Appends only flip a
/// flag under a tiny mutex; the worker does the file I/O off the write
/// path, serialized against explicit [`LiftStore::compact`] calls by
/// the log's own merge lock.
#[derive(Debug)]
struct MergeWorker {
    signal: Arc<MergeSignal>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MergeWorker {
    fn spawn(log: Arc<JsonlLog>, compactions: Arc<AtomicU64>, threshold: u64) -> MergeWorker {
        let signal = Arc::new(MergeSignal::default());
        let thread_signal = Arc::clone(&signal);
        let handle = std::thread::Builder::new()
            .name("gtl-store-merge".into())
            .spawn(move || merge_loop(&log, &compactions, threshold, &thread_signal))
            .expect("spawn store merge thread");
        MergeWorker {
            signal,
            handle: Some(handle),
        }
    }

    /// Flags a merge request; the worker picks it up when free.
    fn request(&self) {
        let mut state = self.signal.state.lock().expect("merge signal poisoned");
        state.requested = true;
        self.signal.cv.notify_all();
    }

    /// Blocks until no merge is requested or running.
    fn flush(&self) {
        let mut state = self.signal.state.lock().expect("merge signal poisoned");
        while state.requested || state.running {
            state = self
                .signal
                .cv
                .wait(state)
                .expect("merge signal poisoned");
        }
    }
}

fn merge_loop(
    log: &JsonlLog,
    compactions: &AtomicU64,
    threshold: u64,
    signal: &MergeSignal,
) {
    loop {
        {
            let mut state = signal.state.lock().expect("merge signal poisoned");
            while !state.requested && !state.shutdown {
                state = signal.cv.wait(state).expect("merge signal poisoned");
            }
            if state.shutdown && !state.requested {
                return;
            }
            state.requested = false;
            state.running = true;
        }
        // Re-check under current conditions: an earlier merge (or an
        // explicit compact) may already have drained the backlog since
        // the request was flagged.
        if log.sealed_segments() as u64 >= threshold {
            match log.compact_sealed(merge_lift_records) {
                Ok(_) => {
                    compactions.fetch_add(1, Ordering::Relaxed);
                }
                // A failed background merge loses no data (the sealed
                // files are intact) and the next threshold crossing
                // retries, so report and carry on.
                Err(e) => eprintln!("gtl_store: background segment merge failed: {e}"),
            }
        }
        let mut state = signal.state.lock().expect("merge signal poisoned");
        state.running = false;
        signal.cv.notify_all();
    }
}

/// The sealed-merge policy for lift logs: last writer wins per key;
/// records the decoder cannot read are kept verbatim (never silently
/// dropped).
fn merge_lift_records(records: Vec<Json>) -> Vec<Json> {
    let mut order: Vec<String> = Vec::new();
    let mut by_key: HashMap<String, Json> = HashMap::new();
    let mut unreadable: Vec<Json> = Vec::new();
    for record in records {
        match record.get("key").and_then(Json::as_str) {
            Some(key) => {
                if by_key.insert(key.to_string(), record.clone()).is_none() {
                    order.push(key.to_string());
                }
            }
            None => unreadable.push(record),
        }
    }
    let mut merged: Vec<Json> = order
        .into_iter()
        .map(|key| by_key.remove(&key).expect("keyed above"))
        .collect();
    merged.extend(unreadable);
    merged
}

impl LiftStore {
    /// Opens (or creates) the store at `path`, replaying its log into
    /// the in-memory index. Later records win per key; a torn final
    /// record is truncated away (see [`Recovery`]).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the file is unusable: I/O failure, version
    /// or kind mismatch, corruption before the tail, or a record
    /// missing required members.
    pub fn open(path: impl Into<PathBuf>) -> Result<LiftStore, StoreError> {
        Self::open_with(path, None)
    }

    /// [`LiftStore::open`] with optional segment rotation: when
    /// `rotate_at_bytes` is set, the live log file is sealed into an
    /// immutable `.seg-NNNNNN` segment each time it grows past the
    /// limit, and [`LiftStore::compact`] merges sealed segments into a
    /// `.snap` snapshot without ever rewriting the live file. A store
    /// rotated here still opens fine through plain [`LiftStore::open`].
    ///
    /// # Errors
    ///
    /// As [`LiftStore::open`].
    pub fn open_with(
        path: impl Into<PathBuf>,
        rotate_at_bytes: Option<u64>,
    ) -> Result<LiftStore, StoreError> {
        Self::open_impl(path.into(), rotate_at_bytes, None)
    }

    /// [`LiftStore::open_with`] with the segment-count maintenance rule
    /// armed: whenever rotation leaves `compact_at_segments` or more
    /// sealed `.seg-NNNNNN` files on disk, the append that crossed the
    /// threshold merges them into the snapshot ([`LiftStore::compact`])
    /// before returning. The live file is still never rewritten, and
    /// [`LiftStore::compact_if_stale`] treats the same threshold as
    /// staleness, so startup maintenance merges an over-segmented store
    /// even when superseded records do not dominate.
    ///
    /// # Errors
    ///
    /// As [`LiftStore::open`].
    pub fn open_with_compaction(
        path: impl Into<PathBuf>,
        rotate_at_bytes: u64,
        compact_at_segments: u64,
    ) -> Result<LiftStore, StoreError> {
        Self::open_impl(
            path.into(),
            Some(rotate_at_bytes),
            Some(compact_at_segments.max(1)),
        )
    }

    fn open_impl(
        path: PathBuf,
        rotate_at_bytes: Option<u64>,
        compact_at_segments: Option<u64>,
    ) -> Result<LiftStore, StoreError> {
        let (log, loaded) = match rotate_at_bytes {
            Some(limit) => JsonlLog::open_rotating(&path, LIFT_LOG_KIND, limit)?,
            None => JsonlLog::open(&path, LIFT_LOG_KIND)?,
        };
        let mut index = HashMap::new();
        let mut superseded = 0u64;
        for (n, doc) in loaded.records.iter().enumerate() {
            let record = LiftRecord::from_json(doc).map_err(|message| StoreError::Record {
                path: path.display().to_string(),
                // +2: 1-based, after the header line.
                line: n + 2,
                message,
            })?;
            if index.insert(record.key, record).is_some() {
                superseded += 1;
            }
        }
        let log = Arc::new(log);
        let compactions = Arc::new(AtomicU64::new(0));
        // With the maintenance rule armed, merges run on a dedicated
        // background thread — the appending thread only signals it.
        let merger = compact_at_segments.map(|threshold| {
            MergeWorker::spawn(Arc::clone(&log), Arc::clone(&compactions), threshold)
        });
        Ok(LiftStore {
            log,
            loaded: index.len() as u64,
            superseded_at_open: superseded,
            compact_at_segments,
            recovery: loaded.recovery,
            index: Mutex::new(index),
            appended: AtomicU64::new(0),
            compactions,
            merger,
        })
    }

    /// The file backing this store.
    pub fn path(&self) -> &Path {
        self.log.path()
    }

    /// The stored record for a request key, if any.
    pub fn get(&self, key: u64) -> Option<LiftRecord> {
        self.index
            .lock()
            .expect("lift index poisoned")
            .get(&key)
            .cloned()
    }

    /// Persists one completed lift (last writer wins per key). A record
    /// identical to what is already stored is skipped — replaying the
    /// same suite over a warm store must not grow the log, and a peer
    /// re-sharing a lift must be idempotent. Returns whether the record
    /// was actually appended (`false` for the identical-duplicate skip).
    ///
    /// # Errors
    ///
    /// [`StoreError::NonFinite`] when the record carries a NaN or
    /// infinite `seconds` — JSON cannot represent those, so persisting
    /// would corrupt the next open; nothing is stored. [`StoreError::Io`]
    /// when the append cannot be written; the in-memory index is
    /// updated regardless, so serving continues and a later append can
    /// supersede cleanly. A threshold-crossing append
    /// ([`LiftStore::open_with_compaction`]) only *signals* the
    /// background merge worker — the merge itself never runs on (or
    /// delays) the appending thread, and a merge failure is reported on
    /// stderr by the worker, not here.
    pub fn append(&self, record: LiftRecord) -> Result<bool, StoreError> {
        if !record.seconds.is_finite() {
            return Err(StoreError::NonFinite {
                path: self.log.path().display().to_string(),
                message: format!(
                    "`seconds` is {} for key {:016x} ({})",
                    record.seconds, record.key, record.label
                ),
            });
        }
        {
            let mut index = self.index.lock().expect("lift index poisoned");
            if index.get(&record.key) == Some(&record) {
                return Ok(false);
            }
            index.insert(record.key, record.clone());
        }
        self.log.append(&record.to_json())?;
        self.appended.fetch_add(1, Ordering::Relaxed);
        if self.over_segmented() {
            match &self.merger {
                Some(worker) => worker.request(),
                // Unreachable today (the threshold implies a worker),
                // but merging inline is the correct degraded behavior.
                None => {
                    self.compact()?;
                }
            }
        }
        Ok(true)
    }

    /// Blocks until the background merge worker is idle with no merge
    /// pending — the barrier tests and orderly shutdowns use before
    /// inspecting segment counts or compaction counters. A no-op for
    /// stores without the maintenance rule.
    pub fn flush_merges(&self) {
        if let Some(worker) = &self.merger {
            worker.flush();
        }
    }

    /// Whether the sealed half has fragmented past the maintenance
    /// threshold (always `false` without [`LiftStore::open_with_compaction`]).
    fn over_segmented(&self) -> bool {
        self.compact_at_segments
            .is_some_and(|limit| self.log.sealed_segments() as u64 >= limit)
    }

    /// Sealed `.seg-NNNNNN` files currently backing this store.
    pub fn sealed_segments(&self) -> usize {
        self.log.sealed_segments()
    }

    /// Live records currently indexed.
    pub fn len(&self) -> usize {
        self.index.lock().expect("lift index poisoned").len()
    }

    /// Whether nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of every live record, sorted by label then key (a
    /// deterministic order for exports and cache prefill).
    pub fn records(&self) -> Vec<LiftRecord> {
        let mut records: Vec<LiftRecord> = self
            .index
            .lock()
            .expect("lift index poisoned")
            .values()
            .cloned()
            .collect();
        records.sort_by(|a, b| a.label.cmp(&b.label).then(a.key.cmp(&b.key)));
        records
    }

    /// Compacts the log down to the live set. Served answers are
    /// unchanged: compaction drops only superseded records.
    ///
    /// Unsegmented stores rewrite the whole file atomically (temp
    /// file then rename). Segmented stores ([`LiftStore::open_with`])
    /// instead merge the snapshot and sealed segments — last writer wins per
    /// key — into a fresh snapshot and delete the segments; the live
    /// file is **never rewritten**, so concurrent appends only wait on
    /// the lock, never race a rename.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when a write fails; the original files are
    /// untouched in that case.
    pub fn compact(&self) -> Result<CompactionStats, StoreError> {
        if self.log.has_sealed() {
            let stats = self.log.compact_sealed(merge_lift_records)?;
            self.compactions.fetch_add(1, Ordering::Relaxed);
            return Ok(CompactionStats {
                records_before: stats.records_before as u64,
                records_after: stats.records_after as u64,
                bytes_before: stats.bytes_before,
                bytes_after: stats.bytes_after,
            });
        }
        // Hold the index lock across the rewrite so a concurrent append
        // cannot land between snapshot and rename (it would be lost).
        let index = self.index.lock().expect("lift index poisoned");
        let before = std::fs::read(self.log.path()).unwrap_or_default();
        let bytes_before = before.len() as u64;
        // Record lines in the file right now (header excluded).
        let records_before =
            (before.iter().filter(|b| **b == b'\n').count() as u64).saturating_sub(1);
        let mut live: Vec<&LiftRecord> = index.values().collect();
        live.sort_by(|a, b| a.label.cmp(&b.label).then(a.key.cmp(&b.key)));
        let docs: Vec<Json> = live.iter().map(|r| r.to_json()).collect();
        self.log.rewrite(&docs)?;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        let bytes_after = std::fs::metadata(self.log.path()).map_or(0, |m| m.len());
        Ok(CompactionStats {
            records_before,
            records_after: live.len() as u64,
            bytes_before,
            bytes_after,
        })
    }

    /// Compacts only when the log is stale: it carries more superseded
    /// than live records, or (with [`LiftStore::open_with_compaction`])
    /// the sealed half has fragmented past the segment threshold. This
    /// is the deterministic maintenance rule `lift_server --store`
    /// applies at startup.
    ///
    /// # Errors
    ///
    /// As [`LiftStore::compact`].
    pub fn compact_if_stale(&self) -> Result<Option<CompactionStats>, StoreError> {
        if self.superseded_at_open > self.loaded || self.over_segmented() {
            self.compact().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Activity counters for `stats` reporting.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            loaded: self.loaded,
            appended: self.appended.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }

    /// Superseded records the open-time replay collapsed away.
    pub fn superseded_at_open(&self) -> u64 {
        self.superseded_at_open
    }

    /// What recovery had to do when this store was opened.
    pub fn recovery(&self) -> &Recovery {
        &self.recovery
    }
}

impl Drop for LiftStore {
    fn drop(&mut self) {
        // Stop the merge worker, letting a requested merge finish
        // first so a closing store leaves its segments as compact as
        // the synchronous path used to.
        if let Some(worker) = self.merger.take() {
            {
                let mut state = worker.signal.state.lock().expect("merge signal poisoned");
                state.shutdown = true;
                worker.signal.cv.notify_all();
            }
            if let Some(handle) = worker.handle {
                let _ = handle.join();
            }
        }
    }
}

/// Parses a `store_tool export` document of lift outcomes back into
/// records — the loader `loadgen` uses to replay a store's live set as
/// a request corpus.
///
/// # Errors
///
/// A description of what made the document unusable: unparseable JSON,
/// a non-lift `kind`, or a record missing required members.
pub fn parse_export(text: &str) -> Result<Vec<LiftRecord>, String> {
    let doc = crate::json::parse(text).map_err(|e| format!("unparseable export: {e}"))?;
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing string `kind`")?;
    if kind != LIFT_LOG_KIND {
        return Err(format!("export kind `{kind}`, expected `{LIFT_LOG_KIND}`"));
    }
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("missing array `records`")?;
    records
        .iter()
        .enumerate()
        .map(|(n, r)| LiftRecord::from_json(r).map_err(|e| format!("record {n}: {e}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gtl-lift-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn solved(key: u64, label: &str) -> LiftRecord {
        LiftRecord {
            key,
            label: label.into(),
            solution: Some("a(i) = b(i,j) * c(j)".into()),
            reason: None,
            detail: None,
            attempts: 57,
            nodes: 1250,
            seconds: 0.25,
        }
    }

    fn failed(key: u64, label: &str) -> LiftRecord {
        LiftRecord {
            key,
            label: label.into(),
            solution: None,
            reason: Some("budget_exceeded".into()),
            detail: None,
            attempts: 30_000,
            nodes: 412_007,
            seconds: 9.8,
        }
    }

    #[test]
    fn record_json_roundtrip() {
        for record in [solved(u64::MAX, "blas_gemv"), failed(1, "sa_4d_add")] {
            let doc = record.to_json();
            assert_eq!(LiftRecord::from_json(&doc).unwrap(), record);
            // And through the serializer/parser.
            let reparsed = crate::json::parse(&doc.to_line()).unwrap();
            assert_eq!(LiftRecord::from_json(&reparsed).unwrap(), record);
        }
        assert!(LiftRecord::from_json(&Json::obj([])).is_err());
        assert!(
            LiftRecord::from_json(&Json::obj([("key", Json::u64(3))])).is_err(),
            "numeric keys are rejected (precision)"
        );
    }

    #[test]
    fn outcomes_survive_restart() {
        let path = tmp("restart");
        {
            let store = LiftStore::open(&path).unwrap();
            store.append(solved(10, "blas_dot")).unwrap();
            store.append(failed(20, "sa_4d_add")).unwrap();
            assert_eq!(store.counters().appended, 2);
        }
        let store = LiftStore::open(&path).unwrap();
        assert_eq!(store.counters().loaded, 2);
        assert_eq!(store.get(10).unwrap(), solved(10, "blas_dot"));
        assert!(!store.get(20).unwrap().solved());
        assert!(store.get(99).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn last_writer_wins_and_identical_appends_are_skipped() {
        let path = tmp("supersede");
        {
            let store = LiftStore::open(&path).unwrap();
            store.append(failed(10, "blas_dot")).unwrap();
            store.append(solved(10, "blas_dot")).unwrap();
            // An exact repeat must not grow the log.
            store.append(solved(10, "blas_dot")).unwrap();
            assert_eq!(store.counters().appended, 2);
            assert_eq!(store.len(), 1);
        }
        let store = LiftStore::open(&path).unwrap();
        assert_eq!(store.counters().loaded, 1);
        assert_eq!(store.superseded_at_open(), 1);
        assert!(store.get(10).unwrap().solved(), "latest record wins");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_drops_superseded_records_only() {
        let path = tmp("compact");
        let store = LiftStore::open(&path).unwrap();
        for round in 0..4 {
            for key in 0..3u64 {
                let mut r = solved(key, &format!("bench{key}"));
                r.attempts = round; // distinct → really appended
                store.append(r).unwrap();
            }
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let answers: Vec<_> = (0..3).map(|k| store.get(k)).collect();
        let stats = store.compact().unwrap();
        assert_eq!(stats.records_before, 12);
        assert_eq!(stats.records_after, 3);
        assert!(stats.bytes_after < stats.bytes_before);
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        // No served answer changed.
        assert_eq!(answers, (0..3).map(|k| store.get(k)).collect::<Vec<_>>());
        // And the compacted log replays to the same index.
        let reopened = LiftStore::open(&path).unwrap();
        assert_eq!(reopened.counters().loaded, 3);
        assert_eq!(reopened.superseded_at_open(), 0);
        assert_eq!(answers, (0..3).map(|k| reopened.get(k)).collect::<Vec<_>>());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_check_compacts_only_when_superseded_dominate() {
        let path = tmp("stale");
        {
            let store = LiftStore::open(&path).unwrap();
            for n in 0..5u64 {
                let mut r = solved(1, "hot");
                r.attempts = n;
                store.append(r).unwrap();
            }
            store.append(solved(2, "cold")).unwrap();
        }
        let store = LiftStore::open(&path).unwrap();
        assert_eq!(store.superseded_at_open(), 4);
        assert_eq!(store.counters().loaded, 2);
        let stats = store.compact_if_stale().unwrap().expect("4 > 2 compacts");
        assert_eq!(stats.records_after, 2);
        // Freshly compacted: nothing stale anymore.
        let store = LiftStore::open(&path).unwrap();
        assert!(store.compact_if_stale().unwrap().is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_reports_dedup_and_rejects_non_finite() {
        let path = tmp("dedup-bool");
        let store = LiftStore::open(&path).unwrap();
        assert!(store.append(solved(10, "blas_dot")).unwrap());
        assert!(
            !store.append(solved(10, "blas_dot")).unwrap(),
            "identical repeat is the idempotent no-op peers rely on"
        );
        let mut nan = solved(11, "bad");
        nan.seconds = f64::NAN;
        let err = store.append(nan).unwrap_err();
        assert!(matches!(err, StoreError::NonFinite { .. }), "{err:?}");
        let mut inf = solved(12, "worse");
        inf.seconds = f64::INFINITY;
        assert!(store.append(inf).is_err());
        assert!(store.get(11).is_none(), "rejected records are not indexed");
        // The log is still healthy and replays without the bad records.
        drop(store);
        let store = LiftStore::open(&path).unwrap();
        assert_eq!(store.counters().loaded, 1);
        let _ = std::fs::remove_file(&path);
    }

    fn cleanup_rotated(path: &Path) {
        if let Some(dir) = path.parent() {
            let prefix = path.file_name().unwrap().to_str().unwrap().to_string();
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    if entry.file_name().to_str().is_some_and(|n| n.starts_with(&prefix)) {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
    }

    #[test]
    fn rotated_store_survives_restart_and_compacts_sealed_only() {
        let path = tmp("rotated");
        cleanup_rotated(&path);
        {
            // Small limit so a handful of records spans several segments.
            let store = LiftStore::open_with(&path, Some(256)).unwrap();
            for round in 0..4u64 {
                for key in 0..5u64 {
                    let mut r = solved(key, &format!("bench{key}"));
                    r.attempts = round;
                    store.append(r).unwrap();
                }
            }
        }
        // Plain open replays segments + live and collapses to 5 keys.
        let store = LiftStore::open(&path).unwrap();
        assert_eq!(store.counters().loaded, 5);
        assert_eq!(store.superseded_at_open(), 15);
        let answers: Vec<_> = (0..5).map(|k| store.get(k)).collect();
        drop(store);
        // Rotated reopen + compaction merges sealed data, leaves live alone.
        let store = LiftStore::open_with(&path, Some(256)).unwrap();
        let live_before = std::fs::read(&path).unwrap();
        let stats = store.compact().unwrap();
        assert!(stats.records_after < stats.records_before);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            live_before,
            "sealed compaction must not rewrite the live segment"
        );
        assert_eq!(answers, (0..5).map(|k| store.get(k)).collect::<Vec<_>>());
        drop(store);
        let reopened = LiftStore::open(&path).unwrap();
        assert_eq!(reopened.counters().loaded, 5);
        assert_eq!(answers, (0..5).map(|k| reopened.get(k)).collect::<Vec<_>>());
        cleanup_rotated(&path);
    }

    fn seg_files(path: &Path) -> usize {
        let dir = path.parent().unwrap();
        let prefix = format!("{}.seg-", path.file_name().unwrap().to_str().unwrap());
        std::fs::read_dir(dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_str().is_some_and(|n| n.starts_with(&prefix)))
            .count()
    }

    #[test]
    fn rotation_merges_sealed_segments_past_threshold() {
        let path = tmp("autocompact");
        cleanup_rotated(&path);
        {
            // Rotation every ~2 records, merge at 3 sealed segments:
            // the appends below cross the threshold several times.
            let store = LiftStore::open_with_compaction(&path, 256, 3).unwrap();
            for round in 0..4u64 {
                for key in 0..5u64 {
                    let mut r = solved(key, &format!("bench{key}"));
                    r.attempts = round;
                    store.append(r).unwrap();
                }
            }
            // Merges now run on the background worker; wait for it to
            // drain before inspecting counters and segment counts.
            store.flush_merges();
            assert!(
                store.counters().compactions >= 1,
                "threshold-crossing appends must have merged"
            );
            assert!(
                store.sealed_segments() < 3 && seg_files(&path) < 3,
                "segments stay below the threshold ({} on disk)",
                seg_files(&path)
            );
        }
        // No served answer changed: every key replays to its last write.
        let reopened = LiftStore::open(&path).unwrap();
        assert_eq!(reopened.counters().loaded, 5);
        for key in 0..5u64 {
            assert_eq!(reopened.get(key).unwrap().attempts, 3);
        }
        drop(reopened);
        // An over-segmented store opened with the rule armed is stale:
        // startup maintenance merges it even though superseded records
        // do not dominate here on their own.
        {
            let store = LiftStore::open_with(&path, Some(128)).unwrap();
            for key in 5..9u64 {
                store.append(solved(key, "fresh")).unwrap();
            }
        }
        assert!(seg_files(&path) >= 3, "precondition: fragmented again");
        let store = LiftStore::open_with_compaction(&path, 128, 3).unwrap();
        let stats = store.compact_if_stale().unwrap().expect("over-segmented");
        assert!(stats.records_after <= stats.records_before);
        assert_eq!(seg_files(&path), 0);
        assert_eq!(store.len(), 9);
        cleanup_rotated(&path);
    }

    #[test]
    fn appends_flow_while_background_merge_runs() {
        let path = tmp("bg-merge");
        cleanup_rotated(&path);
        {
            // Tiny rotation + a low threshold keep the background
            // worker busy while two appenders hammer the store — the
            // satellite case: no append ever waits on a merge, and
            // nothing is torn or lost.
            let store = LiftStore::open_with_compaction(&path, 256, 2).unwrap();
            std::thread::scope(|scope| {
                for worker in 0..2u64 {
                    let store = &store;
                    scope.spawn(move || {
                        for n in 0..40u64 {
                            let mut r = solved(worker * 1000 + n, "bg");
                            r.nodes = n;
                            store.append(r).unwrap();
                        }
                    });
                }
            });
            store.flush_merges();
            assert!(store.counters().compactions >= 1, "merges ran");
            assert!(
                store.sealed_segments() < 2,
                "flushed store is back under the threshold"
            );
            assert_eq!(store.len(), 80);
        }
        // Reopen: every append is durable exactly once, none torn.
        let reopened = LiftStore::open(&path).unwrap();
        assert_eq!(reopened.counters().loaded, 80);
        for worker in 0..2u64 {
            for n in 0..40u64 {
                assert_eq!(reopened.get(worker * 1000 + n).unwrap().nodes, n);
            }
        }
        cleanup_rotated(&path);
    }

    #[test]
    fn export_documents_parse_back_into_records() {
        let records = vec![solved(10, "blas_dot"), failed(20, "sa_4d_add")];
        // Rebuild exactly what `store_tool export` prints.
        let mut text = String::from("{\"kind\":\"lift_outcomes\",\"records\":[\n");
        for (n, record) in records.iter().enumerate() {
            text.push_str(&record.to_json().to_line());
            if n + 1 < records.len() {
                text.push(',');
            }
            text.push('\n');
        }
        text.push_str("]}\n");
        assert_eq!(parse_export(&text).unwrap(), records);
        assert!(parse_export("not json").is_err());
        assert!(parse_export("{\"kind\":\"oracle_fixture\",\"records\":[]}").is_err());
        assert!(parse_export("{\"kind\":\"lift_outcomes\"}").is_err());
        assert!(
            parse_export("{\"kind\":\"lift_outcomes\",\"records\":[{}]}").is_err(),
            "records must decode"
        );
    }

    #[test]
    fn concurrent_appends_are_safe() {
        let path = tmp("concurrent");
        let store = LiftStore::open(&path).unwrap();
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let store = &store;
                scope.spawn(move || {
                    for n in 0..25u64 {
                        store.append(solved(worker * 100 + n, "par")).unwrap();
                    }
                });
            }
        });
        assert_eq!(store.len(), 100);
        drop(store);
        let reopened = LiftStore::open(&path).unwrap();
        assert_eq!(reopened.counters().loaded, 100, "all appends durable");
        let _ = std::fs::remove_file(&path);
    }
}
