//! Operations tooling for gtl_store log files.
//!
//! ```text
//! store_tool inspect PATH   # header, record counts, recovery state
//! store_tool compact PATH   # drop superseded records (atomic rewrite)
//! store_tool export PATH    # dump live records as one JSON document
//! ```
//!
//! Works on every log kind: lift-outcome stores (`lift_server --store`,
//! `batch_suite --store`) and oracle fixture logs (`record:PATH`).
//! `export` turns a fixture log back into the hand-writable
//! `{"version":1,"entries":{…}}` document that `replay:PATH` accepts.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::exit;

use gtl_store::{Json, JsonlLog, LiftRecord, LiftStore, FIXTURE_LOG_KIND, LIFT_LOG_KIND};

const USAGE: &str = "usage: store_tool inspect|compact|export PATH";

fn fail(message: &str) -> ! {
    eprintln!("store_tool: {message}");
    exit(2);
}

/// The dedup key under which a record supersedes earlier ones, per log
/// kind. `None` means the kind has no supersession (all records live).
fn dedup_key(kind: &str, record: &Json) -> Option<String> {
    match kind {
        LIFT_LOG_KIND => record
            .get("key")
            .and_then(Json::as_str)
            .map(str::to_string),
        FIXTURE_LOG_KIND => {
            let label = record.get("label").and_then(Json::as_str)?;
            let round = record.get("round").and_then(Json::as_u64)?;
            Some(format!("{label}\u{0}{round}"))
        }
        _ => None,
    }
}

/// Collapses the record list to the live set (last writer wins per
/// dedup key), preserving first-seen order of keys.
fn live_records(kind: &str, records: &[Json]) -> Vec<Json> {
    let mut order: Vec<String> = Vec::new();
    let mut by_key: BTreeMap<String, Json> = BTreeMap::new();
    let mut keyless: Vec<Json> = Vec::new();
    for record in records {
        match dedup_key(kind, record) {
            Some(key) => {
                if by_key.insert(key.clone(), record.clone()).is_none() {
                    order.push(key);
                }
            }
            None => keyless.push(record.clone()),
        }
    }
    let mut live: Vec<Json> = order
        .into_iter()
        .map(|key| by_key.remove(&key).expect("keyed above"))
        .collect();
    live.extend(keyless);
    live
}

fn inspect(path: &Path) {
    let (kind, loaded) = JsonlLog::read(path).unwrap_or_else(|e| fail(&e.to_string()));
    let live = live_records(&kind, &loaded.records);
    let superseded = loaded.records.len() - live.len();
    println!("{}: kind {kind}", path.display());
    println!("  records: {} ({} live, {superseded} superseded)", loaded.records.len(), live.len());
    if loaded.sealed_files > 0 {
        println!("  sealed files: {} (snapshot/segments replayed before the live log)", loaded.sealed_files);
    }
    if loaded.recovery.truncated_tail {
        println!(
            "  torn tail: {} trailing bytes are not a complete record (dropped on next open)",
            loaded.recovery.dropped_bytes
        );
    }
    if kind == LIFT_LOG_KIND {
        let mut solved = 0usize;
        let mut failed = 0usize;
        for record in &live {
            match LiftRecord::from_json(record) {
                Ok(r) if r.solved() => solved += 1,
                Ok(_) => failed += 1,
                Err(e) => fail(&format!("malformed lift record: {e}")),
            }
        }
        println!("  outcomes: {solved} solved, {failed} failed");
    }
}

fn compact(path: &Path) {
    // `LiftStore::open` / `JsonlLog::open` recover a torn tail as a
    // side effect, so compaction also heals the file.
    let (kind, _) = JsonlLog::read(path).unwrap_or_else(|e| fail(&e.to_string()));
    if kind == LIFT_LOG_KIND {
        let store = LiftStore::open(path).unwrap_or_else(|e| fail(&e.to_string()));
        let stats = store.compact().unwrap_or_else(|e| fail(&e.to_string()));
        println!(
            "{}: {} records ({} bytes) -> {} records ({} bytes)",
            path.display(),
            stats.records_before,
            stats.bytes_before,
            stats.records_after,
            stats.bytes_after
        );
        return;
    }
    let bytes_before = std::fs::metadata(path).map_or(0, |m| m.len());
    let (log, loaded) = JsonlLog::open(path, &kind).unwrap_or_else(|e| fail(&e.to_string()));
    let live = live_records(&kind, &loaded.records);
    log.rewrite(&live).unwrap_or_else(|e| fail(&e.to_string()));
    let bytes_after = std::fs::metadata(path).map_or(0, |m| m.len());
    println!(
        "{}: {} records ({bytes_before} bytes) -> {} records ({bytes_after} bytes)",
        path.display(),
        loaded.records.len(),
        live.len()
    );
}

fn export(path: &Path) {
    let (kind, loaded) = JsonlLog::read(path).unwrap_or_else(|e| fail(&e.to_string()));
    let live = live_records(&kind, &loaded.records);
    if kind == FIXTURE_LOG_KIND {
        // Reconstruct the hand-writable replay document.
        let mut entries: BTreeMap<String, Vec<Vec<String>>> = BTreeMap::new();
        for record in &live {
            let (Some(label), Some(round), Some(lines)) = (
                record.get("label").and_then(Json::as_str),
                record.get("round").and_then(Json::as_u64),
                record.get("lines").and_then(Json::as_arr),
            ) else {
                fail("malformed fixture record");
            };
            let rounds = entries.entry(label.to_string()).or_default();
            while rounds.len() <= round as usize {
                rounds.push(Vec::new());
            }
            rounds[round as usize] = lines
                .iter()
                .map(|l| l.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()
                .unwrap_or_else(|| fail("fixture lines must be strings"));
        }
        let doc = Json::obj([
            ("version", Json::u64(1)),
            (
                "entries",
                Json::Obj(
                    entries
                        .into_iter()
                        .map(|(label, rounds)| {
                            (
                                label,
                                Json::Arr(
                                    rounds
                                        .into_iter()
                                        .map(|lines| {
                                            Json::Arr(lines.into_iter().map(Json::Str).collect())
                                        })
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{doc}");
        return;
    }
    println!("{{\"kind\":{},\"records\":[", Json::str(kind.as_str()));
    for (n, record) in live.iter().enumerate() {
        let comma = if n + 1 < live.len() { "," } else { "" };
        println!("{record}{comma}");
    }
    println!("]}}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, path) = match args.as_slice() {
        [command, path] => (command.as_str(), Path::new(path)),
        [help] if help == "--help" || help == "-h" => {
            println!("{USAGE}");
            exit(0);
        }
        _ => fail(USAGE),
    };
    match command {
        "inspect" => inspect(path),
        "compact" => compact(path),
        "export" => export(path),
        other => fail(&format!("unknown command `{other}`\n{USAGE}")),
    }
}
