//! Persistent lift store: the crash-tolerant persistence subsystem of
//! the Guided Tensor Lifting reproduction.
//!
//! The pipeline (oracle → learned PCFG → enumerative search → verify)
//! is expensive per lift — which is exactly why the serving layer
//! caches results and the oracle layer records transcripts. This crate
//! makes both durable with one std-only mechanism:
//!
//! - [`JsonlLog`] — a versioned, append-only JSON-lines log. Each
//!   append is a single `write` of one full line, so a crash can only
//!   tear the final record; `open` recovers by truncating the torn
//!   tail, and corruption anywhere else fails with a typed
//!   [`StoreError`] (never a panic, never silent data loss).
//! - [`LiftStore`] — completed lift outcomes keyed by the serving
//!   layer's normalized request hash, with last-writer-wins indexing
//!   and atomic offline [compaction](LiftStore::compact). `lift_server
//!   --store` answers repeat lifts across restarts from it with zero
//!   search attempts; `batch_suite --store` warm-starts suite runs.
//! - [`json`] — the workspace's one std-only JSON implementation,
//!   shared with the serving wire protocol and the oracle fixtures.
//!
//! The `store_tool` binary inspects, compacts and exports store files
//! offline.
//!
//! # Example
//!
//! ```
//! use gtl_store::{LiftRecord, LiftStore};
//!
//! let path = std::env::temp_dir().join(format!("doc-store-{}.jsonl", std::process::id()));
//! # let _ = std::fs::remove_file(&path);
//! let store = LiftStore::open(&path).unwrap();
//! store.append(LiftRecord {
//!     key: 0xfeed,
//!     label: "blas_dot".into(),
//!     solution: Some("out = a(i) * b(i)".into()),
//!     reason: None,
//!     detail: None,
//!     attempts: 12,
//!     nodes: 90,
//!     seconds: 0.01,
//! }).unwrap();
//! drop(store);
//!
//! // A fresh process (or a restarted server) sees the same outcome.
//! let store = LiftStore::open(&path).unwrap();
//! assert_eq!(store.get(0xfeed).unwrap().solution.as_deref(), Some("out = a(i) * b(i)"));
//! # let _ = std::fs::remove_file(&path);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod lift;
pub mod log;

pub use json::{parse, Json, JsonError};
pub use lift::{
    parse_export, CompactionStats, LiftRecord, LiftStore, StoreCounters, LIFT_LOG_KIND,
};
pub use log::{
    is_log_file, is_log_header, JsonlLog, LoadedLog, Recovery, SealedCompaction, StoreError,
    FIXTURE_LOG_KIND, STORE_VERSION,
};
