//! The crash-tolerant append-only JSON-lines log underneath every
//! store in the workspace.
//!
//! A log file is one header line followed by one JSON object per
//! record:
//!
//! ```text
//! {"gtl_store":1,"kind":"lift_outcomes"}
//! {"attempts":57,"key":"00a1b2…","label":"blas_dot",…}
//! {"attempts":3,"key":"77ffe0…","label":"blas_gemv",…}
//! ```
//!
//! The header pins the on-disk format version and the record *kind*
//! (which store family wrote the file), so a log can never be replayed
//! into the wrong index. Appends are one `write` each — a crash can
//! only tear the final record, and [`JsonlLog::open`] recovers from
//! exactly that: a torn tail (invalid JSON, or invalid UTF-8 confined
//! to the last line) is truncated away and reported in [`Recovery`],
//! never silently kept and never allowed to poison later appends.
//! Corruption anywhere *before* the tail cannot come from a torn write,
//! so it fails loudly with a typed [`StoreError`] instead of dropping
//! records.
//!
//! # Segment rotation
//!
//! A log opened with [`JsonlLog::open_rotating`] seals its live file
//! once it grows past `rotate_at_bytes`: the file is renamed to
//! `PATH.seg-NNNNNN` and a fresh live log (header only) is started.
//! [`JsonlLog::open`] replays a segmented log as snapshot (`PATH.snap`,
//! if present) → sealed segments in numeric order → live file; every
//! piece carries the same version/kind header, so the existing
//! sniffing and replay machinery applies file-by-file. Compaction of a
//! segmented log ([`JsonlLog::compact_sealed`]) merges the snapshot and
//! sealed segments into a new snapshot via temp-file + rename and
//! deletes the segments — the live file is **never rewritten**, so
//! compaction cannot race an append and the single-writer crash
//! contract holds unchanged. The merge itself runs off the append
//! path: it captures the immutable sealed set, releases the append
//! lock, and merges while writes keep flowing.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::{parse, Json};

/// The on-disk format version this build reads and writes.
pub const STORE_VERSION: u64 = 1;

/// A typed persistence failure. No store API panics on bad data: every
/// unusable file or record surfaces as one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The filesystem said no (open, read, write, rename).
    Io {
        /// The file involved.
        path: String,
        /// The underlying error, rendered.
        message: String,
    },
    /// The version header is missing, unparseable, or names a different
    /// format version or record kind than the caller expects.
    Version {
        /// The file involved.
        path: String,
        /// What was wrong with the header.
        message: String,
    },
    /// A record *before* the tail failed to parse — externally corrupted
    /// data, not a torn write, so nothing is dropped and the open fails.
    Corrupt {
        /// The file involved.
        path: String,
        /// 1-based line number of the offending record.
        line: usize,
        /// What failed to parse.
        message: String,
    },
    /// A structurally valid JSON line did not have the record shape its
    /// store expects.
    Record {
        /// The file involved.
        path: String,
        /// 1-based line number of the offending record.
        line: usize,
        /// Which member was missing or mistyped.
        message: String,
    },
    /// A record offered for appending carried a non-finite number
    /// (NaN/∞). JSON cannot represent those — the serializer would
    /// degrade them to `null` and the store would fail typed decoding
    /// at the *next* open — so the append is refused up front instead.
    NonFinite {
        /// The file involved.
        path: String,
        /// Which member was non-finite.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "store {path}: {message}"),
            StoreError::Version { path, message } => {
                write!(f, "store {path}: bad header: {message}")
            }
            StoreError::Corrupt {
                path,
                line,
                message,
            } => write!(f, "store {path}: corrupt record at line {line}: {message}"),
            StoreError::Record {
                path,
                line,
                message,
            } => write!(f, "store {path}: malformed record at line {line}: {message}"),
            StoreError::NonFinite { path, message } => {
                write!(f, "store {path}: refusing non-finite number: {message}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// What [`JsonlLog::open`] had to do to make the file usable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Whether a torn tail record was dropped (the file was truncated
    /// to the last complete record).
    pub truncated_tail: bool,
    /// Bytes removed by the truncation.
    pub dropped_bytes: u64,
}

fn io_err(path: &Path, e: impl fmt::Display) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Builds the header line for a log of `kind`.
fn header(kind: &str) -> Json {
    Json::obj([
        ("gtl_store", Json::u64(STORE_VERSION)),
        ("kind", Json::str(kind)),
    ])
}

/// Checks a parsed first line against the expected header.
fn check_header(path: &Path, doc: &Json, kind: &str) -> Result<(), StoreError> {
    let version_err = |message: String| StoreError::Version {
        path: path.display().to_string(),
        message,
    };
    let version = doc
        .get("gtl_store")
        .and_then(Json::as_u64)
        .ok_or_else(|| version_err("missing `gtl_store` version member".into()))?;
    if version != STORE_VERSION {
        return Err(version_err(format!(
            "format version {version}, this build reads {STORE_VERSION}"
        )));
    }
    let found = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| version_err("missing `kind` member".into()))?;
    if found != kind {
        return Err(version_err(format!(
            "record kind `{found}`, expected `{kind}`"
        )));
    }
    Ok(())
}

/// Whether `first_line` is a gtl_store log header (any kind, any
/// version) — the sniff used to tell a log from a legacy one-document
/// JSON file sharing the same path conventions.
pub fn is_log_header(first_line: &str) -> bool {
    parse(first_line.trim())
        .ok()
        .is_some_and(|doc| doc.get("gtl_store").is_some())
}

/// [`is_log_header`] over raw file bytes: sniffs the first line only,
/// which is the sole part of a log required to be valid UTF-8 — a torn
/// multi-byte character in the tail must not defeat the sniff.
pub fn is_log_file(bytes: &[u8]) -> bool {
    let first = bytes.split(|b| *b == b'\n').next().unwrap_or_default();
    std::str::from_utf8(first).is_ok_and(is_log_header)
}

/// The log kind under which oracle fixture responses are recorded.
/// Shared by `gtl_oracle`'s recording store and `store_tool`'s
/// fixture handling so the spelling cannot drift (lift outcomes use
/// [`crate::LIFT_LOG_KIND`]).
pub const FIXTURE_LOG_KIND: &str = "oracle_fixture";

/// One open append-only log: the durable half of every store.
///
/// `append` is `&self` (internally locked), so one log can be shared by
/// concurrent writers; each append is a single `write` call of one full
/// line, which is what makes tail-only tearing the sole crash mode.
#[derive(Debug)]
pub struct JsonlLog {
    path: PathBuf,
    kind: String,
    /// Bytes at which the live file is sealed into a segment; `None`
    /// disables rotation (the live file grows without bound).
    rotate_at: Option<u64>,
    live: Mutex<Live>,
    /// Serializes [`JsonlLog::compact_sealed`] calls against each other
    /// (they share one snapshot temp file) *without* blocking appends:
    /// the merge holds this lock for its whole run but takes `live`
    /// only for two short bookkeeping windows.
    merge_guard: Mutex<()>,
}

/// The mutable half of a log: the live file handle plus the rotation
/// bookkeeping that must stay consistent with it.
#[derive(Debug)]
struct Live {
    file: File,
    /// Current length of the live file, maintained across appends so
    /// rotation does not stat the file on every write.
    bytes: u64,
    /// The number the next sealed segment will take.
    next_seg: u64,
    /// Whether any sealed data (snapshot or segments) exists on disk.
    sealed: bool,
    /// Sealed `.seg-NNNNNN` files currently on disk (the snapshot is
    /// not counted) — what a store consults to decide when the sealed
    /// half has fragmented enough to be worth merging.
    segments: usize,
}

/// The records loaded by [`JsonlLog::open`], plus recovery facts.
#[derive(Debug)]
pub struct LoadedLog {
    /// Every good record, in replay order: snapshot, sealed segments,
    /// then the live file (headers excluded).
    pub records: Vec<Json>,
    /// What recovery had to do.
    pub recovery: Recovery,
    /// How many sealed files (snapshot + segments) preceded the live
    /// file in the replay; `0` for an unsegmented log.
    pub sealed_files: usize,
}

/// What [`JsonlLog::compact_sealed`] did to the sealed half of a log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SealedCompaction {
    /// Records read from the snapshot + sealed segments.
    pub records_before: usize,
    /// Records written to the merged snapshot.
    pub records_after: usize,
    /// Bytes of sealed files before the merge.
    pub bytes_before: u64,
    /// Bytes of the merged snapshot.
    pub bytes_after: u64,
}

/// `PATH.snap` — the merged snapshot a segmented log compacts into.
fn snap_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".snap");
    PathBuf::from(name)
}

/// `PATH.seg-NNNNNN` — a sealed (immutable) segment of a rotated log.
fn seg_path(path: &Path, n: u64) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".seg-{n:06}"));
    PathBuf::from(name)
}

/// The sealed on-disk pieces of a rotated log: the snapshot (if any)
/// and the numbered segments.
type SealedFiles = (Option<PathBuf>, Vec<(u64, PathBuf)>);

/// Lists the sealed files for a log at `path`: the snapshot (if any)
/// and the segments in ascending numeric order.
fn sealed_files(path: &Path) -> Result<SealedFiles, StoreError> {
    let snap = snap_path(path);
    let snap = snap.exists().then_some(snap);
    let dir = if path.parent().is_some_and(|p| !p.as_os_str().is_empty()) {
        path.parent().expect("checked above").to_path_buf()
    } else {
        PathBuf::from(".")
    };
    let Some(file_name) = path.file_name().and_then(|n| n.to_str()) else {
        return Ok((snap, Vec::new()));
    };
    let prefix = format!("{file_name}.seg-");
    let mut segments = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        // A missing parent directory means no segments (the live-file
        // open will surface the real error if the path is unusable).
        Err(_) => return Ok((snap, Vec::new())),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err(&dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(number) = name.strip_prefix(&prefix) {
            if let Ok(n) = number.parse::<u64>() {
                segments.push((n, entry.path()));
            }
        }
    }
    segments.sort_unstable();
    Ok((snap, segments))
}

impl JsonlLog {
    /// Opens (or creates) the log at `path` for kind `kind`, replaying
    /// every record and recovering from a torn tail.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, [`StoreError::Version`]
    /// on a header mismatch, [`StoreError::Corrupt`] when a record
    /// before the tail does not parse.
    pub fn open(path: impl Into<PathBuf>, kind: &str) -> Result<(JsonlLog, LoadedLog), StoreError> {
        Self::open_impl(path.into(), kind, None, None)
    }

    /// [`JsonlLog::open`] with segment rotation enabled: once the live
    /// file grows past `rotate_at_bytes` it is sealed into a
    /// `PATH.seg-NNNNNN` segment and a fresh live file is started. A
    /// log rotated here replays fine through plain [`JsonlLog::open`]
    /// later (rotation is a property of the writer, not the format).
    ///
    /// # Errors
    ///
    /// As [`JsonlLog::open`].
    pub fn open_rotating(
        path: impl Into<PathBuf>,
        kind: &str,
        rotate_at_bytes: u64,
    ) -> Result<(JsonlLog, LoadedLog), StoreError> {
        Self::open_impl(path.into(), kind, None, Some(rotate_at_bytes.max(1)))
    }

    /// [`JsonlLog::open`], but over `bytes` the caller already read
    /// from `path` (typically for a format sniff — the open should not
    /// cost a second full-file read). `bytes` must be the live file's
    /// entire current contents, and the caller must be the only
    /// writer, as with every open.
    ///
    /// # Errors
    ///
    /// As [`JsonlLog::open`].
    pub fn open_loaded(
        path: impl Into<PathBuf>,
        kind: &str,
        bytes: &[u8],
    ) -> Result<(JsonlLog, LoadedLog), StoreError> {
        Self::open_impl(path.into(), kind, Some(bytes), None)
    }

    /// The one open path: replays sealed files (snapshot + segments),
    /// then opens the live file — creating it fresh when missing or
    /// empty, truncating a torn tail otherwise.
    fn open_impl(
        path: PathBuf,
        kind: &str,
        live_bytes: Option<&[u8]>,
        rotate_at: Option<u64>,
    ) -> Result<(JsonlLog, LoadedLog), StoreError> {
        let (snap, segments) = sealed_files(&path)?;
        let mut records = Vec::new();
        let mut recovery = Recovery::default();
        let sealed_count = usize::from(snap.is_some()) + segments.len();
        for sealed in snap.iter().chain(segments.iter().map(|(_, p)| p)) {
            let bytes = std::fs::read(sealed).map_err(|e| io_err(sealed, e))?;
            // Sealed files are immutable, so they are replayed
            // read-only; a torn tail (a crash sealed mid-append bytes)
            // is reported but never truncated away on disk.
            let replayed = replay(sealed, &bytes, kind)?;
            recovery.truncated_tail |= replayed.recovery.truncated_tail;
            recovery.dropped_bytes += replayed.recovery.dropped_bytes;
            records.extend(replayed.records);
        }
        let next_seg = segments.last().map_or(1, |(n, _)| n + 1);
        let sealed = sealed_count > 0;

        // A missing live file starts fresh; so does an existing
        // zero-byte file (a crash between creation and the header
        // write, or an operator `touch`) — there is nothing durable to
        // lose there, so recover by writing a fresh header. A crash
        // between a rotation's rename and its fresh-header write lands
        // here too, with the sealed records intact above.
        let owned_bytes;
        let live_bytes = match live_bytes {
            Some(bytes) => bytes,
            None => {
                if std::fs::metadata(&path).map_or(true, |meta| meta.len() == 0) {
                    owned_bytes = Vec::new();
                } else {
                    owned_bytes = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
                }
                &owned_bytes
            }
        };
        if live_bytes.is_empty() {
            let mut file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&path)
                .map_err(|e| io_err(&path, e))?;
            let head = format!("{}\n", header(kind));
            file.write_all(head.as_bytes())
                .map_err(|e| io_err(&path, e))?;
            let log = JsonlLog {
                path,
                kind: kind.to_string(),
                rotate_at,
                live: Mutex::new(Live {
                    file,
                    bytes: head.len() as u64,
                    next_seg,
                    sealed,
                    segments: segments.len(),
                }),
                merge_guard: Mutex::new(()),
            };
            return Ok((
                log,
                LoadedLog {
                    records,
                    recovery,
                    sealed_files: sealed_count,
                },
            ));
        }

        let replayed = replay(&path, live_bytes, kind)?;
        // A recovered tail: cut the file back to the last durable byte
        // so the next append starts a fresh line instead of splicing
        // into garbage.
        if replayed.good_end != live_bytes.len() as u64 {
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err(&path, e))?;
            file.set_len(replayed.good_end)
                .map_err(|e| io_err(&path, e))?;
        }
        let mut file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        let mut live_len = replayed.good_end;
        if replayed.missing_newline {
            // The final record parsed but lacked its newline (hand
            // editing); terminate it so the next append cannot splice.
            file.write_all(b"\n").map_err(|e| io_err(&path, e))?;
            live_len += 1;
        }
        recovery.truncated_tail |= replayed.recovery.truncated_tail;
        recovery.dropped_bytes += replayed.recovery.dropped_bytes;
        records.extend(replayed.records);
        Ok((
            JsonlLog {
                path,
                kind: kind.to_string(),
                rotate_at,
                live: Mutex::new(Live {
                    file,
                    bytes: live_len,
                    next_seg,
                    sealed,
                    segments: segments.len(),
                }),
                merge_guard: Mutex::new(()),
            },
            LoadedLog {
                records,
                recovery,
                sealed_files: sealed_count,
            },
        ))
    }

    /// Creates (or atomically replaces) a log at `path` holding
    /// `records`, via temp file + rename — the migration primitive for
    /// converting legacy one-document files into logs without a window
    /// where the data exists in neither format.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when any step fails; an existing file at
    /// `path` is untouched in that case.
    pub fn create(
        path: impl Into<PathBuf>,
        kind: &str,
        records: &[Json],
    ) -> Result<JsonlLog, StoreError> {
        let path = path.into();
        let tmp = path.with_extension("tmp");
        {
            let mut out = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err(&tmp, e))?;
            let mut text = format!("{}\n", header(kind));
            for record in records {
                text.push_str(&record.to_line());
                text.push('\n');
            }
            out.write_all(text.as_bytes()).map_err(|e| io_err(&tmp, e))?;
            out.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        let bytes = file.metadata().map_err(|e| io_err(&path, e))?.len();
        Ok(JsonlLog {
            path,
            kind: kind.to_string(),
            rotate_at: None,
            live: Mutex::new(Live {
                file,
                bytes,
                next_seg: 1,
                sealed: false,
                segments: 0,
            }),
            merge_guard: Mutex::new(()),
        })
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The record kind in this log's header.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Appends one record as a single line (one `write` call — the
    /// crash-tolerance contract).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the write fails; the in-memory caller
    /// state is then ahead of disk, which is safe (re-appending later
    /// supersedes cleanly).
    pub fn append(&self, record: &Json) -> Result<(), StoreError> {
        let line = format!("{}\n", record.to_line());
        let mut live = self.live.lock().expect("log file poisoned");
        live.file
            .write_all(line.as_bytes())
            .map_err(|e| io_err(&self.path, e))?;
        live.bytes += line.len() as u64;
        if self.rotate_at.is_some_and(|limit| live.bytes >= limit) {
            self.rotate_locked(&mut live)?;
        }
        Ok(())
    }

    /// Seals the live file as the next segment and starts a fresh one.
    /// A crash between the rename and the fresh header is recovered by
    /// the next open (sealed records replay; a new live file is
    /// created), so rotation adds no new data-loss window.
    fn rotate_locked(&self, live: &mut Live) -> Result<(), StoreError> {
        let seg = seg_path(&self.path, live.next_seg);
        std::fs::rename(&self.path, &seg).map_err(|e| io_err(&self.path, e))?;
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, e))?;
        let head = format!("{}\n", header(&self.kind));
        file.write_all(head.as_bytes())
            .map_err(|e| io_err(&self.path, e))?;
        live.file = file;
        live.bytes = head.len() as u64;
        live.next_seg += 1;
        live.sealed = true;
        live.segments += 1;
        Ok(())
    }

    /// Whether sealed data (a snapshot or segments) exists for this
    /// log — the signal that compaction must go through
    /// [`JsonlLog::compact_sealed`] rather than [`JsonlLog::rewrite`].
    pub fn has_sealed(&self) -> bool {
        self.live.lock().expect("log file poisoned").sealed
    }

    /// Sealed `.seg-NNNNNN` files currently on disk for this log (the
    /// merged snapshot, if any, is not counted). Rotation grows this by
    /// one per seal; [`JsonlLog::compact_sealed`] resets it to zero.
    pub fn sealed_segments(&self) -> usize {
        self.live.lock().expect("log file poisoned").segments
    }

    /// Compacts the sealed half of a segmented log: reads the snapshot
    /// and every sealed segment, passes the records through `merge`
    /// (the store's dedup policy), writes the result as a fresh
    /// snapshot via temp-file + rename, and deletes the segments. The
    /// live file is never touched, so records appended after the merge
    /// policy ran still supersede at the next replay.
    ///
    /// Appends proceed concurrently: the merge captures the sealed
    /// file set under the `live` lock, then releases it for the whole
    /// read → merge → write span. Sealed files are immutable, so the
    /// captured set cannot change underneath the merge; a rotation
    /// that seals a *new* segment mid-merge is simply not part of this
    /// compaction — it survives on disk (replaying after the snapshot,
    /// so last-writer-wins ordering holds) and is picked up by the
    /// next one. Concurrent `compact_sealed` calls serialize on a
    /// dedicated merge lock, never on the append path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure; the pre-existing
    /// sealed files are intact in that case.
    pub fn compact_sealed(
        &self,
        merge: impl FnOnce(Vec<Json>) -> Vec<Json>,
    ) -> Result<SealedCompaction, StoreError> {
        let _merging = self.merge_guard.lock().expect("merge guard poisoned");
        // Capture the sealed set under the live lock so a concurrent
        // rotation cannot rename the live file into a segment between
        // the directory scan and the snapshot of `segments`.
        let (snap, segments) = {
            let _live = self.live.lock().expect("log file poisoned");
            sealed_files(&self.path)?
        };
        let mut records = Vec::new();
        let mut bytes_before = 0u64;
        for sealed in snap.iter().chain(segments.iter().map(|(_, p)| p)) {
            let bytes = std::fs::read(sealed).map_err(|e| io_err(sealed, e))?;
            bytes_before += bytes.len() as u64;
            records.extend(replay(sealed, &bytes, &self.kind)?.records);
        }
        let records_before = records.len();
        let merged = merge(records);
        let snap = snap_path(&self.path);
        let tmp = {
            let mut name = snap.as_os_str().to_os_string();
            name.push(".tmp");
            PathBuf::from(name)
        };
        {
            let mut out = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err(&tmp, e))?;
            let mut text = format!("{}\n", header(&self.kind));
            for record in &merged {
                text.push_str(&record.to_line());
                text.push('\n');
            }
            out.write_all(text.as_bytes()).map_err(|e| io_err(&tmp, e))?;
            out.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, &snap).map_err(|e| io_err(&snap, e))?;
        for (_, seg) in &segments {
            // A segment surviving a failed delete is harmless: its
            // records are already in the snapshot, and the store-level
            // dedup collapses the duplicates at the next open.
            let _ = std::fs::remove_file(seg);
        }
        let mut live = self.live.lock().expect("log file poisoned");
        live.sealed = true;
        // Only the captured segments were merged; any sealed mid-merge
        // are still on disk and still counted.
        live.segments = live.segments.saturating_sub(segments.len());
        drop(live);
        let bytes_after = std::fs::metadata(&snap).map_or(0, |m| m.len());
        Ok(SealedCompaction {
            records_before,
            records_after: merged.len(),
            bytes_before,
            bytes_after,
        })
    }

    /// Atomically replaces the log's *entire* contents with `records`
    /// (write to a temp file, rename over) — the whole-log compaction
    /// primitive for unsegmented logs. Any snapshot or sealed segments
    /// are deleted afterwards, since `records` supersedes everything.
    /// The append handle is re-pointed at the new file, so the log
    /// stays usable. Segmented stores prefer
    /// [`JsonlLog::compact_sealed`], which leaves the live file alone.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when any step fails; the original file is
    /// untouched in that case.
    pub fn rewrite(&self, records: &[Json]) -> Result<(), StoreError> {
        let mut live = self.live.lock().expect("log file poisoned");
        let tmp = self.path.with_extension("tmp");
        {
            let mut out = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err(&tmp, e))?;
            let mut text = format!("{}\n", header(&self.kind));
            for record in records {
                text.push_str(&record.to_line());
                text.push('\n');
            }
            out.write_all(text.as_bytes()).map_err(|e| io_err(&tmp, e))?;
            out.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, e))?;
        live.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, e))?;
        live.bytes = live
            .file
            .metadata()
            .map_err(|e| io_err(&self.path, e))?
            .len();
        // The new live file holds everything; sealed leftovers would
        // replay stale records ahead of it, so they go.
        let (snap, segments) = sealed_files(&self.path)?;
        if let Some(snap) = snap {
            std::fs::remove_file(&snap).map_err(|e| io_err(&snap, e))?;
        }
        for (_, seg) in &segments {
            std::fs::remove_file(seg).map_err(|e| io_err(seg, e))?;
        }
        live.sealed = false;
        live.segments = 0;
        Ok(())
    }

    /// Reads a log without expecting a particular kind (the
    /// `store_tool` entry point). Returns the kind named in the header
    /// and the loaded records — snapshot and sealed segments included,
    /// in replay order; never modifies any file.
    ///
    /// # Errors
    ///
    /// As [`JsonlLog::open`], plus [`StoreError::Io`] for a missing
    /// file.
    pub fn read(path: &Path) -> Result<(String, LoadedLog), StoreError> {
        let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
        let (kind, mut loaded) = Self::read_bytes(path, &bytes)?;
        let (snap, segments) = sealed_files(path)?;
        let mut records = Vec::new();
        for sealed in snap.iter().chain(segments.iter().map(|(_, p)| p)) {
            let bytes = std::fs::read(sealed).map_err(|e| io_err(sealed, e))?;
            let replayed = replay(sealed, &bytes, &kind)?;
            loaded.recovery.truncated_tail |= replayed.recovery.truncated_tail;
            loaded.recovery.dropped_bytes += replayed.recovery.dropped_bytes;
            records.extend(replayed.records);
            loaded.sealed_files += 1;
        }
        records.append(&mut loaded.records);
        loaded.records = records;
        Ok((kind, loaded))
    }

    /// [`JsonlLog::read`], but over `bytes` the caller already read
    /// from `path` (`path` is used for error messages only).
    ///
    /// # Errors
    ///
    /// As [`JsonlLog::read`].
    pub fn read_bytes(path: &Path, bytes: &[u8]) -> Result<(String, LoadedLog), StoreError> {
        let first = bytes.split(|b| *b == b'\n').next().unwrap_or_default();
        let kind = std::str::from_utf8(first)
            .ok()
            .and_then(|line| parse(line.trim()).ok())
            .and_then(|doc| doc.get("kind").and_then(Json::as_str).map(str::to_string))
            .ok_or_else(|| StoreError::Version {
                path: path.display().to_string(),
                message: "missing or unparseable header line".into(),
            })?;
        let replayed = replay(path, bytes, &kind)?;
        Ok((
            kind,
            LoadedLog {
                records: replayed.records,
                recovery: replayed.recovery,
                sealed_files: 0,
            },
        ))
    }
}

/// What [`replay`] found in a log's bytes.
struct Replayed {
    /// Every good record, in append order.
    records: Vec<Json>,
    /// Byte offset of the end of the last durable record — the length
    /// the file should be truncated to when a torn tail follows it.
    good_end: u64,
    /// The recovery report.
    recovery: Recovery,
    /// The final record parsed but had no trailing newline; the caller
    /// must terminate it before appending.
    missing_newline: bool,
}

/// Replays log bytes: validates the header, parses every record, and
/// classifies failures as recoverable tail tearing vs hard corruption.
/// Pure — never touches the filesystem.
fn replay(path: &Path, bytes: &[u8], kind: &str) -> Result<Replayed, StoreError> {
    // Split into segments at newlines, keeping byte offsets. The final
    // segment may be unterminated (that is the torn-tail case).
    let mut segments: Vec<(usize, &[u8], bool)> = Vec::new(); // (start, bytes, terminated)
    let mut start = 0;
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'\n' {
            segments.push((start, &bytes[start..i], true));
            start = i + 1;
        }
    }
    if start < bytes.len() {
        segments.push((start, &bytes[start..], false));
    }

    // No bytes at all: `JsonlLog::open` recovers a zero-byte file by
    // rewriting a fresh header before replaying, so reaching here
    // empty-handed means a read-only caller (`JsonlLog::read`) that
    // cannot repair the file — a typed error.
    let Some((_, header_bytes, header_terminated)) = segments.first().copied() else {
        return Err(StoreError::Version {
            path: path.display().to_string(),
            message: "empty file (no header line)".into(),
        });
    };
    let header_doc = std::str::from_utf8(header_bytes)
        .ok()
        .and_then(|line| parse(line.trim()).ok())
        .ok_or_else(|| StoreError::Version {
            path: path.display().to_string(),
            message: "unparseable header line".into(),
        })?;
    check_header(path, &header_doc, kind)?;
    if !header_terminated {
        // A bare, newline-less header: keep it and let the caller
        // terminate the line before the first append.
        return Ok(Replayed {
            records: Vec::new(),
            good_end: bytes.len() as u64,
            recovery: Recovery::default(),
            missing_newline: true,
        });
    }

    let mut records = Vec::new();
    let mut good_end = header_bytes.len() as u64 + 1;
    let mut missing_newline = false;
    let last = segments.len().saturating_sub(1);
    for (index, (start, segment, terminated)) in segments.iter().copied().enumerate().skip(1) {
        let line_no = index + 1;
        let is_tail = index == last;
        if segment.is_empty() {
            // Blank lines carry no data; skipping them loses nothing.
            if terminated {
                good_end = start as u64 + 1;
            }
            continue;
        }
        let parsed = std::str::from_utf8(segment)
            .ok()
            .and_then(|line| parse(line.trim()).ok());
        match parsed {
            Some(doc) => {
                records.push(doc);
                good_end = start as u64 + segment.len() as u64 + u64::from(terminated);
                // Only the tail can lack its newline (the loop would
                // have split anywhere else).
                missing_newline = !terminated;
            }
            None if is_tail => {
                // The torn write: drop it, truncate, report.
                return Ok(Replayed {
                    records,
                    good_end,
                    recovery: Recovery {
                        truncated_tail: true,
                        dropped_bytes: bytes.len() as u64 - good_end,
                    },
                    missing_newline: false,
                });
            }
            None => {
                return Err(StoreError::Corrupt {
                    path: path.display().to_string(),
                    line: line_no,
                    message: "not a JSON record".into(),
                });
            }
        }
    }
    // A parseable but unterminated final record is durable data (only
    // hand editing produces it — append writes record and newline in
    // one call); keep it, and have the caller terminate the line.
    Ok(Replayed {
        records,
        good_end: bytes.len() as u64,
        recovery: Recovery::default(),
        missing_newline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gtl-log-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn record(n: u64) -> Json {
        Json::obj([("n", Json::u64(n))])
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = tmp("roundtrip");
        {
            let (log, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
            assert!(loaded.records.is_empty());
            log.append(&record(1)).unwrap();
            log.append(&record(2)).unwrap();
        }
        let (log, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(1), record(2)]);
        assert_eq!(loaded.recovery, Recovery::default());
        log.append(&record(3)).unwrap();
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_survives_further_appends() {
        let path = tmp("torn");
        {
            let (log, _) = JsonlLog::open(&path, "test_kind").unwrap();
            log.append(&record(1)).unwrap();
        }
        // Simulate a crash mid-append: half a record, no newline.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"n\":2,\"tr").unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let (log, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(1)], "good prefix kept");
        assert!(loaded.recovery.truncated_tail);
        assert_eq!(loaded.recovery.dropped_bytes, 10);
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        log.append(&record(3)).unwrap();
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(1), record(3)]);
        assert!(!loaded.recovery.truncated_tail, "recovery is one-shot");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unterminated_but_parseable_tail_is_kept() {
        // Hand editing can leave a valid record with no newline; it is
        // durable data, so it must be kept — and terminated so the next
        // append cannot splice into it.
        let path = tmp("no-newline");
        {
            let (log, _) = JsonlLog::open(&path, "test_kind").unwrap();
            log.append(&record(1)).unwrap();
        }
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(record(2).to_line().as_bytes()).unwrap();
        }
        let (log, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(1), record(2)]);
        assert!(!loaded.recovery.truncated_tail);
        log.append(&record(3)).unwrap();
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(1), record(2), record(3)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interior_garbage_is_a_typed_error_not_data_loss() {
        let path = tmp("garbage");
        {
            let (log, _) = JsonlLog::open(&path, "test_kind").unwrap();
            log.append(&record(1)).unwrap();
        }
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"!!not json!!\n").unwrap();
        }
        {
            // Valid data *after* the garbage makes it interior.
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, format!("{text}{}\n", record(2))).unwrap();
        }
        let err = JsonlLog::open(&path, "test_kind").unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { line: 3, .. }),
            "expected Corrupt at line 3, got {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_byte_file_is_recovered_as_a_fresh_log() {
        // A crash between file creation and the header write (or an
        // operator `touch`) leaves an empty file; nothing durable is
        // lost, so open must recover rather than brick the store.
        let path = tmp("empty");
        std::fs::write(&path, b"").unwrap();
        let (log, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert!(loaded.records.is_empty());
        log.append(&record(1)).unwrap();
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(1)]);
        // The read-only path cannot repair, so there it stays typed.
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(
            JsonlLog::read(&path).unwrap_err(),
            StoreError::Version { .. }
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_mismatches_are_typed_version_errors() {
        let path = tmp("header");
        {
            let (log, _) = JsonlLog::open(&path, "kind_a").unwrap();
            log.append(&record(1)).unwrap();
        }
        let err = JsonlLog::open(&path, "kind_b").unwrap_err();
        assert!(matches!(err, StoreError::Version { .. }), "{err:?}");

        std::fs::write(&path, "{\"gtl_store\":99,\"kind\":\"kind_a\"}\n").unwrap();
        let err = JsonlLog::open(&path, "kind_a").unwrap_err();
        assert!(matches!(err, StoreError::Version { .. }), "{err:?}");

        std::fs::write(&path, "plain text, not a log\n").unwrap();
        let err = JsonlLog::open(&path, "kind_a").unwrap_err();
        assert!(matches!(err, StoreError::Version { .. }), "{err:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rewrite_replaces_contents_atomically() {
        let path = tmp("rewrite");
        let (log, _) = JsonlLog::open(&path, "test_kind").unwrap();
        for n in 0..10 {
            log.append(&record(n)).unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        log.rewrite(&[record(9)]).unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        // The handle keeps working after the rename.
        log.append(&record(10)).unwrap();
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(9), record(10)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_reports_kind_without_modifying() {
        let path = tmp("read");
        let (log, _) = JsonlLog::open(&path, "some_kind").unwrap();
        log.append(&record(7)).unwrap();
        let (kind, loaded) = JsonlLog::read(&path).unwrap();
        assert_eq!(kind, "some_kind");
        assert_eq!(loaded.records, vec![record(7)]);
        assert!(JsonlLog::read(Path::new("/definitely/not/here")).is_err());
        let _ = std::fs::remove_file(&path);
    }

    /// Removes a log and every sidecar file rotation may have left.
    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(snap_path(path));
        if let Ok((_, segs)) = sealed_files(path) {
            for (_, seg) in segs {
                let _ = std::fs::remove_file(&seg);
            }
        }
    }

    #[test]
    fn rotation_seals_segments_and_replays_in_order() {
        let path = tmp("rotate");
        cleanup(&path);
        {
            // ~40 bytes/header and ~9 bytes/record: a 64-byte limit
            // forces a seal every few appends.
            let (log, _) = JsonlLog::open_rotating(&path, "test_kind", 64).unwrap();
            for n in 0..20 {
                log.append(&record(n)).unwrap();
            }
        }
        let (_, segments) = sealed_files(&path).unwrap();
        assert!(segments.len() >= 2, "expected multiple sealed segments");
        // Plain open replays the whole history in append order.
        let (log, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, (0..20).map(record).collect::<Vec<_>>());
        assert_eq!(loaded.sealed_files, segments.len());
        assert!(log.has_sealed());
        // And the read-only path sees the same records.
        let (kind, read) = JsonlLog::read(&path).unwrap();
        assert_eq!(kind, "test_kind");
        assert_eq!(read.records.len(), 20);
        // Reopening rotated and appending more keeps numbering.
        {
            let (log, _) = JsonlLog::open_rotating(&path, "test_kind", 64).unwrap();
            for n in 20..30 {
                log.append(&record(n)).unwrap();
            }
        }
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, (0..30).map(record).collect::<Vec<_>>());
        cleanup(&path);
    }

    #[test]
    fn compact_sealed_merges_without_touching_live() {
        let path = tmp("compact-sealed");
        cleanup(&path);
        let (log, _) = JsonlLog::open_rotating(&path, "test_kind", 64).unwrap();
        for n in 0..20 {
            log.append(&record(n)).unwrap();
        }
        let live_before = std::fs::read(&path).unwrap();
        let stats = log
            .compact_sealed(|records| {
                // Keep only even records — an observable merge policy.
                records
                    .into_iter()
                    .filter(|r| r.get("n").and_then(Json::as_u64).unwrap() % 2 == 0)
                    .collect()
            })
            .unwrap();
        assert!(stats.records_after < stats.records_before);
        assert!(stats.bytes_after < stats.bytes_before);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            live_before,
            "live segment must never be rewritten by compaction"
        );
        let (_, segments) = sealed_files(&path).unwrap();
        assert!(segments.is_empty(), "segments merged into the snapshot");
        assert!(snap_path(&path).exists());
        // Replay = merged snapshot, then the untouched live records.
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        let sealed_kept = stats.records_after;
        assert!(loaded.records.len() >= sealed_kept);
        assert!(loaded.records[..sealed_kept]
            .iter()
            .all(|r| r.get("n").and_then(Json::as_u64).unwrap() % 2 == 0));
        cleanup(&path);
    }

    #[test]
    fn crash_between_seal_and_fresh_live_recovers() {
        let path = tmp("rotate-crash");
        cleanup(&path);
        let (log, _) = JsonlLog::open_rotating(&path, "test_kind", 64).unwrap();
        for n in 0..10 {
            log.append(&record(n)).unwrap();
        }
        drop(log);
        // Simulate the crash window: the live file was renamed to a
        // segment but the fresh header was never written.
        let (_, segments) = sealed_files(&path).unwrap();
        let next = segments.last().unwrap().0 + 1;
        std::fs::rename(&path, seg_path(&path, next)).unwrap();
        let (log, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, (0..10).map(record).collect::<Vec<_>>());
        log.append(&record(10)).unwrap();
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records.len(), 11);
        cleanup(&path);
    }

    #[test]
    fn rewrite_clears_sealed_files() {
        let path = tmp("rewrite-sealed");
        cleanup(&path);
        let (log, _) = JsonlLog::open_rotating(&path, "test_kind", 64).unwrap();
        for n in 0..20 {
            log.append(&record(n)).unwrap();
        }
        assert!(log.has_sealed());
        log.rewrite(&[record(99)]).unwrap();
        assert!(!log.has_sealed());
        let (_, segments) = sealed_files(&path).unwrap();
        assert!(segments.is_empty());
        assert!(!snap_path(&path).exists());
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(99)]);
        cleanup(&path);
    }

    #[test]
    fn sniffs_log_headers() {
        assert!(is_log_header("{\"gtl_store\":1,\"kind\":\"x\"}"));
        assert!(!is_log_header("{\"version\":1,\"entries\":{}}"));
        assert!(!is_log_header("{"));
        assert!(!is_log_header(""));
    }

    #[test]
    fn appends_proceed_during_sealed_merge() {
        // The merge closure blocks mid-compaction while the main
        // thread keeps appending — enough to rotate a brand-new
        // segment. If compact_sealed held the append lock across the
        // merge (the old behavior), the appends below would deadlock
        // against the parked closure and the test would hang; with the
        // narrowed locking they complete, the mid-merge segment
        // survives the compaction, and a replay sees every record
        // exactly once.
        use std::sync::mpsc;
        let path = tmp("merge-concurrent");
        cleanup(&path);
        let (log, _) = JsonlLog::open_rotating(&path, "test_kind", 64).unwrap();
        for n in 0..20 {
            log.append(&record(n)).unwrap();
        }
        assert!(log.sealed_segments() >= 2);
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        std::thread::scope(|scope| {
            let merger = scope.spawn(|| {
                log.compact_sealed(move |records| {
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    records
                })
            });
            started_rx.recv().unwrap();
            // Merge is parked mid-flight: appends must flow freely,
            // including a rotation that seals a new segment.
            for n in 20..40 {
                log.append(&record(n)).unwrap();
            }
            assert!(
                log.sealed_segments() >= 1,
                "appends during the merge sealed a fresh segment"
            );
            release_tx.send(()).unwrap();
            let stats = merger.join().unwrap().unwrap();
            assert!(stats.records_before >= 1);
        });
        // The segment sealed mid-merge was not part of the compaction:
        // it is still on disk and still counted for the next merge.
        assert!(log.sealed_segments() >= 1);
        let (_, segments) = sealed_files(&path).unwrap();
        assert_eq!(segments.len(), log.sealed_segments());
        // Replay order (snapshot → surviving segments → live) yields
        // every record exactly once — no loss, no duplication.
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        let mut ns: Vec<u64> = loaded
            .records
            .iter()
            .map(|r| r.get("n").and_then(Json::as_u64).unwrap())
            .collect();
        ns.sort_unstable();
        assert_eq!(ns, (0..40).collect::<Vec<_>>());
        cleanup(&path);
    }
}
