//! The crash-tolerant append-only JSON-lines log underneath every
//! store in the workspace.
//!
//! A log file is one header line followed by one JSON object per
//! record:
//!
//! ```text
//! {"gtl_store":1,"kind":"lift_outcomes"}
//! {"attempts":57,"key":"00a1b2…","label":"blas_dot",…}
//! {"attempts":3,"key":"77ffe0…","label":"blas_gemv",…}
//! ```
//!
//! The header pins the on-disk format version and the record *kind*
//! (which store family wrote the file), so a log can never be replayed
//! into the wrong index. Appends are one `write` each — a crash can
//! only tear the final record, and [`JsonlLog::open`] recovers from
//! exactly that: a torn tail (invalid JSON, or invalid UTF-8 confined
//! to the last line) is truncated away and reported in [`Recovery`],
//! never silently kept and never allowed to poison later appends.
//! Corruption anywhere *before* the tail cannot come from a torn write,
//! so it fails loudly with a typed [`StoreError`] instead of dropping
//! records.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::{parse, Json};

/// The on-disk format version this build reads and writes.
pub const STORE_VERSION: u64 = 1;

/// A typed persistence failure. No store API panics on bad data: every
/// unusable file or record surfaces as one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The filesystem said no (open, read, write, rename).
    Io {
        /// The file involved.
        path: String,
        /// The underlying error, rendered.
        message: String,
    },
    /// The version header is missing, unparseable, or names a different
    /// format version or record kind than the caller expects.
    Version {
        /// The file involved.
        path: String,
        /// What was wrong with the header.
        message: String,
    },
    /// A record *before* the tail failed to parse — externally corrupted
    /// data, not a torn write, so nothing is dropped and the open fails.
    Corrupt {
        /// The file involved.
        path: String,
        /// 1-based line number of the offending record.
        line: usize,
        /// What failed to parse.
        message: String,
    },
    /// A structurally valid JSON line did not have the record shape its
    /// store expects.
    Record {
        /// The file involved.
        path: String,
        /// 1-based line number of the offending record.
        line: usize,
        /// Which member was missing or mistyped.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "store {path}: {message}"),
            StoreError::Version { path, message } => {
                write!(f, "store {path}: bad header: {message}")
            }
            StoreError::Corrupt {
                path,
                line,
                message,
            } => write!(f, "store {path}: corrupt record at line {line}: {message}"),
            StoreError::Record {
                path,
                line,
                message,
            } => write!(f, "store {path}: malformed record at line {line}: {message}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What [`JsonlLog::open`] had to do to make the file usable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Whether a torn tail record was dropped (the file was truncated
    /// to the last complete record).
    pub truncated_tail: bool,
    /// Bytes removed by the truncation.
    pub dropped_bytes: u64,
}

fn io_err(path: &Path, e: impl fmt::Display) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Builds the header line for a log of `kind`.
fn header(kind: &str) -> Json {
    Json::obj([
        ("gtl_store", Json::u64(STORE_VERSION)),
        ("kind", Json::str(kind)),
    ])
}

/// Checks a parsed first line against the expected header.
fn check_header(path: &Path, doc: &Json, kind: &str) -> Result<(), StoreError> {
    let version_err = |message: String| StoreError::Version {
        path: path.display().to_string(),
        message,
    };
    let version = doc
        .get("gtl_store")
        .and_then(Json::as_u64)
        .ok_or_else(|| version_err("missing `gtl_store` version member".into()))?;
    if version != STORE_VERSION {
        return Err(version_err(format!(
            "format version {version}, this build reads {STORE_VERSION}"
        )));
    }
    let found = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| version_err("missing `kind` member".into()))?;
    if found != kind {
        return Err(version_err(format!(
            "record kind `{found}`, expected `{kind}`"
        )));
    }
    Ok(())
}

/// Whether `first_line` is a gtl_store log header (any kind, any
/// version) — the sniff used to tell a log from a legacy one-document
/// JSON file sharing the same path conventions.
pub fn is_log_header(first_line: &str) -> bool {
    parse(first_line.trim())
        .ok()
        .is_some_and(|doc| doc.get("gtl_store").is_some())
}

/// [`is_log_header`] over raw file bytes: sniffs the first line only,
/// which is the sole part of a log required to be valid UTF-8 — a torn
/// multi-byte character in the tail must not defeat the sniff.
pub fn is_log_file(bytes: &[u8]) -> bool {
    let first = bytes.split(|b| *b == b'\n').next().unwrap_or_default();
    std::str::from_utf8(first).is_ok_and(is_log_header)
}

/// The log kind under which oracle fixture responses are recorded.
/// Shared by `gtl_oracle`'s recording store and `store_tool`'s
/// fixture handling so the spelling cannot drift (lift outcomes use
/// [`crate::LIFT_LOG_KIND`]).
pub const FIXTURE_LOG_KIND: &str = "oracle_fixture";

/// One open append-only log: the durable half of every store.
///
/// `append` is `&self` (internally locked), so one log can be shared by
/// concurrent writers; each append is a single `write` call of one full
/// line, which is what makes tail-only tearing the sole crash mode.
#[derive(Debug)]
pub struct JsonlLog {
    path: PathBuf,
    kind: String,
    file: Mutex<File>,
}

/// The records loaded by [`JsonlLog::open`], plus recovery facts.
#[derive(Debug)]
pub struct LoadedLog {
    /// Every good record, in append order (header excluded).
    pub records: Vec<Json>,
    /// What recovery had to do.
    pub recovery: Recovery,
}

impl JsonlLog {
    /// Opens (or creates) the log at `path` for kind `kind`, replaying
    /// every record and recovering from a torn tail.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, [`StoreError::Version`]
    /// on a header mismatch, [`StoreError::Corrupt`] when a record
    /// before the tail does not parse.
    pub fn open(path: impl Into<PathBuf>, kind: &str) -> Result<(JsonlLog, LoadedLog), StoreError> {
        let path = path.into();
        // A missing file starts a fresh log; so does an existing
        // zero-byte file (a crash between creation and the header
        // write, or an operator `touch`) — there is nothing durable to
        // lose, so recover by writing a fresh header.
        // (On a metadata error the create below surfaces the real
        // filesystem problem as a typed Io error.)
        let fresh = std::fs::metadata(&path).map_or(true, |meta| meta.len() == 0);
        if fresh {
            let mut file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&path)
                .map_err(|e| io_err(&path, e))?;
            file.write_all(format!("{}\n", header(kind)).as_bytes())
                .map_err(|e| io_err(&path, e))?;
            let log = JsonlLog {
                path,
                kind: kind.to_string(),
                file: Mutex::new(file),
            };
            return Ok((
                log,
                LoadedLog {
                    records: Vec::new(),
                    recovery: Recovery::default(),
                },
            ));
        }

        let bytes = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
        Self::open_loaded(path, kind, &bytes)
    }

    /// [`JsonlLog::open`], but over `bytes` the caller already read
    /// from `path` (typically for a format sniff — the open should not
    /// cost a second full-file read). `bytes` must be the file's
    /// entire current contents, and the caller must be the only
    /// writer, as with every open.
    ///
    /// # Errors
    ///
    /// As [`JsonlLog::open`].
    pub fn open_loaded(
        path: impl Into<PathBuf>,
        kind: &str,
        bytes: &[u8],
    ) -> Result<(JsonlLog, LoadedLog), StoreError> {
        let path = path.into();
        let replayed = replay(&path, bytes, kind)?;

        // A recovered tail: cut the file back to the last durable byte
        // so the next append starts a fresh line instead of splicing
        // into garbage.
        if replayed.good_end != bytes.len() as u64 {
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err(&path, e))?;
            file.set_len(replayed.good_end)
                .map_err(|e| io_err(&path, e))?;
        }
        let mut file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        if replayed.missing_newline {
            // The final record parsed but lacked its newline (hand
            // editing); terminate it so the next append cannot splice.
            file.write_all(b"\n").map_err(|e| io_err(&path, e))?;
        }
        Ok((
            JsonlLog {
                path,
                kind: kind.to_string(),
                file: Mutex::new(file),
            },
            LoadedLog {
                records: replayed.records,
                recovery: replayed.recovery,
            },
        ))
    }

    /// Creates (or atomically replaces) a log at `path` holding
    /// `records`, via temp file + rename — the migration primitive for
    /// converting legacy one-document files into logs without a window
    /// where the data exists in neither format.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when any step fails; an existing file at
    /// `path` is untouched in that case.
    pub fn create(
        path: impl Into<PathBuf>,
        kind: &str,
        records: &[Json],
    ) -> Result<JsonlLog, StoreError> {
        let path = path.into();
        let tmp = path.with_extension("tmp");
        {
            let mut out = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err(&tmp, e))?;
            let mut text = format!("{}\n", header(kind));
            for record in records {
                text.push_str(&record.to_line());
                text.push('\n');
            }
            out.write_all(text.as_bytes()).map_err(|e| io_err(&tmp, e))?;
            out.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        Ok(JsonlLog {
            path,
            kind: kind.to_string(),
            file: Mutex::new(file),
        })
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The record kind in this log's header.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Appends one record as a single line (one `write` call — the
    /// crash-tolerance contract).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the write fails; the in-memory caller
    /// state is then ahead of disk, which is safe (re-appending later
    /// supersedes cleanly).
    pub fn append(&self, record: &Json) -> Result<(), StoreError> {
        let line = format!("{}\n", record.to_line());
        let mut file = self.file.lock().expect("log file poisoned");
        file.write_all(line.as_bytes())
            .map_err(|e| io_err(&self.path, e))
    }

    /// Atomically replaces the log's contents with `records` (write to
    /// a temp file, rename over) — the compaction primitive. The append
    /// handle is re-pointed at the new file, so the log stays usable.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when any step fails; the original file is
    /// untouched in that case.
    pub fn rewrite(&self, records: &[Json]) -> Result<(), StoreError> {
        let mut file = self.file.lock().expect("log file poisoned");
        let tmp = self.path.with_extension("tmp");
        {
            let mut out = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err(&tmp, e))?;
            let mut text = format!("{}\n", header(&self.kind));
            for record in records {
                text.push_str(&record.to_line());
                text.push('\n');
            }
            out.write_all(text.as_bytes()).map_err(|e| io_err(&tmp, e))?;
            out.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, e))?;
        *file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, e))?;
        Ok(())
    }

    /// Reads a log without expecting a particular kind (the
    /// `store_tool` entry point). Returns the kind named in the header
    /// and the loaded records; never modifies the file.
    ///
    /// # Errors
    ///
    /// As [`JsonlLog::open`], plus [`StoreError::Io`] for a missing
    /// file.
    pub fn read(path: &Path) -> Result<(String, LoadedLog), StoreError> {
        let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
        Self::read_bytes(path, &bytes)
    }

    /// [`JsonlLog::read`], but over `bytes` the caller already read
    /// from `path` (`path` is used for error messages only).
    ///
    /// # Errors
    ///
    /// As [`JsonlLog::read`].
    pub fn read_bytes(path: &Path, bytes: &[u8]) -> Result<(String, LoadedLog), StoreError> {
        let first = bytes.split(|b| *b == b'\n').next().unwrap_or_default();
        let kind = std::str::from_utf8(first)
            .ok()
            .and_then(|line| parse(line.trim()).ok())
            .and_then(|doc| doc.get("kind").and_then(Json::as_str).map(str::to_string))
            .ok_or_else(|| StoreError::Version {
                path: path.display().to_string(),
                message: "missing or unparseable header line".into(),
            })?;
        let replayed = replay(path, bytes, &kind)?;
        Ok((
            kind,
            LoadedLog {
                records: replayed.records,
                recovery: replayed.recovery,
            },
        ))
    }
}

/// What [`replay`] found in a log's bytes.
struct Replayed {
    /// Every good record, in append order.
    records: Vec<Json>,
    /// Byte offset of the end of the last durable record — the length
    /// the file should be truncated to when a torn tail follows it.
    good_end: u64,
    /// The recovery report.
    recovery: Recovery,
    /// The final record parsed but had no trailing newline; the caller
    /// must terminate it before appending.
    missing_newline: bool,
}

/// Replays log bytes: validates the header, parses every record, and
/// classifies failures as recoverable tail tearing vs hard corruption.
/// Pure — never touches the filesystem.
fn replay(path: &Path, bytes: &[u8], kind: &str) -> Result<Replayed, StoreError> {
    // Split into segments at newlines, keeping byte offsets. The final
    // segment may be unterminated (that is the torn-tail case).
    let mut segments: Vec<(usize, &[u8], bool)> = Vec::new(); // (start, bytes, terminated)
    let mut start = 0;
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'\n' {
            segments.push((start, &bytes[start..i], true));
            start = i + 1;
        }
    }
    if start < bytes.len() {
        segments.push((start, &bytes[start..], false));
    }

    // No bytes at all: `JsonlLog::open` recovers a zero-byte file by
    // rewriting a fresh header before replaying, so reaching here
    // empty-handed means a read-only caller (`JsonlLog::read`) that
    // cannot repair the file — a typed error.
    let Some((_, header_bytes, header_terminated)) = segments.first().copied() else {
        return Err(StoreError::Version {
            path: path.display().to_string(),
            message: "empty file (no header line)".into(),
        });
    };
    let header_doc = std::str::from_utf8(header_bytes)
        .ok()
        .and_then(|line| parse(line.trim()).ok())
        .ok_or_else(|| StoreError::Version {
            path: path.display().to_string(),
            message: "unparseable header line".into(),
        })?;
    check_header(path, &header_doc, kind)?;
    if !header_terminated {
        // A bare, newline-less header: keep it and let the caller
        // terminate the line before the first append.
        return Ok(Replayed {
            records: Vec::new(),
            good_end: bytes.len() as u64,
            recovery: Recovery::default(),
            missing_newline: true,
        });
    }

    let mut records = Vec::new();
    let mut good_end = header_bytes.len() as u64 + 1;
    let mut missing_newline = false;
    let last = segments.len().saturating_sub(1);
    for (index, (start, segment, terminated)) in segments.iter().copied().enumerate().skip(1) {
        let line_no = index + 1;
        let is_tail = index == last;
        if segment.is_empty() {
            // Blank lines carry no data; skipping them loses nothing.
            if terminated {
                good_end = start as u64 + 1;
            }
            continue;
        }
        let parsed = std::str::from_utf8(segment)
            .ok()
            .and_then(|line| parse(line.trim()).ok());
        match parsed {
            Some(doc) => {
                records.push(doc);
                good_end = start as u64 + segment.len() as u64 + u64::from(terminated);
                // Only the tail can lack its newline (the loop would
                // have split anywhere else).
                missing_newline = !terminated;
            }
            None if is_tail => {
                // The torn write: drop it, truncate, report.
                return Ok(Replayed {
                    records,
                    good_end,
                    recovery: Recovery {
                        truncated_tail: true,
                        dropped_bytes: bytes.len() as u64 - good_end,
                    },
                    missing_newline: false,
                });
            }
            None => {
                return Err(StoreError::Corrupt {
                    path: path.display().to_string(),
                    line: line_no,
                    message: "not a JSON record".into(),
                });
            }
        }
    }
    // A parseable but unterminated final record is durable data (only
    // hand editing produces it — append writes record and newline in
    // one call); keep it, and have the caller terminate the line.
    Ok(Replayed {
        records,
        good_end: bytes.len() as u64,
        recovery: Recovery::default(),
        missing_newline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gtl-log-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn record(n: u64) -> Json {
        Json::obj([("n", Json::u64(n))])
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = tmp("roundtrip");
        {
            let (log, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
            assert!(loaded.records.is_empty());
            log.append(&record(1)).unwrap();
            log.append(&record(2)).unwrap();
        }
        let (log, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(1), record(2)]);
        assert_eq!(loaded.recovery, Recovery::default());
        log.append(&record(3)).unwrap();
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_survives_further_appends() {
        let path = tmp("torn");
        {
            let (log, _) = JsonlLog::open(&path, "test_kind").unwrap();
            log.append(&record(1)).unwrap();
        }
        // Simulate a crash mid-append: half a record, no newline.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"n\":2,\"tr").unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let (log, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(1)], "good prefix kept");
        assert!(loaded.recovery.truncated_tail);
        assert_eq!(loaded.recovery.dropped_bytes, 10);
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        log.append(&record(3)).unwrap();
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(1), record(3)]);
        assert!(!loaded.recovery.truncated_tail, "recovery is one-shot");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unterminated_but_parseable_tail_is_kept() {
        // Hand editing can leave a valid record with no newline; it is
        // durable data, so it must be kept — and terminated so the next
        // append cannot splice into it.
        let path = tmp("no-newline");
        {
            let (log, _) = JsonlLog::open(&path, "test_kind").unwrap();
            log.append(&record(1)).unwrap();
        }
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(record(2).to_line().as_bytes()).unwrap();
        }
        let (log, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(1), record(2)]);
        assert!(!loaded.recovery.truncated_tail);
        log.append(&record(3)).unwrap();
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(1), record(2), record(3)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interior_garbage_is_a_typed_error_not_data_loss() {
        let path = tmp("garbage");
        {
            let (log, _) = JsonlLog::open(&path, "test_kind").unwrap();
            log.append(&record(1)).unwrap();
        }
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"!!not json!!\n").unwrap();
        }
        {
            // Valid data *after* the garbage makes it interior.
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, format!("{text}{}\n", record(2))).unwrap();
        }
        let err = JsonlLog::open(&path, "test_kind").unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { line: 3, .. }),
            "expected Corrupt at line 3, got {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_byte_file_is_recovered_as_a_fresh_log() {
        // A crash between file creation and the header write (or an
        // operator `touch`) leaves an empty file; nothing durable is
        // lost, so open must recover rather than brick the store.
        let path = tmp("empty");
        std::fs::write(&path, b"").unwrap();
        let (log, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert!(loaded.records.is_empty());
        log.append(&record(1)).unwrap();
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(1)]);
        // The read-only path cannot repair, so there it stays typed.
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(
            JsonlLog::read(&path).unwrap_err(),
            StoreError::Version { .. }
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_mismatches_are_typed_version_errors() {
        let path = tmp("header");
        {
            let (log, _) = JsonlLog::open(&path, "kind_a").unwrap();
            log.append(&record(1)).unwrap();
        }
        let err = JsonlLog::open(&path, "kind_b").unwrap_err();
        assert!(matches!(err, StoreError::Version { .. }), "{err:?}");

        std::fs::write(&path, "{\"gtl_store\":99,\"kind\":\"kind_a\"}\n").unwrap();
        let err = JsonlLog::open(&path, "kind_a").unwrap_err();
        assert!(matches!(err, StoreError::Version { .. }), "{err:?}");

        std::fs::write(&path, "plain text, not a log\n").unwrap();
        let err = JsonlLog::open(&path, "kind_a").unwrap_err();
        assert!(matches!(err, StoreError::Version { .. }), "{err:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rewrite_replaces_contents_atomically() {
        let path = tmp("rewrite");
        let (log, _) = JsonlLog::open(&path, "test_kind").unwrap();
        for n in 0..10 {
            log.append(&record(n)).unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        log.rewrite(&[record(9)]).unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        // The handle keeps working after the rename.
        log.append(&record(10)).unwrap();
        let (_, loaded) = JsonlLog::open(&path, "test_kind").unwrap();
        assert_eq!(loaded.records, vec![record(9), record(10)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_reports_kind_without_modifying() {
        let path = tmp("read");
        let (log, _) = JsonlLog::open(&path, "some_kind").unwrap();
        log.append(&record(7)).unwrap();
        let (kind, loaded) = JsonlLog::read(&path).unwrap();
        assert_eq!(kind, "some_kind");
        assert_eq!(loaded.records, vec![record(7)]);
        assert!(JsonlLog::read(Path::new("/definitely/not/here")).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sniffs_log_headers() {
        assert!(is_log_header("{\"gtl_store\":1,\"kind\":\"x\"}"));
        assert!(!is_log_header("{\"version\":1,\"entries\":{}}"));
        assert!(!is_log_header("{"));
        assert!(!is_log_header(""));
    }
}
