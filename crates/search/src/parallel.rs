//! The parallel lifting engine: a worker pool over the shared ranked
//! frontier.
//!
//! The template space is embarrassingly parallel — checking one complete
//! template (substitution validation + bounded verification) never
//! depends on another — so the engine runs N workers against one
//! priority queue of partial derivation trees:
//!
//! - a [`ShardedSeenSet`] deduplicates canonicalised templates, so no
//!   two workers ever send the same template to a checker;
//! - a [`CancelFlag`] stops every worker as soon as the first
//!   [`CheckOutcome::Verified`] lands (or a budget trips);
//! - each worker owns its private checker built by a caller-supplied
//!   factory (keyed by worker index, so any per-worker randomness can be
//!   seeded deterministically).
//!
//! With `jobs <= 1` the engine delegates to the sequential loop and is
//! bit-identical to [`crate::top_down_search`] / [`crate::bottom_up_search`].
//! With `jobs > 1` the same solution space is explored, but attempt
//! ordering — and therefore *which* of several semantically equivalent
//! solutions is found first — may differ. Classification
//! (solved / exhausted / budget) is preserved whenever budgets are not
//! the binding constraint: deduplication means a parallel run spends
//! its `max_attempts` on *distinct* templates (never more checks than
//! sequential, possibly fewer), and wall-clock limits are measured
//! against real time, so a run right at the edge of `time_limit` or
//! `max_attempts` can classify differently from sequential.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BinaryHeap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gtl_taco::TacoProgram;
use gtl_template::TemplateGrammar;

use crate::bottomup::BuExpand;
use crate::driver::{
    Priority, SearchBudget, SearchHooks, SearchOutcome, SearchProgress, StopReason,
    TemplateChecker,
};
use crate::frontier::{run_sequential_hooked, Expand, QEntry};
use crate::penalty::PenaltyContext;
use crate::topdown::TdExpand;

/// Knobs of a parallel search run.
#[derive(Debug, Clone, Copy)]
pub struct ParallelOptions {
    /// Worker threads. `0` and `1` both mean "run sequentially".
    pub jobs: usize,
    /// Shard count of the seen-set (power of two recommended; more
    /// shards, less lock contention).
    pub seen_shards: usize,
    /// Nodes a worker pops per frontier-lock acquisition (minimum 1).
    /// Batching cuts contention on the one frontier mutex at high job
    /// counts; the popped nodes are still processed best-first within
    /// the batch, and cancellation/budget checks run between nodes, so
    /// the engine's stopping guarantees are unchanged.
    pub pop_batch: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            seen_shards: 16,
            pop_batch: 4,
        }
    }
}

impl ParallelOptions {
    /// Options with an explicit job count and default sharding.
    pub fn with_jobs(jobs: usize) -> ParallelOptions {
        ParallelOptions {
            jobs,
            ..ParallelOptions::default()
        }
    }
}

/// A cooperative cancellation flag shared by all workers of one search.
/// Raised by the first verified solution (or a tripped budget); workers
/// poll it between frontier pops.
#[derive(Debug, Default)]
pub struct CancelFlag {
    raised: AtomicBool,
}

impl CancelFlag {
    /// A fresh, unraised flag.
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// Raises the flag (idempotent).
    pub fn cancel(&self) {
        self.raised.store(true, Ordering::Release);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.raised.load(Ordering::Acquire)
    }
}

/// A sharded concurrent set of canonicalised-template fingerprints.
///
/// Insertion locks only the shard the fingerprint hashes into, so
/// workers rarely contend. Guarantees exactly-once semantics: for any
/// fingerprint, exactly one `insert` call across all threads returns
/// `true`.
#[derive(Debug)]
pub struct ShardedSeenSet {
    shards: Vec<Mutex<HashSet<u64>>>,
}

impl ShardedSeenSet {
    /// Creates a set with `shards` shards (minimum 1).
    pub fn new(shards: usize) -> ShardedSeenSet {
        ShardedSeenSet {
            shards: (0..shards.max(1)).map(|_| Mutex::new(HashSet::new())).collect(),
        }
    }

    /// Inserts a raw fingerprint; `true` iff it was not present.
    pub fn insert(&self, fingerprint: u64) -> bool {
        let shard = (fingerprint as usize) % self.shards.len();
        self.shards[shard]
            .lock()
            .expect("seen-set shard poisoned")
            .insert(fingerprint)
    }

    /// Inserts a template by its canonical fingerprint; `true` iff no
    /// algebraically equivalent template was inserted before.
    pub fn insert_program(&self, program: &TacoProgram) -> bool {
        self.insert(fingerprint_program(program))
    }

    /// Total number of distinct fingerprints inserted.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("seen-set shard poisoned").len())
            .sum()
    }

    /// Whether no fingerprint has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The canonical fingerprint of a template:
/// [`gtl_taco::canonical_fingerprint`], which canonicalizes the
/// algebra (commutative sorting, constant folding, neutral elements)
/// and α-renames slots, summation indices, and `Const` ids. Two
/// templates with equal fingerprints enumerate identical substitution
/// sets, so deduplicating on it never hides a solution. (Hashing the
/// printed form — the previous key — missed commuted and renamed
/// variants and burned attempts re-checking them.)
pub fn fingerprint_program(program: &TacoProgram) -> u64 {
    gtl_taco::canonical_fingerprint(program)
}

/// A purely syntactic fingerprint, used to tell "this exact template
/// was generated twice" apart from "a distinct spelling of an
/// already-seen equivalence class" when counting prunes. Hashes the
/// `Debug` form: the printed form is ambiguous (`(x*y)/z` and `x*(y/z)`
/// display identically).
fn syntactic_fingerprint(program: &TacoProgram) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{program:?}").hash(&mut h);
    h.finish()
}

/// Shared state of one parallel run.
struct Shared {
    queue: Mutex<BinaryHeap<QEntry>>,
    /// Monotone tie-break sequence for frontier pushes.
    seq: AtomicU64,
    /// Nodes currently being expanded (termination detection: the space
    /// is exhausted only when the queue is empty AND nothing is in
    /// flight that could refill it).
    in_flight: AtomicUsize,
    /// Node/attempt counters; doubles as the externally pollable
    /// progress tracker when the caller supplied one through hooks.
    progress: Arc<SearchProgress>,
    cancel: CancelFlag,
    /// The caller's cancellation flag, polled alongside the internal one.
    external_cancel: Option<Arc<CancelFlag>>,
    /// Set when the run stopped because the external flag was raised.
    externally_cancelled: AtomicBool,
    budget_hit: AtomicBool,
    solution: Mutex<Option<(TacoProgram, TacoProgram)>>,
    seen: ShardedSeenSet,
    /// Exact-syntax fingerprints, kept alongside the canonical set so
    /// equivalence prunes (new spelling, seen equivalence class) can be
    /// counted separately from plain re-generations.
    syntactic: ShardedSeenSet,
    pruned_equivalent: AtomicU64,
}

impl Shared {
    fn over_budget(&self, started: Instant, budget: &SearchBudget) -> bool {
        self.progress.nodes() >= budget.max_nodes
            || self.progress.attempts() >= budget.max_attempts
            || started.elapsed() >= budget.time_limit
    }
}

/// Runs the worker pool over an expander. Generic (not `dyn`) because
/// workers on different threads need `E: Sync`.
fn run_parallel<E, C, F>(
    exp: &E,
    budget: SearchBudget,
    opts: ParallelOptions,
    hooks: &SearchHooks,
    make_checker: &F,
) -> SearchOutcome
where
    E: Expand + Sync,
    C: TemplateChecker,
    F: Fn(usize) -> C + Sync,
{
    let started = Instant::now();
    let shared = Shared {
        queue: Mutex::new(BinaryHeap::new()),
        seq: AtomicU64::new(1),
        in_flight: AtomicUsize::new(0),
        progress: hooks
            .progress
            .clone()
            .unwrap_or_else(|| Arc::new(SearchProgress::new())),
        cancel: CancelFlag::new(),
        external_cancel: hooks.cancel.clone(),
        externally_cancelled: AtomicBool::new(false),
        budget_hit: AtomicBool::new(false),
        solution: Mutex::new(None),
        seen: ShardedSeenSet::new(opts.seen_shards),
        syntactic: ShardedSeenSet::new(opts.seen_shards),
        pruned_equivalent: AtomicU64::new(0),
    };
    shared
        .queue
        .lock()
        .expect("frontier poisoned")
        .push(QEntry {
            f: Priority(0.0),
            seq: 0,
            tree: exp.root(),
            cost: 0.0,
        });

    std::thread::scope(|scope| {
        for worker in 0..opts.jobs {
            let shared = &shared;
            let budget = &budget;
            scope.spawn(move || {
                let mut checker = make_checker(worker);
                worker_loop(exp, shared, started, budget, opts.pop_batch, &mut checker);
            });
        }
    });

    let solution = shared
        .solution
        .lock()
        .expect("solution slot poisoned")
        .take();
    let stop = if solution.is_some() {
        StopReason::Solved
    } else if shared.externally_cancelled.load(Ordering::Relaxed) {
        StopReason::Cancelled
    } else if shared.budget_hit.load(Ordering::Relaxed) {
        StopReason::BudgetExceeded
    } else {
        StopReason::Exhausted
    };
    let (template, concrete) = match solution {
        Some((t, c)) => (Some(t), Some(c)),
        None => (None, None),
    };
    SearchOutcome {
        solution: concrete,
        template,
        attempts: shared.progress.attempts(),
        pruned_equivalent: shared.pruned_equivalent.load(Ordering::Relaxed),
        nodes_expanded: shared.progress.nodes(),
        elapsed: started.elapsed(),
        stop,
    }
}

/// Decrements `in_flight` when dropped — including during unwinding, so
/// a panicking worker cannot strand the termination count.
struct FlightGuard<'a>(&'a Shared);

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Raises the cancellation flag if the worker unwinds, so sibling
/// workers stop instead of spinning forever on a frontier that will
/// never drain (`std::thread::scope` then propagates the panic).
struct PanicGuard<'a>(&'a Shared);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.cancel.cancel();
        }
    }
}

/// A worker's locally claimed frontier slice. Entries it holds are
/// counted in `in_flight`; whatever is still unprocessed when the
/// worker exits (cancellation, budget, panic) is decremented on drop so
/// termination detection never strands.
struct Batch<'a> {
    shared: &'a Shared,
    entries: std::collections::VecDeque<QEntry>,
}

impl Drop for Batch<'_> {
    fn drop(&mut self) {
        if !self.entries.is_empty() {
            self.shared
                .in_flight
                .fetch_sub(self.entries.len(), Ordering::SeqCst);
        }
    }
}

fn worker_loop<E: Expand>(
    exp: &E,
    shared: &Shared,
    started: Instant,
    budget: &SearchBudget,
    pop_batch: usize,
    checker: &mut dyn TemplateChecker,
) {
    let _panic_guard = PanicGuard(shared);
    let pop_batch = pop_batch.max(1);
    let mut batch = Batch {
        shared,
        entries: std::collections::VecDeque::with_capacity(pop_batch),
    };
    // Candidates collected from the current local batch, checked in one
    // `check_many` flush when the batch drains. Deduplication and the
    // attempt counter run at collection time (so budget accounting is
    // unchanged); a worker that exits on a stop condition abandons its
    // pending candidates exactly as it abandons unprocessed batch
    // entries — the run is over, their outcome cannot matter.
    let mut pending: Vec<TacoProgram> = Vec::with_capacity(pop_batch);
    loop {
        // Stop conditions are polled once per *node*, batched or not:
        // a worker abandons its remaining local entries the moment the
        // run terminates (their in-flight count is released by `Batch`'s
        // drop — the run is over, nobody will pop them again).
        if let Some(external) = &shared.external_cancel {
            if external.is_cancelled() {
                shared.externally_cancelled.store(true, Ordering::Relaxed);
                shared.cancel.cancel();
                return;
            }
        }
        if shared.cancel.is_cancelled() {
            return;
        }
        if shared.over_budget(started, budget) {
            shared.budget_hit.store(true, Ordering::Relaxed);
            shared.cancel.cancel();
            return;
        }
        // Refill the local batch: pop up to `pop_batch` nodes and mark
        // them in-flight under one lock acquisition (the contention
        // win). The exhaustion check must also run under that lock: an
        // in-flight sibling can only make its children visible by
        // taking the lock, so "queue empty and in_flight == 0" observed
        // *inside* the critical section is a consistent snapshot —
        // outside it, a sibling could push and decrement between our
        // two reads and we would exit with work still queued. Locally
        // held batch entries stay counted in `in_flight`, so they keep
        // the run alive exactly like a node mid-expansion.
        if batch.entries.is_empty() {
            // Flush collected candidates before refilling (and before the
            // exhaustion check below, so nothing is left unchecked when
            // the frontier drains). The checker polls the same stop
            // conditions between templates as this loop polls between
            // nodes.
            if !pending.is_empty() {
                let mut should_stop = || {
                    shared.cancel.is_cancelled()
                        || shared
                            .external_cancel
                            .as_deref()
                            .is_some_and(CancelFlag::is_cancelled)
                        || shared.over_budget(started, budget)
                };
                if let Some((idx, concrete)) = checker.check_many(&pending, &mut should_stop) {
                    let template = pending.swap_remove(idx);
                    let mut slot = shared.solution.lock().expect("solution slot poisoned");
                    if slot.is_none() {
                        *slot = Some((template, concrete));
                    }
                    drop(slot);
                    shared.cancel.cancel();
                    return;
                }
                pending.clear();
            }
            let refilled = {
                let mut q = shared.queue.lock().expect("frontier poisoned");
                while batch.entries.len() < pop_batch {
                    match q.pop() {
                        Some(e) => batch.entries.push_back(e),
                        None => break,
                    }
                }
                let popped = batch.entries.len();
                if popped > 0 {
                    shared.in_flight.fetch_add(popped, Ordering::SeqCst);
                    true
                } else if shared.in_flight.load(Ordering::SeqCst) == 0 {
                    return; // exhausted
                } else {
                    false
                }
            };
            if !refilled {
                std::thread::yield_now();
                continue;
            }
        }
        // Best-first within the batch: the heap popped in priority
        // order, the deque preserves it.
        let entry = batch.entries.pop_front().expect("refilled above");
        // Ownership of this entry's in-flight count moves to the guard.
        let _flight_guard = FlightGuard(shared);
        shared.progress.add_node();
        if !exp.skip(&entry.tree) {
            if let Some(template) = exp.candidate(&entry.tree) {
                // Exactly-once collection per canonical template; the
                // actual check runs in the next batch flush. A template
                // whose exact spelling is new but whose equivalence
                // class is not was pruned by canonicalization — count
                // it (plain re-generations of a seen spelling are not
                // prunes, the grammar just revisited a derivation).
                if shared.seen.insert_program(&template) {
                    shared.syntactic.insert(syntactic_fingerprint(&template));
                    shared.progress.add_attempt();
                    pending.push(template);
                } else if shared.syntactic.insert(syntactic_fingerprint(&template)) {
                    shared.pruned_equivalent.fetch_add(1, Ordering::Relaxed);
                }
            }
            let children = exp.children(&entry.tree, entry.cost);
            if !children.is_empty() {
                let mut q = shared.queue.lock().expect("frontier poisoned");
                for child in children {
                    q.push(QEntry {
                        f: Priority(child.f),
                        seq: shared.seq.fetch_add(1, Ordering::Relaxed),
                        tree: child.tree,
                        cost: child.cost,
                    });
                }
            }
        }
    }
}

/// Parallel counterpart of [`crate::top_down_search`].
///
/// `make_checker` builds one private checker per worker (the argument is
/// the worker index — seed any per-worker randomness from it for
/// deterministic runs). With `opts.jobs <= 1` this is exactly the
/// sequential search.
///
/// # Example
///
/// ```
/// use gtl_search::*;
/// use gtl_taco::{parse_program, TacoProgram};
/// use gtl_template::{generate_td_grammar, learn_weights, templatize, TdSpec};
///
/// // A grammar learned from one LLM-style candidate.
/// let cands: Vec<_> = ["r(i) = m(i,j) * v(j)"]
///     .iter()
///     .map(|s| templatize(&parse_program(s).unwrap()).unwrap())
///     .collect();
/// let mut g = generate_td_grammar(&TdSpec {
///     dim_list: vec![1, 2, 1],
///     n_indices: 2,
///     allow_repeated_index: false,
///     include_const: false,
/// });
/// learn_weights(&mut g, &cands);
/// let ctx = PenaltyContext {
///     dim_list: g.dim_list.clone(),
///     grammar_has_const: g.nts.constant.is_some(),
///     live_ops: g.live_ops(),
///     settings: PenaltySettings::all(),
/// };
///
/// // Four workers race over the frontier; the first verified template
/// // cancels the rest. Each worker gets its own checker.
/// let want = parse_program("a(i) = b(i,j) * c(j)").unwrap();
/// let out = parallel_top_down_search(
///     &g,
///     &ctx,
///     SearchBudget::default(),
///     ParallelOptions::with_jobs(4),
///     |_worker| {
///         let want = want.clone();
///         move |t: &TacoProgram| {
///             if *t == want { CheckOutcome::Verified(t.clone()) } else { CheckOutcome::Failed }
///         }
///     },
/// );
/// assert!(out.solved());
/// assert_eq!(out.stop, StopReason::Solved);
/// ```
///
/// # Panics
///
/// Panics if `grammar` is not top-down shaped.
pub fn parallel_top_down_search<C, F>(
    grammar: &TemplateGrammar,
    ctx: &PenaltyContext,
    budget: SearchBudget,
    opts: ParallelOptions,
    make_checker: F,
) -> SearchOutcome
where
    C: TemplateChecker,
    F: Fn(usize) -> C + Sync,
{
    parallel_top_down_search_hooked(
        grammar,
        ctx,
        budget,
        opts,
        &SearchHooks::default(),
        make_checker,
    )
}

/// [`parallel_top_down_search`] with external hooks: the caller's
/// [`CancelFlag`] stops all workers promptly (outcome
/// [`StopReason::Cancelled`]) and the caller's
/// [`SearchProgress`](crate::SearchProgress) is updated live — a serving
/// layer polls it from another thread to stream progress events.
///
/// # Panics
///
/// Panics if `grammar` is not top-down shaped.
pub fn parallel_top_down_search_hooked<C, F>(
    grammar: &TemplateGrammar,
    ctx: &PenaltyContext,
    budget: SearchBudget,
    opts: ParallelOptions,
    hooks: &SearchHooks,
    make_checker: F,
) -> SearchOutcome
where
    C: TemplateChecker,
    F: Fn(usize) -> C + Sync,
{
    let exp = TdExpand::new(grammar, ctx, budget.max_depth);
    if opts.jobs <= 1 {
        let mut checker = make_checker(0);
        return run_sequential_hooked(&exp, budget, &mut checker, hooks);
    }
    run_parallel(&exp, budget, opts, hooks, &make_checker)
}

/// Parallel counterpart of [`crate::bottom_up_search`]; see
/// [`parallel_top_down_search`] for the contract.
///
/// # Panics
///
/// Panics if `grammar` is not bottom-up shaped.
pub fn parallel_bottom_up_search<C, F>(
    grammar: &TemplateGrammar,
    ctx: &PenaltyContext,
    budget: SearchBudget,
    opts: ParallelOptions,
    make_checker: F,
) -> SearchOutcome
where
    C: TemplateChecker,
    F: Fn(usize) -> C + Sync,
{
    parallel_bottom_up_search_hooked(
        grammar,
        ctx,
        budget,
        opts,
        &SearchHooks::default(),
        make_checker,
    )
}

/// [`parallel_bottom_up_search`] with external hooks; see
/// [`parallel_top_down_search_hooked`] for the hook contract.
///
/// # Panics
///
/// Panics if `grammar` is not bottom-up shaped.
pub fn parallel_bottom_up_search_hooked<C, F>(
    grammar: &TemplateGrammar,
    ctx: &PenaltyContext,
    budget: SearchBudget,
    opts: ParallelOptions,
    hooks: &SearchHooks,
    make_checker: F,
) -> SearchOutcome
where
    C: TemplateChecker,
    F: Fn(usize) -> C + Sync,
{
    let exp = BuExpand::new(grammar, ctx);
    if opts.jobs <= 1 {
        let mut checker = make_checker(0);
        return run_sequential_hooked(&exp, budget, &mut checker, hooks);
    }
    run_parallel(&exp, budget, opts, hooks, &make_checker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    use gtl_taco::parse_program;
    use gtl_template::{generate_td_grammar, learn_weights, templatize, TdSpec};

    use crate::driver::CheckOutcome;
    use crate::penalty::PenaltySettings;

    fn grammar_with(cands: &[&str], dims: Vec<usize>, n_indices: usize) -> TemplateGrammar {
        let templates: Vec<_> = cands
            .iter()
            .map(|s| templatize(&parse_program(s).unwrap()).unwrap())
            .collect();
        let mut g = generate_td_grammar(&TdSpec {
            dim_list: dims,
            n_indices,
            allow_repeated_index: false,
            include_const: false,
        });
        learn_weights(&mut g, &templates);
        g
    }

    fn ctx_for(g: &TemplateGrammar) -> PenaltyContext {
        PenaltyContext {
            dim_list: g.dim_list.clone(),
            grammar_has_const: g.nts.constant.is_some(),
            live_ops: g.live_ops(),
            settings: PenaltySettings::all(),
        }
    }

    #[test]
    fn sharded_seen_set_is_exactly_once_under_contention() {
        let seen = Arc::new(ShardedSeenSet::new(8));
        let hits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let seen = Arc::clone(&seen);
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    for fp in 0u64..1000 {
                        if seen.insert(fp) {
                            hits.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        // 4 threads × 1000 shared fingerprints → exactly 1000 firsts.
        assert_eq!(hits.load(Ordering::SeqCst), 1000);
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn seen_set_merges_algebraically_equivalent_templates() {
        let seen = ShardedSeenSet::new(4);
        assert!(seen.insert_program(&parse_program("a(i) = b(i,j) * c(j)").unwrap()));
        // Commuted operands and renamed summation indices are the same
        // equivalence class — the old printed-form key missed both.
        assert!(!seen.insert_program(&parse_program("a(i) = c(j) * b(i,j)").unwrap()));
        assert!(!seen.insert_program(&parse_program("a(i) = b(i,k) * c(k)").unwrap()));
        // A transpose is a genuinely different template.
        assert!(seen.insert_program(&parse_program("a(i) = b(j,i) * c(j)").unwrap()));
    }

    #[test]
    fn fingerprints_distinguish_programs() {
        let a = parse_program("a(i) = b(i,j) * c(j)").unwrap();
        let b = parse_program("a(i) = b(j,i) * c(j)").unwrap();
        assert_ne!(fingerprint_program(&a), fingerprint_program(&b));
        assert_eq!(fingerprint_program(&a), fingerprint_program(&a.clone()));
    }

    #[test]
    fn cancel_flag_is_sticky_and_shared() {
        let flag = CancelFlag::new();
        assert!(!flag.is_cancelled());
        std::thread::scope(|s| {
            s.spawn(|| flag.cancel());
        });
        assert!(flag.is_cancelled());
        flag.cancel();
        assert!(flag.is_cancelled());
    }

    #[test]
    fn parallel_finds_gemv_template() {
        let g = grammar_with(
            &[
                "r(i) = m(i,j) * v(j)",
                "r(i) = m(j,i) * v(i)",
                "r(i) = m(i,j) * v(i)",
            ],
            vec![1, 2, 1],
            2,
        );
        let ctx = ctx_for(&g);
        let want = parse_program("a(i) = b(i,j) * c(j)").unwrap();
        let out = parallel_top_down_search(
            &g,
            &ctx,
            SearchBudget::default(),
            ParallelOptions::with_jobs(4),
            |_worker| {
                let want = want.clone();
                move |t: &TacoProgram| {
                    if *t == want {
                        CheckOutcome::Verified(t.clone())
                    } else {
                        CheckOutcome::Failed
                    }
                }
            },
        );
        assert!(out.solved(), "parallel search must solve gemv");
        assert_eq!(out.solution.unwrap(), want);
        assert_eq!(out.stop, StopReason::Solved);
    }

    #[test]
    fn no_template_is_checked_twice_across_workers() {
        // Every checker invocation registers the template; the sharded
        // seen-set must make each canonical template reach a checker at
        // most once even with 4 workers racing. Identity is the
        // canonical key — the printed form is ambiguous (`(x*y)/z` and
        // `x*(y/z)` display identically but are distinct templates).
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        let checked = Arc::new(Mutex::new(Vec::<String>::new()));
        let out = parallel_top_down_search(
            &g,
            &ctx,
            SearchBudget {
                max_attempts: 200,
                ..SearchBudget::default()
            },
            ParallelOptions::with_jobs(4),
            |_worker| {
                let checked = Arc::clone(&checked);
                move |t: &TacoProgram| {
                    checked.lock().unwrap().push(gtl_taco::canonical_key(t));
                    CheckOutcome::Failed
                }
            },
        );
        assert!(!out.solved());
        let seen = checked.lock().unwrap();
        let mut dedup = seen.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(
            seen.len(),
            dedup.len(),
            "a template reached checkers twice: {seen:?}"
        );
        assert!(!seen.is_empty(), "search should have checked something");
    }

    #[test]
    fn workers_stop_after_first_verification() {
        // Accept the very first template each worker sees; after the
        // winning verification cancels the run, no further checks may
        // start. With 4 workers the total number of checker calls is at
        // most the number of workers (each may have had one in flight).
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        let calls = Arc::new(AtomicUsize::new(0));
        let out = parallel_top_down_search(
            &g,
            &ctx,
            SearchBudget::default(),
            ParallelOptions::with_jobs(4),
            |_worker| {
                let calls = Arc::clone(&calls);
                move |t: &TacoProgram| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    CheckOutcome::Verified(t.clone())
                }
            },
        );
        assert!(out.solved());
        assert!(
            calls.load(Ordering::SeqCst) <= 4,
            "workers kept checking after cancellation: {} calls",
            calls.load(Ordering::SeqCst)
        );
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates_instead_of_hanging() {
        // A checker panic must cancel the siblings and resurface via
        // thread::scope — never strand the pool spinning on a frontier
        // that will not drain.
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        let _ = parallel_top_down_search(
            &g,
            &ctx,
            SearchBudget::default(),
            ParallelOptions::with_jobs(4),
            |_worker| |_t: &TacoProgram| -> CheckOutcome { panic!("checker exploded") },
        );
    }

    #[test]
    fn external_cancel_stops_workers_promptly() {
        // Raise the caller's flag after the fifth check: the run must end
        // `Cancelled`, and after the raise each worker may finish at most
        // the one check it already had in flight.
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        let cancel = Arc::new(CancelFlag::new());
        let hooks = SearchHooks::with_cancel(Arc::clone(&cancel));
        let calls = Arc::new(AtomicUsize::new(0));
        let out = parallel_top_down_search_hooked(
            &g,
            &ctx,
            SearchBudget {
                max_attempts: 100_000,
                max_nodes: 1_000_000,
                ..SearchBudget::default()
            },
            ParallelOptions::with_jobs(4),
            &hooks,
            |_worker| {
                let calls = Arc::clone(&calls);
                let cancel = Arc::clone(&cancel);
                move |_t: &TacoProgram| {
                    if calls.fetch_add(1, Ordering::SeqCst) + 1 >= 5 {
                        cancel.cancel();
                    }
                    CheckOutcome::Failed
                }
            },
        );
        assert_eq!(out.stop, StopReason::Cancelled);
        assert!(!out.solved());
        assert!(
            calls.load(Ordering::SeqCst) <= 5 + 4,
            "workers kept checking long after cancellation: {} calls",
            calls.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn pre_raised_cancel_stops_sequential_path_immediately() {
        // jobs = 1 routes through the hooked sequential loop; a flag
        // raised before the first pop must stop it before any check.
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        let cancel = Arc::new(CancelFlag::new());
        cancel.cancel();
        let hooks = SearchHooks::with_cancel(Arc::clone(&cancel));
        let out = parallel_top_down_search_hooked(
            &g,
            &ctx,
            SearchBudget::default(),
            ParallelOptions::with_jobs(1),
            &hooks,
            |_worker| |_t: &TacoProgram| -> CheckOutcome { panic!("must never be checked") },
        );
        assert_eq!(out.stop, StopReason::Cancelled);
        assert_eq!(out.attempts, 0);
    }

    #[test]
    fn progress_hook_tracks_counters_live() {
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        let progress = Arc::new(SearchProgress::new());
        let hooks = SearchHooks {
            cancel: None,
            progress: Some(Arc::clone(&progress)),
        };
        let out = parallel_top_down_search_hooked(
            &g,
            &ctx,
            SearchBudget {
                max_attempts: 50,
                ..SearchBudget::default()
            },
            ParallelOptions::with_jobs(2),
            &hooks,
            |_worker| |_t: &TacoProgram| CheckOutcome::Failed,
        );
        // The tracker is the engine's own counter storage, so the final
        // outcome must agree with it exactly.
        assert_eq!(progress.nodes(), out.nodes_expanded);
        assert_eq!(progress.attempts(), out.attempts);
        assert!(progress.nodes() > 0);
    }

    #[test]
    fn jobs_one_matches_sequential_exactly() {
        let g = grammar_with(
            &["r(i) = m(i,j) * v(j)", "r(i) = m(j,i) * v(i)"],
            vec![1, 2, 1],
            2,
        );
        let ctx = ctx_for(&g);
        let want = parse_program("a(i) = b(j,i) * c(j)").unwrap();
        let mk = |want: TacoProgram| {
            move |t: &TacoProgram| {
                if *t == want {
                    CheckOutcome::Verified(t.clone())
                } else {
                    CheckOutcome::Failed
                }
            }
        };
        let mut sequential_checker = mk(want.clone());
        let seq_out = crate::top_down_search(
            &g,
            &ctx,
            SearchBudget::default(),
            &mut sequential_checker,
        );
        let par_out = parallel_top_down_search(
            &g,
            &ctx,
            SearchBudget::default(),
            ParallelOptions::with_jobs(1),
            |_| mk(want.clone()),
        );
        assert_eq!(seq_out.solution, par_out.solution);
        assert_eq!(seq_out.template, par_out.template);
        assert_eq!(seq_out.attempts, par_out.attempts);
        assert_eq!(seq_out.nodes_expanded, par_out.nodes_expanded);
        assert_eq!(seq_out.stop, par_out.stop);
    }

    #[test]
    fn batched_pops_preserve_exactly_once_and_classification() {
        // The contention optimisation (pop up to k nodes per lock
        // acquisition) must not change the engine's guarantees: no
        // template reaches a checker twice, and exhaustion
        // classification matches the unbatched run and the sequential
        // loop. The depth limit makes the space small enough to
        // genuinely exhaust, so the distinct-template set is
        // order-independent and must be identical at every batch size.
        let g = grammar_with(&["r(i) = m(i) + v(i)"], vec![1, 1, 1], 1);
        let ctx = ctx_for(&g);
        let budget = SearchBudget {
            max_nodes: 500_000,
            max_attempts: 200_000,
            max_depth: 3,
            ..SearchBudget::default()
        };
        let seq = {
            let mut never = |_t: &TacoProgram| CheckOutcome::Failed;
            crate::top_down_search(&g, &ctx, budget, &mut never)
        };
        let mut reference: Option<Vec<String>> = None;
        for pop_batch in [1, 2, 8, 64] {
            let checked = Arc::new(Mutex::new(Vec::<String>::new()));
            let out = {
                let exp_opts = ParallelOptions {
                    jobs: 4,
                    pop_batch,
                    ..ParallelOptions::default()
                };
                let checked = Arc::clone(&checked);
                parallel_top_down_search(&g, &ctx, budget, exp_opts, move |_worker| {
                    let checked = Arc::clone(&checked);
                    move |t: &TacoProgram| {
                        checked.lock().unwrap().push(gtl_taco::canonical_key(t));
                        CheckOutcome::Failed
                    }
                })
            };
            assert_eq!(seq.stop, StopReason::Exhausted, "space must exhaust");
            assert_eq!(out.stop, seq.stop, "pop_batch {pop_batch} classification");
            let seen = checked.lock().unwrap();
            let mut dedup = seen.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(
                seen.len(),
                dedup.len(),
                "pop_batch {pop_batch}: a template reached checkers twice"
            );
            // Dedup means a parallel run checks at most as many
            // templates as sequential attempts…
            assert!(seen.len() as u64 <= seq.attempts);
            // …and on full exhaustion every batching level explores the
            // identical distinct-template set.
            match &reference {
                None => reference = Some(dedup),
                Some(reference) => assert_eq!(
                    *reference, dedup,
                    "pop_batch {pop_batch}: distinct template set diverged"
                ),
            }
        }
    }

    #[test]
    fn batched_pops_keep_jobs_one_bit_identical() {
        // jobs <= 1 routes through the sequential loop, so the batching
        // knob must be a no-op there — the determinism contract.
        let g = grammar_with(
            &["r(i) = m(i,j) * v(j)", "r(i) = m(j,i) * v(i)"],
            vec![1, 2, 1],
            2,
        );
        let ctx = ctx_for(&g);
        let want = parse_program("a(i) = b(j,i) * c(j)").unwrap();
        let mk = |want: TacoProgram| {
            move |t: &TacoProgram| {
                if *t == want {
                    CheckOutcome::Verified(t.clone())
                } else {
                    CheckOutcome::Failed
                }
            }
        };
        let mut sequential_checker = mk(want.clone());
        let seq = crate::top_down_search(
            &g,
            &ctx,
            SearchBudget::default(),
            &mut sequential_checker,
        );
        let batched = parallel_top_down_search(
            &g,
            &ctx,
            SearchBudget::default(),
            ParallelOptions {
                jobs: 1,
                pop_batch: 64,
                ..ParallelOptions::default()
            },
            |_| mk(want.clone()),
        );
        assert_eq!(seq.solution, batched.solution);
        assert_eq!(seq.template, batched.template);
        assert_eq!(seq.attempts, batched.attempts);
        assert_eq!(seq.nodes_expanded, batched.nodes_expanded);
        assert_eq!(seq.stop, batched.stop);
    }

    #[test]
    fn batched_pops_solve_and_cancel_promptly() {
        let g = grammar_with(
            &[
                "r(i) = m(i,j) * v(j)",
                "r(i) = m(j,i) * v(i)",
                "r(i) = m(i,j) * v(i)",
            ],
            vec![1, 2, 1],
            2,
        );
        let ctx = ctx_for(&g);
        let want = parse_program("a(i) = b(i,j) * c(j)").unwrap();
        let calls = Arc::new(AtomicUsize::new(0));
        let out = parallel_top_down_search(
            &g,
            &ctx,
            SearchBudget::default(),
            ParallelOptions {
                jobs: 4,
                pop_batch: 16,
                ..ParallelOptions::default()
            },
            |_worker| {
                let want = want.clone();
                let calls = Arc::clone(&calls);
                move |t: &TacoProgram| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    if *t == want {
                        CheckOutcome::Verified(t.clone())
                    } else {
                        CheckOutcome::Failed
                    }
                }
            },
        );
        assert!(out.solved());
        assert_eq!(out.stop, StopReason::Solved);
        // Abandoned batch entries must not be double-counted or strand
        // the run; the check count stays bounded by distinct templates.
        assert!(calls.load(Ordering::SeqCst) as u64 <= out.attempts + 4);
    }

    #[test]
    fn parallel_bottom_up_solves_chains() {
        let templates: Vec<_> = ["r(i) = m(i,j) * v(j)"]
            .iter()
            .map(|s| templatize(&parse_program(s).unwrap()).unwrap())
            .collect();
        let mut g = gtl_template::generate_bu_grammar(&TdSpec {
            dim_list: vec![1, 2, 1],
            n_indices: 2,
            allow_repeated_index: false,
            include_const: false,
        });
        learn_weights(&mut g, &templates);
        let ctx = ctx_for(&g);
        let want = parse_program("a(i) = b(i,j) * c(j)").unwrap();
        let out = parallel_bottom_up_search(
            &g,
            &ctx,
            SearchBudget::default(),
            ParallelOptions::with_jobs(3),
            |_worker| {
                let want = want.clone();
                move |t: &TacoProgram| {
                    if *t == want {
                        CheckOutcome::Verified(t.clone())
                    } else {
                        CheckOutcome::Failed
                    }
                }
            },
        );
        assert!(out.solved());
    }

    #[test]
    fn exhaustion_classification_is_preserved_in_parallel() {
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        let budget = SearchBudget {
            max_nodes: 200_000,
            max_attempts: 100_000,
            ..SearchBudget::default()
        };
        let seq = {
            let mut never = |_t: &TacoProgram| CheckOutcome::Failed;
            crate::top_down_search(&g, &ctx, budget, &mut never)
        };
        let par = parallel_top_down_search(&g, &ctx, budget, ParallelOptions::with_jobs(4), |_| {
            |_t: &TacoProgram| CheckOutcome::Failed
        });
        assert_eq!(seq.stop, par.stop, "stop classification must agree");
    }
}
