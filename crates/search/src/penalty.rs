//! The penalty functions X(x) of §5.1 (top-down: a1–a5) and §5.2
//! (bottom-up: b1–b2).
//!
//! Interpretive notes (the paper leaves some wording open; these choices
//! are documented in DESIGN.md):
//!
//! - A template's *length* is its operand count including the LHS, which
//!   equals the dimension-list length when they match.
//! - a2 fires on complete templates of the wrong length and on partial
//!   templates that have already *exceeded* the predicted length (they
//!   cannot shrink).
//! - a5/b2's "operations defined in the grammar" are the operators with
//!   substantial learned weight ([`gtl_template::TemplateGrammar::live_ops`]);
//!   templates with no operator at all are exempt.

use gtl_taco::{BinOp, Expr, TacoProgram};

use crate::node::TreeFacts;

/// Which penalty rules are active — the knobs behind Table 2's
/// `Drop(a1)…Drop(b2)` ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PenaltySettings {
    /// a1: bias against long expressions with poor index variety and no
    /// constant (weight 10).
    pub a1: bool,
    /// a2: length must match the dimension list (weight 100).
    pub a2: bool,
    /// a3: tensor symbols alphabetical by first appearance (∞).
    pub a3: bool,
    /// a4: no `+`, `-`, `/` applied to two copies of the same tensor (∞).
    pub a4: bool,
    /// a5: must use at least half the live operators (∞).
    pub a5: bool,
    /// b1: bottom-up alphabetical-order penalty (weight 100).
    pub b1: bool,
    /// b2: bottom-up operator-coverage penalty (∞).
    pub b2: bool,
}

impl PenaltySettings {
    /// Everything enabled (the paper's default).
    pub fn all() -> PenaltySettings {
        PenaltySettings {
            a1: true,
            a2: true,
            a3: true,
            a4: true,
            a5: true,
            b1: true,
            b2: true,
        }
    }

    /// Everything disabled — the `Drop(A)` / `Drop(B)` ablations.
    pub fn none() -> PenaltySettings {
        PenaltySettings {
            a1: false,
            a2: false,
            a3: false,
            a4: false,
            a5: false,
            b1: false,
            b2: false,
        }
    }

    /// Disables one named rule (e.g. `"a3"`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown rule name.
    pub fn drop_rule(mut self, name: &str) -> PenaltySettings {
        match name {
            "a1" => self.a1 = false,
            "a2" => self.a2 = false,
            "a3" => self.a3 = false,
            "a4" => self.a4 = false,
            "a5" => self.a5 = false,
            "b1" => self.b1 = false,
            "b2" => self.b2 = false,
            other => panic!("unknown penalty rule `{other}`"),
        }
        self
    }
}

impl Default for PenaltySettings {
    fn default() -> Self {
        PenaltySettings::all()
    }
}

/// Static context shared by all penalty evaluations for one query.
#[derive(Debug, Clone)]
pub struct PenaltyContext {
    /// The predicted dimension list (may be empty for full grammars).
    pub dim_list: Vec<usize>,
    /// Whether the grammar includes a constant expression (a1's guard).
    pub grammar_has_const: bool,
    /// Operators with substantial learned weight.
    pub live_ops: Vec<BinOp>,
    /// Active rules.
    pub settings: PenaltySettings,
}

impl PenaltyContext {
    fn predicted_len(&self) -> Option<usize> {
        if self.dim_list.is_empty() {
            None
        } else {
            Some(self.dim_list.len())
        }
    }

    /// Minimum distinct operators a complete multi-operand template must
    /// use: half the live set, rounded up.
    fn min_ops(&self) -> usize {
        self.live_ops.len().div_ceil(2)
    }
}

/// Does the sequence of distinct tensor symbols, in order of first
/// appearance, follow the alphabet `a, b, c…`? (a3 / b1.)
fn alphabetical_by_first_appearance(facts: &TreeFacts) -> bool {
    let mut seen: Vec<&str> = Vec::new();
    for acc in &facts.accesses {
        let name = acc.tensor.as_str();
        if !seen.contains(&name) {
            seen.push(name);
        }
    }
    seen.iter()
        .enumerate()
        .all(|(n, s)| s.as_bytes() == [b'a' + n as u8])
}

/// a1: grammar has constants, expression is long, but the template lacks
/// index variety or a constant (weight 10).
fn a1_violated(facts: &TreeFacts, ctx: &PenaltyContext) -> bool {
    if !ctx.grammar_has_const {
        return false;
    }
    // "length of x exceeds 3": operand count including the LHS.
    if facts.rhs_operand_slots < 3 {
        return false;
    }
    let tensors_with_i = facts
        .accesses
        .iter()
        .skip(1) // LHS
        .filter(|a| a.indices.iter().any(|ix| ix.as_str() == "i"))
        .count();
    tensors_with_i < 2 || !facts.has_const
}

/// a4: a complete template applying `+`, `-` or `/` to two structurally
/// identical operands (∞).
fn a4_violated(program: &TacoProgram) -> bool {
    fn scan(e: &Expr) -> bool {
        match e {
            Expr::Binary { op, lhs, rhs } => {
                let same = lhs == rhs;
                let bad_op = matches!(op, BinOp::Add | BinOp::Sub | BinOp::Div);
                (same && bad_op) || scan(lhs) || scan(rhs)
            }
            Expr::Neg(inner) => scan(inner),
            Expr::Access(_) | Expr::Const(_) | Expr::ConstSym(_) => false,
        }
    }
    scan(&program.rhs)
}

/// Operator-coverage check shared by a5 and b2: a template with at least
/// one operator position must be able to use at least `min_ops` distinct
/// live operators. Unexpanded operator holes count as potential distinct
/// operators so partial trees are not pruned prematurely.
fn op_coverage_violated(facts: &TreeFacts, ctx: &PenaltyContext) -> bool {
    if facts.ops.is_empty() && facts.op_holes == 0 {
        return false;
    }
    let mut distinct: Vec<BinOp> = Vec::new();
    for o in &facts.ops {
        if !distinct.contains(o) {
            distinct.push(*o);
        }
    }
    distinct.len() + facts.op_holes < ctx.min_ops()
}

/// The top-down penalty X(x) over (partial or complete) templates
/// (§5.1). `program` is the converted template when complete.
pub fn td_penalty(
    facts: &TreeFacts,
    program: Option<&TacoProgram>,
    ctx: &PenaltyContext,
) -> f64 {
    let s = &ctx.settings;
    let mut x = 0.0f64;
    if s.a1 && a1_violated(facts, ctx) {
        x += 10.0;
    }
    if s.a2 {
        if let Some(len) = ctx.predicted_len() {
            let current = facts.rhs_operand_slots + 1;
            let violated = if facts.complete {
                current != len
            } else {
                current > len
            };
            if violated {
                x += 100.0;
            }
        }
    }
    if s.a3 && !alphabetical_by_first_appearance(facts) {
        return f64::INFINITY;
    }
    if let Some(p) = program {
        if s.a4 && a4_violated(p) {
            return f64::INFINITY;
        }
        if s.a5 && op_coverage_violated(facts, ctx) {
            return f64::INFINITY;
        }
    }
    x
}

/// The bottom-up penalty X(x) (§5.2).
pub fn bu_penalty(facts: &TreeFacts, ctx: &PenaltyContext) -> f64 {
    let s = &ctx.settings;
    let mut x = 0.0f64;
    if s.b1 && !alphabetical_by_first_appearance(facts) {
        x += 100.0;
    }
    if s.b2 {
        if let Some(len) = ctx.predicted_len() {
            // Fires once the template holds at least the predicted number
            // of tensors yet uses too few operators.
            if facts.rhs_operand_slots + 1 >= len && op_coverage_violated(facts, ctx) {
                return f64::INFINITY;
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_taco::{parse_program, Access};

    fn facts_of(src: &str) -> (TreeFacts, TacoProgram) {
        let p = parse_program(src).unwrap();
        let mut accesses = vec![p.lhs.clone()];
        accesses.extend(p.rhs.accesses().into_iter().cloned());
        let facts = TreeFacts {
            accesses,
            has_const: p.rhs.has_const_sym(),
            ops: p.rhs.operators(),
            rhs_operand_slots: p.rhs.operands().len(),
            op_holes: 0,
            complete: true,
        };
        (facts, p)
    }

    fn ctx(dim_list: Vec<usize>, live: Vec<BinOp>) -> PenaltyContext {
        PenaltyContext {
            dim_list,
            grammar_has_const: true,
            live_ops: live,
            settings: PenaltySettings::all(),
        }
    }

    #[test]
    fn a3_kills_out_of_order_symbols() {
        let (facts, p) = facts_of("a(i) = c(i) * b(i)");
        let c = ctx(vec![1, 1, 1], vec![BinOp::Mul]);
        assert!(td_penalty(&facts, Some(&p), &c).is_infinite());
    }

    #[test]
    fn a2_penalises_wrong_length() {
        let (facts, p) = facts_of("a(i) = b(i)");
        let c = ctx(vec![1, 1, 1], vec![BinOp::Mul]);
        let x = td_penalty(&facts, Some(&p), &c);
        assert!((x - 100.0).abs() < 1e-9);
    }

    #[test]
    fn a4_kills_self_subtraction() {
        let (facts, p) = facts_of("a(i) = b(i) - b(i)");
        let c = ctx(vec![1, 1, 1], vec![BinOp::Sub]);
        assert!(td_penalty(&facts, Some(&p), &c).is_infinite());
        // Self-multiplication is fine (sum of squares).
        let (f2, p2) = facts_of("a = b(i) * b(i)");
        let c2 = ctx(vec![0, 1, 1], vec![BinOp::Mul]);
        assert_eq!(td_penalty(&f2, Some(&p2), &c2), 0.0);
    }

    #[test]
    fn a5_requires_op_coverage() {
        // Live ops {+, *}: min 1 distinct → * alone passes.
        let (facts, p) = facts_of("a(i) = b(i,j) * c(j)");
        let c = ctx(vec![1, 2, 1], vec![BinOp::Add, BinOp::Mul]);
        assert_eq!(td_penalty(&facts, Some(&p), &c), 0.0);
        // Live ops {+,-,*}: min 2 distinct → * alone fails.
        let c3 = ctx(vec![1, 2, 1], vec![BinOp::Add, BinOp::Sub, BinOp::Mul]);
        assert!(td_penalty(&facts, Some(&p), &c3).is_infinite());
    }

    #[test]
    fn a1_bias_on_long_expressions() {
        // 3 RHS operands (length 4), has const in grammar, no const used,
        // and only one tensor uses i.
        let (facts, p) = facts_of("a(i) = b(i) + c(j) + d(j)");
        let mut c = ctx(vec![1, 1, 1, 1], vec![BinOp::Add]);
        let x = td_penalty(&facts, Some(&p), &c);
        assert!(x >= 10.0);
        // Dropping a1 removes the bias.
        c.settings = c.settings.drop_rule("a1");
        let x2 = td_penalty(&facts, Some(&p), &c);
        assert!(x2 < 10.0);
    }

    #[test]
    fn b1_soft_alphabetical() {
        let (facts, _) = facts_of("a(i) = c(i) * b(i)");
        let c = ctx(vec![1, 1, 1], vec![BinOp::Mul]);
        assert_eq!(bu_penalty(&facts, &c), 100.0);
    }

    #[test]
    fn b2_fires_at_predicted_size() {
        let (facts, _) = facts_of("a(i) = b(i) + c(i)");
        // Live {+,-,*,/}: min 2; only + used and size reached.
        let c = ctx(vec![1, 1, 1], BinOp::ALL.to_vec());
        assert!(bu_penalty(&facts, &c).is_infinite());
        // Below predicted size: no penalty.
        let c2 = ctx(vec![1, 1, 1, 1], BinOp::ALL.to_vec());
        assert_eq!(bu_penalty(&facts, &c2), 0.0);
    }

    #[test]
    fn partial_a2_only_when_exceeded() {
        let facts = TreeFacts {
            accesses: vec![Access::new("a", &["i"])],
            has_const: false,
            ops: vec![],
            rhs_operand_slots: 1,
            op_holes: 0,
            complete: false,
        };
        let mut c = ctx(vec![1, 1, 1], vec![BinOp::Mul]);
        c.grammar_has_const = false; // isolate a2 from a1
        assert_eq!(td_penalty(&facts, None, &c), 0.0, "can still grow");
        let facts_big = TreeFacts {
            rhs_operand_slots: 4,
            ..facts
        };
        assert!((td_penalty(&facts_big, None, &c) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn settings_dropping() {
        let s = PenaltySettings::all().drop_rule("a4");
        assert!(!s.a4);
        assert!(s.a3);
        let (facts, p) = facts_of("a(i) = b(i) - b(i)");
        let mut c = ctx(vec![1, 1, 1], vec![BinOp::Sub]);
        c.settings = s;
        assert!(!td_penalty(&facts, Some(&p), &c).is_infinite());
    }
}
