//! The two template-space search algorithms of the paper (§5).
//!
//! - [`top_down_search`] — Algorithm 1: weighted A\* over partial
//!   derivation trees of the refined top-down grammar, with penalty
//!   functions a1–a5;
//! - [`bottom_up_search`] — Algorithm 2: A\*-guided bottom-up chain
//!   construction over the tail grammar, with `RemoveTail` validation and
//!   penalties b1–b2.
//!
//! Both algorithms are driven by `f(x) = c(x) + g(x) + X(x)` where `c`
//! accumulates rule costs `-log2 P`, `g` estimates completion cost, and
//! `X` penalises syntactic-constraint violations. Complete templates are
//! handed to a [`TemplateChecker`] (the validation + verification stages
//! of §6/§7); the first verified template wins.
//!
//! # Example
//!
//! ```
//! use gtl_search::*;
//! use gtl_taco::{parse_program, TacoProgram};
//! use gtl_template::{generate_td_grammar, learn_weights, templatize, TdSpec};
//!
//! // A grammar learned from two LLM-style candidates.
//! let cands: Vec<_> = ["r(i) = m(i,j) * v(j)", "r(i) = m(j,i) * v(i)"]
//!     .iter()
//!     .map(|s| templatize(&parse_program(s).unwrap()).unwrap())
//!     .collect();
//! let mut g = generate_td_grammar(&TdSpec {
//!     dim_list: vec![1, 2, 1],
//!     n_indices: 2,
//!     allow_repeated_index: false,
//!     include_const: false,
//! });
//! learn_weights(&mut g, &cands);
//!
//! let ctx = PenaltyContext {
//!     dim_list: g.dim_list.clone(),
//!     grammar_has_const: g.nts.constant.is_some(),
//!     live_ops: g.live_ops(),
//!     settings: PenaltySettings::all(),
//! };
//! // A toy checker accepting the known answer.
//! let want = parse_program("a(i) = b(i,j) * c(j)").unwrap();
//! let mut checker = move |t: &TacoProgram| {
//!     if *t == want { CheckOutcome::Verified(t.clone()) } else { CheckOutcome::Failed }
//! };
//! let out = top_down_search(&g, &ctx, SearchBudget::default(), &mut checker);
//! assert!(out.solved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bottomup;
mod driver;
mod frontier;
pub mod node;
mod parallel;
mod penalty;
mod topdown;

pub use bottomup::bottom_up_search;
pub use driver::{
    CheckOutcome, SearchBudget, SearchHooks, SearchOutcome, SearchProgress, StopReason,
    TemplateChecker,
};
pub use parallel::{
    fingerprint_program, parallel_bottom_up_search, parallel_bottom_up_search_hooked,
    parallel_top_down_search, parallel_top_down_search_hooked, CancelFlag, ParallelOptions,
    ShardedSeenSet,
};
pub use penalty::{bu_penalty, td_penalty, PenaltyContext, PenaltySettings};
pub use topdown::top_down_search;
