//! Shared search driver types: the checker interface, budgets, outcomes
//! and the externally-visible hooks (cancellation, live progress) a
//! serving layer attaches to a running search.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gtl_taco::TacoProgram;

use crate::parallel::CancelFlag;

/// The downstream validation + verification stage (§6 and §7), invoked on
/// every complete template the search produces. Implementations try all
/// substitutions against I/O examples and, on a hit, run bounded
/// verification; only a template that passes both is a
/// [`CheckOutcome::Verified`].
pub trait TemplateChecker {
    /// Checks one complete template; on success returns the concrete
    /// program (template with the winning substitution applied).
    fn check(&mut self, template: &TacoProgram) -> CheckOutcome;

    /// Checks a batch of templates in order, returning the index of the
    /// first verified template together with its concrete program.
    ///
    /// `should_stop` is polled between templates — the batched engine
    /// passes its cancellation/budget poll, so a worker draining a batch
    /// stops mid-flush as promptly as the scalar loop stops between
    /// nodes (at most the one in-flight `check` completes after a stop).
    ///
    /// The default implementation simply calls [`TemplateChecker::check`]
    /// per template; checkers with batch-aware internals (substitution
    /// lanes, shared example evaluation) can override it.
    fn check_many(
        &mut self,
        templates: &[TacoProgram],
        should_stop: &mut dyn FnMut() -> bool,
    ) -> Option<(usize, TacoProgram)> {
        for (i, t) in templates.iter().enumerate() {
            if should_stop() {
                return None;
            }
            if let CheckOutcome::Verified(concrete) = self.check(t) {
                return Some((i, concrete));
            }
        }
        None
    }
}

/// Result of checking one template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// A substitution validated on all I/O examples and passed bounded
    /// verification.
    Verified(TacoProgram),
    /// No substitution survived.
    Failed,
}

impl<F> TemplateChecker for F
where
    F: FnMut(&TacoProgram) -> CheckOutcome,
{
    fn check(&mut self, template: &TacoProgram) -> CheckOutcome {
        self(template)
    }
}

/// Resource budget for one search run.
#[derive(Debug, Clone, Copy)]
pub struct SearchBudget {
    /// Maximum queue pops (node expansions).
    pub max_nodes: u64,
    /// Maximum complete templates sent to the checker ("attempts").
    pub max_attempts: u64,
    /// Wall-clock limit.
    pub time_limit: Duration,
    /// Maximum expression depth (§5.1 uses 6).
    pub max_depth: usize,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_nodes: 500_000,
            max_attempts: 30_000,
            time_limit: Duration::from_secs(10),
            max_depth: 6,
        }
    }
}

/// Why a search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A verified solution was found.
    Solved,
    /// The queue emptied: the (penalty-pruned) space is exhausted.
    Exhausted,
    /// A budget limit was hit.
    BudgetExceeded,
    /// An external [`CancelFlag`] (client disconnect, request timeout,
    /// server shutdown) was raised mid-search.
    Cancelled,
}

/// Live, externally observable counters of a running search.
///
/// A serving layer hands one of these to the engine through
/// [`SearchHooks`] and polls it from another thread to stream
/// `search_progress` events; the engine publishes with relaxed atomics,
/// so reads are cheap and never block a worker.
#[derive(Debug, Default)]
pub struct SearchProgress {
    nodes: AtomicU64,
    attempts: AtomicU64,
}

impl SearchProgress {
    /// A fresh, zeroed progress tracker.
    pub fn new() -> SearchProgress {
        SearchProgress::default()
    }

    /// Queue pops so far.
    pub fn nodes(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Complete templates sent to checkers so far.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Adds one queue pop, returning the new total.
    pub(crate) fn add_node(&self) -> u64 {
        self.nodes.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Adds one checker attempt, returning the new total.
    pub(crate) fn add_attempt(&self) -> u64 {
        self.attempts.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Overwrites both counters (sequential engine: mirrors its private
    /// loop counters outward once per iteration).
    pub(crate) fn record(&self, nodes: u64, attempts: u64) {
        self.nodes.store(nodes, Ordering::Relaxed);
        self.attempts.store(attempts, Ordering::Relaxed);
    }
}

/// External attachments to one search run: a cancellation flag the
/// caller may raise at any time, and a progress tracker the caller may
/// poll while the search runs. Both are optional; `SearchHooks::default()`
/// attaches nothing and costs one untaken branch per loop iteration.
#[derive(Debug, Clone, Default)]
pub struct SearchHooks {
    /// Raised by the caller to stop the search; the outcome then reports
    /// [`StopReason::Cancelled`]. Workers poll it between frontier pops.
    pub cancel: Option<Arc<CancelFlag>>,
    /// Live node/attempt counters updated by the engine while running.
    pub progress: Option<Arc<SearchProgress>>,
}

impl SearchHooks {
    /// Hooks carrying just a cancellation flag.
    pub fn with_cancel(cancel: Arc<CancelFlag>) -> SearchHooks {
        SearchHooks {
            cancel: Some(cancel),
            progress: None,
        }
    }

    /// Whether the external cancel flag (if any) has been raised.
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
    }
}

/// The result of one search run, with the statistics the paper reports.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The verified concrete program, if found.
    pub solution: Option<TacoProgram>,
    /// The winning template (pre-substitution), if found.
    pub template: Option<TacoProgram>,
    /// Complete templates sent to validation — Table 1/3's "attempts".
    pub attempts: u64,
    /// Syntactically new candidates the engine skipped because an
    /// algebraically equivalent template (equal canonical fingerprint)
    /// had already been sent to a checker. Only the parallel engine's
    /// seen-set prunes at this layer; sequential runs report `0` here
    /// and prune equivalents at the validation layer instead.
    pub pruned_equivalent: u64,
    /// Queue pops.
    pub nodes_expanded: u64,
    /// Wall-clock time of the search stage.
    pub elapsed: Duration,
    /// Why the search stopped.
    pub stop: StopReason,
}

impl SearchOutcome {
    /// Whether a verified solution was produced.
    pub fn solved(&self) -> bool {
        self.solution.is_some()
    }
}

/// Internal stopwatch + counters shared by the two algorithms.
#[derive(Debug)]
pub(crate) struct RunState {
    pub started: Instant,
    pub budget: SearchBudget,
    pub attempts: u64,
    pub nodes: u64,
}

impl RunState {
    pub(crate) fn new(budget: SearchBudget) -> RunState {
        RunState {
            started: Instant::now(),
            budget,
            attempts: 0,
            nodes: 0,
        }
    }

    pub(crate) fn over_budget(&self) -> bool {
        self.nodes >= self.budget.max_nodes
            || self.attempts >= self.budget.max_attempts
            || self.started.elapsed() >= self.budget.time_limit
    }

    /// The outcome of an externally cancelled run.
    pub(crate) fn outcome_cancelled(self) -> SearchOutcome {
        SearchOutcome {
            solution: None,
            template: None,
            attempts: self.attempts,
            pruned_equivalent: 0,
            nodes_expanded: self.nodes,
            elapsed: self.started.elapsed(),
            stop: StopReason::Cancelled,
        }
    }

    pub(crate) fn outcome(
        self,
        solution: Option<(TacoProgram, TacoProgram)>,
        exhausted: bool,
    ) -> SearchOutcome {
        let stop = if solution.is_some() {
            StopReason::Solved
        } else if exhausted {
            StopReason::Exhausted
        } else {
            StopReason::BudgetExceeded
        };
        let (template, concrete) = match solution {
            Some((t, c)) => (Some(t), Some(c)),
            None => (None, None),
        };
        SearchOutcome {
            solution: concrete,
            template,
            attempts: self.attempts,
            pruned_equivalent: 0,
            nodes_expanded: self.nodes,
            elapsed: self.started.elapsed(),
            stop,
        }
    }
}

/// An `f64` ordered totally for use as a priority (lower first).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Priority(pub f64);

impl Eq for Priority {}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap and we want min-f first.
        other.0.total_cmp(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_min_first() {
        let mut heap = std::collections::BinaryHeap::new();
        heap.push((Priority(3.0), "c"));
        heap.push((Priority(1.0), "a"));
        heap.push((Priority(2.0), "b"));
        assert_eq!(heap.pop().unwrap().1, "a");
        assert_eq!(heap.pop().unwrap().1, "b");
    }

    #[test]
    fn budget_limits() {
        let mut rs = RunState::new(SearchBudget {
            max_nodes: 2,
            ..SearchBudget::default()
        });
        assert!(!rs.over_budget());
        rs.nodes = 2;
        assert!(rs.over_budget());
    }

    #[test]
    fn closure_is_a_checker() {
        let mut checker = |_t: &TacoProgram| CheckOutcome::Failed;
        let p = gtl_taco::parse_program("a(i) = b(i)").unwrap();
        assert_eq!(checker.check(&p), CheckOutcome::Failed);
    }

    #[test]
    fn check_many_returns_first_verified_and_short_circuits() {
        let p1 = gtl_taco::parse_program("a(i) = b(i)").unwrap();
        let p2 = gtl_taco::parse_program("a(i) = c(i)").unwrap();
        let calls = std::cell::Cell::new(0usize);
        let mut checker = |t: &TacoProgram| {
            calls.set(calls.get() + 1);
            if *t == p2 {
                CheckOutcome::Verified(t.clone())
            } else {
                CheckOutcome::Failed
            }
        };
        let batch = [p1.clone(), p2.clone(), p1.clone()];
        let got = checker.check_many(&batch, &mut || false);
        assert_eq!(got, Some((1, p2.clone())));
        assert_eq!(calls.get(), 2, "templates after the hit are not checked");
    }

    #[test]
    fn check_many_polls_stop_between_templates() {
        let p = gtl_taco::parse_program("a(i) = b(i)").unwrap();
        let mut checker = |t: &TacoProgram| CheckOutcome::Verified(t.clone());
        let batch = [p.clone(), p.clone()];
        // A pre-raised stop condition means no template is checked.
        assert_eq!(checker.check_many(&batch, &mut || true), None);
        // Stop raised after the first check: the second never runs.
        let first = std::cell::Cell::new(true);
        let calls = std::cell::Cell::new(0usize);
        let mut failing = |_t: &TacoProgram| {
            calls.set(calls.get() + 1);
            CheckOutcome::Failed
        };
        let got = failing.check_many(&batch, &mut || !first.replace(false));
        assert_eq!(got, None);
        assert_eq!(calls.get(), 1);
    }
}
