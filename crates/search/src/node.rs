//! Partial-template trees: the search states of both A\* algorithms.
//!
//! §4.2.4's refined grammar (`EXPR ::= TENSOR | EXPR OP EXPR`) is
//! ambiguous as a *string* language, but leftmost derivations correspond
//! one-to-one with ASTs — so search states are partial derivation trees
//! whose leaves are either terminals or nonterminal holes. Expanding the
//! leftmost hole with each applicable rule realises line 12 of
//! Algorithms 1 and 2.

use gtl_grammar::{NtId, Pcfg, RuleId, Sym, TemplateTok};
use gtl_taco::{Access, BinOp, Expr, TacoProgram};
use gtl_template::build_chain_expr;

/// A node of a partial derivation tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    /// An unexpanded nonterminal.
    Hole(NtId),
    /// A terminal leaf.
    Term(TemplateTok),
    /// The children produced by applying a multi-symbol rule.
    Branch(Vec<Tree>),
}

impl Tree {
    /// Whether the tree contains no holes.
    pub fn is_complete(&self) -> bool {
        match self {
            Tree::Hole(_) => false,
            Tree::Term(_) => true,
            Tree::Branch(cs) => cs.iter().all(Tree::is_complete),
        }
    }

    /// The leftmost hole, if any.
    pub fn leftmost_hole(&self) -> Option<NtId> {
        match self {
            Tree::Hole(n) => Some(*n),
            Tree::Term(_) => None,
            Tree::Branch(cs) => cs.iter().find_map(Tree::leftmost_hole),
        }
    }

    /// All holes, left to right.
    pub fn holes(&self) -> Vec<NtId> {
        let mut out = Vec::new();
        self.collect_holes(&mut out);
        out
    }

    fn collect_holes(&self, out: &mut Vec<NtId>) {
        match self {
            Tree::Hole(n) => out.push(*n),
            Tree::Term(_) => {}
            Tree::Branch(cs) => {
                for c in cs {
                    c.collect_holes(out);
                }
            }
        }
    }

    /// Replaces the leftmost hole with the RHS of `rule`, returning the
    /// new tree. Returns `None` if there is no hole.
    pub fn expand_leftmost(&self, rule_rhs: &[Sym]) -> Option<Tree> {
        let mut done = false;
        let out = self.expand_inner(rule_rhs, &mut done);
        if done {
            Some(out)
        } else {
            None
        }
    }

    fn expand_inner(&self, rhs: &[Sym], done: &mut bool) -> Tree {
        if *done {
            return self.clone();
        }
        match self {
            Tree::Hole(_) => {
                *done = true;
                subtree_of_rhs(rhs)
            }
            Tree::Term(t) => Tree::Term(t.clone()),
            Tree::Branch(cs) => {
                Tree::Branch(cs.iter().map(|c| c.expand_inner(rhs, done)).collect())
            }
        }
    }

    /// Expression depth as the paper counts it (leaves depth 1, index
    /// expressions excluded); holes count as depth-1 leaves.
    pub fn expr_depth(&self) -> usize {
        match self {
            Tree::Hole(_) | Tree::Term(_) => 1,
            Tree::Branch(cs) => {
                // A binary-expression branch is [lhs, OP, rhs]; other
                // branches (program root, chains) are traversed without
                // adding depth for the operator slot.
                if cs.len() == 3 && is_op_slot(&cs[1]) {
                    1 + cs[0].expr_depth().max(cs[2].expr_depth())
                } else {
                    cs.iter().map(Tree::expr_depth).max().unwrap_or(1)
                }
            }
        }
    }
}

/// Whether a middle child marks a binary-expression branch. In top-down
/// trees the middle slot of `EXPR OP EXPR` is either an expanded operator
/// or a still-open `OP` hole; the program root's middle slot is `=` and is
/// therefore excluded.
fn is_op_slot(t: &Tree) -> bool {
    matches!(t, Tree::Term(TemplateTok::Op(_)) | Tree::Hole(_))
}

/// Builds the subtree for a rule right-hand side.
fn subtree_of_rhs(rhs: &[Sym]) -> Tree {
    let nodes: Vec<Tree> = rhs
        .iter()
        .map(|s| match s {
            Sym::Nt(n) => Tree::Hole(*n),
            Sym::T(t) => Tree::Term(t.clone()),
        })
        .collect();
    if nodes.len() == 1 {
        nodes.into_iter().next().expect("length checked")
    } else {
        Tree::Branch(nodes)
    }
}

/// Surface facts about a (possibly partial) tree, consumed by the
/// penalty functions.
#[derive(Debug, Clone, Default)]
pub struct TreeFacts {
    /// Tensor accesses placed so far, in order (LHS first).
    pub accesses: Vec<Access>,
    /// Whether a `Const` terminal is present.
    pub has_const: bool,
    /// Operators placed so far, in order.
    pub ops: Vec<BinOp>,
    /// Total operand slots on the right-hand side: placed accesses,
    /// placed constants and remaining holes that will each produce at
    /// least one operand.
    pub rhs_operand_slots: usize,
    /// Unexpanded operator holes — each may still become any operator,
    /// which the coverage penalties (a5/b2) must account for.
    pub op_holes: usize,
    /// Whether the tree is complete.
    pub complete: bool,
}

/// Extracts penalty-relevant facts. `op_nt` is the operator nonterminal
/// (its holes count as potential operators, not operands); `tails` are
/// the bottom-up `TAIL` nonterminals, whose holes may collapse to ε and
/// therefore promise nothing.
pub fn tree_facts(tree: &Tree, op_nt: NtId, tails: &[NtId]) -> TreeFacts {
    let mut f = TreeFacts {
        complete: tree.is_complete(),
        ..TreeFacts::default()
    };
    // The root is Branch([tensor1, '=', expr]); everything after '=' is
    // RHS. Walk the whole tree but only count operand slots after Eq.
    let mut seen_eq = false;
    walk(tree, op_nt, tails, &mut seen_eq, &mut f);
    f
}

fn walk(t: &Tree, op_nt: NtId, tails: &[NtId], seen_eq: &mut bool, f: &mut TreeFacts) {
    match t {
        Tree::Term(TemplateTok::Eq) => *seen_eq = true,
        Tree::Term(TemplateTok::Access(a)) => {
            f.accesses.push(a.clone());
            if *seen_eq {
                f.rhs_operand_slots += 1;
            }
        }
        Tree::Term(TemplateTok::ConstSym) => {
            f.has_const = true;
            if *seen_eq {
                f.rhs_operand_slots += 1;
            }
        }
        Tree::Term(TemplateTok::Op(o)) => f.ops.push(*o),
        Tree::Term(TemplateTok::Epsilon) => {}
        Tree::Hole(n) => {
            if *n == op_nt {
                f.op_holes += 1;
            } else if *seen_eq && !tails.contains(n) {
                f.rhs_operand_slots += 1;
            }
        }
        Tree::Branch(cs) => {
            for c in cs {
                walk(c, op_nt, tails, &mut *seen_eq, f);
            }
        }
    }
}

/// Conversion failure: the tree was not a well-formed program shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedTree;

impl std::fmt::Display for MalformedTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "derivation tree does not encode a program")
    }
}

impl std::error::Error for MalformedTree {}

/// Converts a complete *top-down* tree into a TACO template program,
/// preserving the derivation's AST structure (so `(b + c) * d` and
/// `b + c * d` stay distinct).
pub fn td_tree_to_program(tree: &Tree) -> Result<TacoProgram, MalformedTree> {
    let Tree::Branch(parts) = tree else {
        return Err(MalformedTree);
    };
    let [lhs_part, Tree::Term(TemplateTok::Eq), rhs_part] = parts.as_slice() else {
        return Err(MalformedTree);
    };
    let lhs = match lhs_part {
        Tree::Term(TemplateTok::Access(a)) => a.clone(),
        _ => return Err(MalformedTree),
    };
    let mut const_counter = 0u32;
    let rhs = td_expr(rhs_part, &mut const_counter)?;
    Ok(TacoProgram::new(lhs, rhs))
}

fn td_expr(t: &Tree, consts: &mut u32) -> Result<Expr, MalformedTree> {
    match t {
        Tree::Term(TemplateTok::Access(a)) => Ok(Expr::Access(a.clone())),
        Tree::Term(TemplateTok::ConstSym) => {
            let id = *consts;
            *consts += 1;
            Ok(Expr::ConstSym(id))
        }
        Tree::Branch(cs) => match cs.as_slice() {
            [l, Tree::Term(TemplateTok::Op(op)), r] => Ok(Expr::Binary {
                op: *op,
                lhs: Box::new(td_expr(l, consts)?),
                rhs: Box::new(td_expr(r, consts)?),
            }),
            [single] => td_expr(single, consts),
            _ => Err(MalformedTree),
        },
        _ => Err(MalformedTree),
    }
}

/// Converts a *bottom-up* tree (a tail chain) into a TACO template,
/// stripping an unexpanded trailing `TAIL` hole if present — the paper's
/// `RemoveTail` (Algorithm 2, line 7). `tails` identifies which
/// nonterminals are strippable; any other hole aborts the conversion.
pub fn bu_tree_to_program(tree: &Tree, tails: &[NtId]) -> Option<TacoProgram> {
    let Tree::Branch(parts) = tree else {
        return None;
    };
    let [lhs_part, Tree::Term(TemplateTok::Eq), rhs_part] = parts.as_slice() else {
        return None;
    };
    let lhs = match lhs_part {
        Tree::Term(TemplateTok::Access(a)) => a.clone(),
        _ => return None,
    };
    let mut leaves = Vec::new();
    let mut ops = Vec::new();
    let mut const_counter = 0u32;
    if !flatten_chain(rhs_part, tails, &mut leaves, &mut ops, &mut const_counter) {
        return None;
    }
    let rhs = build_chain_expr(&leaves, &ops)?;
    Some(TacoProgram::new(lhs, rhs))
}

/// Flattens a BU chain tree. Returns `false` if a non-tail hole remains.
/// A trailing tail hole (the last position) is silently stripped.
fn flatten_chain(
    t: &Tree,
    tails: &[NtId],
    leaves: &mut Vec<Expr>,
    ops: &mut Vec<BinOp>,
    consts: &mut u32,
) -> bool {
    match t {
        Tree::Term(TemplateTok::Access(a)) => {
            leaves.push(Expr::Access(a.clone()));
            true
        }
        Tree::Term(TemplateTok::ConstSym) => {
            let id = *consts;
            *consts += 1;
            leaves.push(Expr::ConstSym(id));
            true
        }
        Tree::Term(TemplateTok::Op(o)) => {
            ops.push(*o);
            true
        }
        Tree::Term(TemplateTok::Epsilon) | Tree::Term(TemplateTok::Eq) => true,
        // Only a TAIL hole in trailing position (balanced chain so far)
        // may be stripped.
        Tree::Hole(n) => tails.contains(n) && leaves.len() == ops.len() + 1,
        Tree::Branch(cs) => cs
            .iter()
            .all(|c| flatten_chain(c, tails, leaves, ops, consts)),
    }
}

/// Lookup table for rule application: the per-rule cost vector plus
/// heuristic costs per nonterminal.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// `-log2 P[r]` per rule.
    pub rule_cost: Vec<f64>,
    /// `-log2 h(α)` per nonterminal.
    pub heuristic: Vec<f64>,
}

impl CostModel {
    /// Builds the cost model from a grammar.
    pub fn new(pcfg: &Pcfg) -> CostModel {
        CostModel {
            rule_cost: pcfg.costs(),
            heuristic: pcfg.heuristic_costs(),
        }
    }

    /// The cost of applying `rule`.
    pub fn cost(&self, rule: RuleId) -> f64 {
        self.rule_cost[rule.index()]
    }

    /// The heuristic g(x): sum of `-log2 h(α)` over the holes of `tree`.
    pub fn remaining_cost(&self, tree: &Tree) -> f64 {
        tree.holes()
            .iter()
            .map(|n| self.heuristic[n.index()])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_grammar::Pcfg;

    fn toks() -> (TemplateTok, TemplateTok, TemplateTok) {
        (
            TemplateTok::Access(Access::new("a", &["i"])),
            TemplateTok::Access(Access::new("b", &["i", "j"])),
            TemplateTok::Access(Access::new("c", &["j"])),
        )
    }

    #[test]
    fn expansion_fills_leftmost() {
        let mut g = Pcfg::new();
        let s = g.add_nonterminal("S");
        let e = g.add_nonterminal("E");
        g.set_start(s);
        let tree = Tree::Hole(s);
        let rhs = vec![Sym::Nt(e), Sym::T(TemplateTok::Eq), Sym::Nt(e)];
        let t2 = tree.expand_leftmost(&rhs).unwrap();
        assert_eq!(t2.holes().len(), 2);
        assert_eq!(t2.leftmost_hole(), Some(e));
        // Expanding again touches the left hole only.
        let t3 = t2.expand_leftmost(&[Sym::T(TemplateTok::ConstSym)]).unwrap();
        assert_eq!(t3.holes().len(), 1);
    }

    #[test]
    fn complete_td_tree_roundtrip() {
        let (a, b, c) = toks();
        // a(i) = b(i,j) * c(j)
        let tree = Tree::Branch(vec![
            Tree::Term(a),
            Tree::Term(TemplateTok::Eq),
            Tree::Branch(vec![
                Tree::Term(b),
                Tree::Term(TemplateTok::Op(BinOp::Mul)),
                Tree::Term(c),
            ]),
        ]);
        assert!(tree.is_complete());
        let p = td_tree_to_program(&tree).unwrap();
        assert_eq!(p.to_string(), "a(i) = b(i,j) * c(j)");
    }

    #[test]
    fn depth_counts_binary_nesting() {
        let (a, b, c) = toks();
        let leaf = |t: &TemplateTok| Tree::Term(t.clone());
        let mul = |l, r| {
            Tree::Branch(vec![l, Tree::Term(TemplateTok::Op(BinOp::Mul)), r])
        };
        let t = Tree::Branch(vec![
            leaf(&a),
            Tree::Term(TemplateTok::Eq),
            mul(mul(leaf(&b), leaf(&c)), leaf(&b)),
        ]);
        assert_eq!(t.expr_depth(), 3);
    }

    #[test]
    fn facts_count_rhs_only() {
        let (a, b, c) = toks();
        let mut g = Pcfg::new();
        let op = g.add_nonterminal("OP");
        let tree = Tree::Branch(vec![
            Tree::Term(a),
            Tree::Term(TemplateTok::Eq),
            Tree::Branch(vec![
                Tree::Term(b),
                Tree::Term(TemplateTok::Op(BinOp::Mul)),
                Tree::Term(c),
            ]),
        ]);
        let f = tree_facts(&tree, op, &[]);
        assert_eq!(f.rhs_operand_slots, 2, "LHS access is not an operand slot");
        assert_eq!(f.accesses.len(), 3);
        assert_eq!(f.ops, vec![BinOp::Mul]);
        assert!(f.complete);
    }

    #[test]
    fn bu_chain_strips_tail() {
        let (a, b, c) = toks();
        let mut g = Pcfg::new();
        let tail = g.add_nonterminal("TAIL2");
        // a(i) = b(i,j) [chain: * c(j), TAIL2-hole]
        let tree = Tree::Branch(vec![
            Tree::Term(a),
            Tree::Term(TemplateTok::Eq),
            Tree::Branch(vec![
                Tree::Term(b),
                Tree::Branch(vec![
                    Tree::Term(TemplateTok::Op(BinOp::Mul)),
                    Tree::Term(c),
                    Tree::Hole(tail),
                ]),
            ]),
        ]);
        let p = bu_tree_to_program(&tree, &[tail]).unwrap();
        assert_eq!(p.to_string(), "a(i) = b(i,j) * c(j)");
    }

    #[test]
    fn bu_chain_respects_precedence() {
        let (a, b, c) = toks();
        // a(i) = b + c * b  → Add(b, Mul(c, b))
        let tree = Tree::Branch(vec![
            Tree::Term(a),
            Tree::Term(TemplateTok::Eq),
            Tree::Branch(vec![
                Tree::Term(b.clone()),
                Tree::Branch(vec![
                    Tree::Term(TemplateTok::Op(BinOp::Add)),
                    Tree::Term(c),
                    Tree::Branch(vec![
                        Tree::Term(TemplateTok::Op(BinOp::Mul)),
                        Tree::Term(b),
                        Tree::Term(TemplateTok::Epsilon),
                    ]),
                ]),
            ]),
        ]);
        let p = bu_tree_to_program(&tree, &[]).unwrap();
        assert_eq!(p.to_string(), "a(i) = b(i,j) + c(j) * b(i,j)");
        match p.rhs {
            Expr::Binary { op, .. } => assert_eq!(op, BinOp::Add),
            other => panic!("expected top-level Add, got {other:?}"),
        }
    }

    #[test]
    fn incomplete_bu_with_inner_hole_rejected() {
        let (a, b, _) = toks();
        let mut g = Pcfg::new();
        let opnt = g.add_nonterminal("OP");
        let tree = Tree::Branch(vec![
            Tree::Term(a),
            Tree::Term(TemplateTok::Eq),
            Tree::Branch(vec![
                Tree::Term(b.clone()),
                Tree::Branch(vec![
                    Tree::Hole(opnt), // unexpanded operator: not strippable
                    Tree::Term(b),
                ]),
            ]),
        ]);
        assert!(bu_tree_to_program(&tree, &[]).is_none());
    }
}
