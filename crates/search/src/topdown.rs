//! Algorithm 1: top-down weighted A\* with penalties (§5.1).

use gtl_taco::TacoProgram;
use gtl_template::{GrammarShape, TemplateGrammar};

use crate::driver::{SearchBudget, SearchOutcome, TemplateChecker};
use crate::frontier::{run_sequential, Child, Expand};
use crate::node::{td_tree_to_program, tree_facts, CostModel, Tree};
use crate::penalty::{td_penalty, PenaltyContext};

/// The top-down judgement of a dequeued partial derivation tree
/// (Algorithm 1 lines 5–12), shared by the sequential and parallel
/// engines.
pub(crate) struct TdExpand<'a> {
    grammar: &'a TemplateGrammar,
    ctx: &'a PenaltyContext,
    costs: CostModel,
    max_depth: usize,
}

impl<'a> TdExpand<'a> {
    /// Builds the expander; panics if `grammar` is not top-down shaped.
    pub(crate) fn new(
        grammar: &'a TemplateGrammar,
        ctx: &'a PenaltyContext,
        max_depth: usize,
    ) -> TdExpand<'a> {
        assert_eq!(
            grammar.shape,
            GrammarShape::TopDown,
            "top_down_search requires a top-down grammar"
        );
        TdExpand {
            grammar,
            ctx,
            costs: CostModel::new(&grammar.pcfg),
            max_depth,
        }
    }
}

impl Expand for TdExpand<'_> {
    fn root(&self) -> Tree {
        Tree::Hole(self.grammar.pcfg.start())
    }

    // Depth limit (Algorithm 1 line 5).
    fn skip(&self, tree: &Tree) -> bool {
        tree.expr_depth() > self.max_depth
    }

    // Lines 7–11: complete trees become checker candidates.
    fn candidate(&self, tree: &Tree) -> Option<TacoProgram> {
        if !tree.is_complete() {
            return None;
        }
        td_tree_to_program(tree).ok()
    }

    // Line 12: expand the leftmost nonterminal with every rule.
    fn children(&self, tree: &Tree, cost: f64) -> Vec<Child> {
        if tree.is_complete() {
            return Vec::new();
        }
        let Some(nt) = tree.leftmost_hole() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for rid in self.grammar.pcfg.rules_of(nt) {
            let rule_cost = self.costs.cost(*rid);
            if rule_cost.is_infinite() {
                continue;
            }
            let rhs = &self.grammar.pcfg.rule(*rid).rhs;
            let child = tree.expand_leftmost(rhs).expect("leftmost hole exists");
            if child.expr_depth() > self.max_depth {
                continue;
            }
            let c = cost + rule_cost;
            let g = self.costs.remaining_cost(&child);
            if g.is_infinite() {
                continue;
            }
            let facts = tree_facts(&child, self.grammar.nts.op, &[]);
            let program = if facts.complete {
                td_tree_to_program(&child).ok()
            } else {
                None
            };
            let x = td_penalty(&facts, program.as_ref(), self.ctx);
            if x.is_infinite() {
                continue;
            }
            out.push(Child {
                tree: child,
                cost: c,
                f: c + g + x,
            });
        }
        out
    }
}

/// Runs the top-down weighted A\* enumeration of Algorithm 1 over a
/// (learned) top-down template grammar.
///
/// The queue holds partial derivation trees ordered by
/// `f(x) = c(x) + g(x) + X(x)`:
/// `c` accumulates `-log2 P` of applied rules, `g` sums the
/// Viterbi-inside heuristic over remaining holes, and `X` is the penalty
/// function. Complete templates go to `checker` (validation §6 +
/// verification §7); the first verified template is returned.
///
/// # Panics
///
/// Panics if `grammar` is not top-down shaped.
pub fn top_down_search(
    grammar: &TemplateGrammar,
    ctx: &PenaltyContext,
    budget: SearchBudget,
    checker: &mut dyn TemplateChecker,
) -> SearchOutcome {
    let exp = TdExpand::new(grammar, ctx, budget.max_depth);
    run_sequential(&exp, budget, checker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::CheckOutcome;
    use crate::driver::StopReason;
    use gtl_taco::{parse_program, TacoProgram};
    use gtl_template::{generate_td_grammar, learn_weights, templatize, TdSpec};

    fn grammar_with(cands: &[&str], dims: Vec<usize>, n_indices: usize) -> TemplateGrammar {
        let templates: Vec<_> = cands
            .iter()
            .map(|s| templatize(&parse_program(s).unwrap()).unwrap())
            .collect();
        let mut g = generate_td_grammar(&TdSpec {
            dim_list: dims,
            n_indices,
            allow_repeated_index: false,
            include_const: false,
        });
        learn_weights(&mut g, &templates);
        g
    }

    fn ctx_for(g: &TemplateGrammar) -> PenaltyContext {
        PenaltyContext {
            dim_list: g.dim_list.clone(),
            grammar_has_const: g.nts.constant.is_some(),
            live_ops: g.live_ops(),
            settings: crate::penalty::PenaltySettings::all(),
        }
    }

    /// Accepts exactly one target template string.
    fn accept_only(target: &str) -> impl FnMut(&TacoProgram) -> CheckOutcome {
        let want = parse_program(target).unwrap();
        move |t: &TacoProgram| {
            if *t == want {
                CheckOutcome::Verified(t.clone())
            } else {
                CheckOutcome::Failed
            }
        }
    }

    #[test]
    fn finds_gemv_template_quickly() {
        // Candidates close to the paper's Response 1 (none exactly the
        // target template's index pattern is guaranteed).
        let g = grammar_with(
            &[
                "r(i) = m(i,j) * v(j)",
                "r(i) = m(j,i) * v(i)",
                "r(i) = m(i,j) * v(i)",
            ],
            vec![1, 2, 1],
            2,
        );
        let ctx = ctx_for(&g);
        let mut checker = accept_only("a(i) = b(i,j) * c(j)");
        let out = top_down_search(&g, &ctx, SearchBudget::default(), &mut checker);
        assert!(out.solved());
        assert!(out.attempts <= 10, "guided search should be quick: {}", out.attempts);
    }

    #[test]
    fn reaches_low_probability_regions() {
        // Target uses an index pattern no candidate suggested; default
        // weight 1 keeps it reachable.
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        let mut checker = accept_only("a(i) = b(j,i) * c(j)");
        let out = top_down_search(&g, &ctx, SearchBudget::default(), &mut checker);
        assert!(out.solved());
    }

    #[test]
    fn finds_balanced_ast() {
        // (b + c) * d: requires the tree-shaped derivation.
        let g = grammar_with(
            &[
                "o(i) = (x(i) + y(i)) * z(i)",
                "o(i) = x(i) + y(i) * z(i)",
            ],
            vec![1, 1, 1, 1],
            1,
        );
        let ctx = ctx_for(&g);
        let mut checker = accept_only("a(i) = (b(i) + c(i)) * d(i)");
        let out = top_down_search(&g, &ctx, SearchBudget::default(), &mut checker);
        assert!(out.solved(), "top-down must reach balanced ASTs");
    }

    #[test]
    fn exhausts_on_impossible_target() {
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        // Target needs 3 RHS tensors; grammar has only b, c.
        let mut never = |_t: &TacoProgram| CheckOutcome::Failed;
        let out = top_down_search(
            &g,
            &ctx,
            SearchBudget {
                max_nodes: 20_000,
                max_attempts: 500,
                ..SearchBudget::default()
            },
            &mut never,
        );
        assert!(!out.solved());
        assert!(matches!(
            out.stop,
            StopReason::BudgetExceeded | StopReason::Exhausted
        ));
        assert!(out.attempts > 0);
    }

    #[test]
    fn respects_attempt_budget() {
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        let mut never = |_t: &TacoProgram| CheckOutcome::Failed;
        let out = top_down_search(
            &g,
            &ctx,
            SearchBudget {
                max_attempts: 3,
                ..SearchBudget::default()
            },
            &mut never,
        );
        assert!(out.attempts <= 4);
    }

    #[test]
    fn probability_guides_order() {
        // With b(i,j) heavily favoured, the b(i,j)-first template must be
        // attempted before the b(j,i) one.
        let g = grammar_with(
            &[
                "r(i) = m(i,j) * v(j)",
                "r(i) = m(i,j) * v(j)",
                "r(i) = m(i,j) * v(j)",
                "r(i) = m(j,i) * v(j)",
            ],
            vec![1, 2, 1],
            2,
        );
        let ctx = ctx_for(&g);
        let mut seen: Vec<String> = Vec::new();
        let mut spy = |t: &TacoProgram| {
            seen.push(t.to_string());
            CheckOutcome::Failed
        };
        let _ = top_down_search(
            &g,
            &ctx,
            SearchBudget {
                max_attempts: 6,
                ..SearchBudget::default()
            },
            &mut spy,
        );
        let pos_ij = seen.iter().position(|s| s.contains("b(i,j)"));
        let pos_ji = seen.iter().position(|s| s.contains("b(j,i)"));
        match (pos_ij, pos_ji) {
            (Some(a), Some(b)) => assert!(a < b),
            (Some(_), None) => {}
            other => panic!("unexpected enumeration order: {other:?} in {seen:?}"),
        }
    }
}
