//! Algorithm 1: top-down weighted A\* with penalties (§5.1).

use std::collections::BinaryHeap;

use gtl_template::{GrammarShape, TemplateGrammar};

use crate::driver::{
    CheckOutcome, Priority, RunState, SearchBudget, SearchOutcome, TemplateChecker,
};
use crate::node::{td_tree_to_program, tree_facts, CostModel, Tree};
use crate::penalty::{td_penalty, PenaltyContext};

struct Node {
    tree: Tree,
    cost: f64,
}

/// Runs the top-down weighted A\* enumeration of Algorithm 1 over a
/// (learned) top-down template grammar.
///
/// The queue holds partial derivation trees ordered by
/// `f(x) = c(x) + g(x) + X(x)`:
/// `c` accumulates `-log2 P` of applied rules, `g` sums the
/// Viterbi-inside heuristic over remaining holes, and `X` is the penalty
/// function. Complete templates go to `checker` (validation §6 +
/// verification §7); the first verified template is returned.
///
/// # Panics
///
/// Panics if `grammar` is not top-down shaped.
pub fn top_down_search(
    grammar: &TemplateGrammar,
    ctx: &PenaltyContext,
    budget: SearchBudget,
    checker: &mut dyn TemplateChecker,
) -> SearchOutcome {
    assert_eq!(
        grammar.shape,
        GrammarShape::TopDown,
        "top_down_search requires a top-down grammar"
    );
    let costs = CostModel::new(&grammar.pcfg);
    let mut state = RunState::new(budget);
    let mut queue: BinaryHeap<(Priority, usize)> = BinaryHeap::new();
    let mut arena: Vec<Node> = Vec::new();

    let root = Node {
        tree: Tree::Hole(grammar.pcfg.start()),
        cost: 0.0,
    };
    queue.push((Priority(0.0), 0));
    arena.push(root);

    while let Some((_, idx)) = queue.pop() {
        if state.over_budget() {
            return state.outcome(None, false);
        }
        state.nodes += 1;
        let (tree, cost) = {
            let n = &arena[idx];
            (n.tree.clone(), n.cost)
        };

        // Depth limit (Algorithm 1 line 5).
        if tree.expr_depth() > state.budget.max_depth {
            continue;
        }

        if tree.is_complete() {
            // Lines 7–11: validate, then verify.
            let Ok(template) = td_tree_to_program(&tree) else {
                continue;
            };
            state.attempts += 1;
            if let CheckOutcome::Verified(concrete) = checker.check(&template) {
                return state.outcome(Some((template, concrete)), false);
            }
            continue;
        }

        // Line 12: expand the leftmost nonterminal with every rule.
        let Some(nt) = tree.leftmost_hole() else {
            continue;
        };
        for rid in grammar.pcfg.rules_of(nt) {
            let rule_cost = costs.cost(*rid);
            if rule_cost.is_infinite() {
                continue;
            }
            let rhs = &grammar.pcfg.rule(*rid).rhs;
            let child = tree
                .expand_leftmost(rhs)
                .expect("leftmost hole exists");
            if child.expr_depth() > state.budget.max_depth {
                continue;
            }
            let c = cost + rule_cost;
            let g = costs.remaining_cost(&child);
            if g.is_infinite() {
                continue;
            }
            let facts = tree_facts(&child, grammar.nts.op, &[]);
            let program = if facts.complete {
                td_tree_to_program(&child).ok()
            } else {
                None
            };
            let x = td_penalty(&facts, program.as_ref(), ctx);
            if x.is_infinite() {
                continue;
            }
            let f = c + g + x;
            arena.push(Node { tree: child, cost: c });
            queue.push((Priority(f), arena.len() - 1));
        }
    }
    state.outcome(None, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::StopReason;
    use gtl_taco::{parse_program, TacoProgram};
    use gtl_template::{generate_td_grammar, learn_weights, templatize, TdSpec};

    fn grammar_with(cands: &[&str], dims: Vec<usize>, n_indices: usize) -> TemplateGrammar {
        let templates: Vec<_> = cands
            .iter()
            .map(|s| templatize(&parse_program(s).unwrap()).unwrap())
            .collect();
        let mut g = generate_td_grammar(&TdSpec {
            dim_list: dims,
            n_indices,
            allow_repeated_index: false,
            include_const: false,
        });
        learn_weights(&mut g, &templates);
        g
    }

    fn ctx_for(g: &TemplateGrammar) -> PenaltyContext {
        PenaltyContext {
            dim_list: g.dim_list.clone(),
            grammar_has_const: g.nts.constant.is_some(),
            live_ops: g.live_ops(),
            settings: crate::penalty::PenaltySettings::all(),
        }
    }

    /// Accepts exactly one target template string.
    fn accept_only(target: &str) -> impl FnMut(&TacoProgram) -> CheckOutcome {
        let want = parse_program(target).unwrap();
        move |t: &TacoProgram| {
            if *t == want {
                CheckOutcome::Verified(t.clone())
            } else {
                CheckOutcome::Failed
            }
        }
    }

    #[test]
    fn finds_gemv_template_quickly() {
        // Candidates close to the paper's Response 1 (none exactly the
        // target template's index pattern is guaranteed).
        let g = grammar_with(
            &[
                "r(i) = m(i,j) * v(j)",
                "r(i) = m(j,i) * v(i)",
                "r(i) = m(i,j) * v(i)",
            ],
            vec![1, 2, 1],
            2,
        );
        let ctx = ctx_for(&g);
        let mut checker = accept_only("a(i) = b(i,j) * c(j)");
        let out = top_down_search(&g, &ctx, SearchBudget::default(), &mut checker);
        assert!(out.solved());
        assert!(out.attempts <= 10, "guided search should be quick: {}", out.attempts);
    }

    #[test]
    fn reaches_low_probability_regions() {
        // Target uses an index pattern no candidate suggested; default
        // weight 1 keeps it reachable.
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        let mut checker = accept_only("a(i) = b(j,i) * c(j)");
        let out = top_down_search(&g, &ctx, SearchBudget::default(), &mut checker);
        assert!(out.solved());
    }

    #[test]
    fn finds_balanced_ast() {
        // (b + c) * d: requires the tree-shaped derivation.
        let g = grammar_with(
            &[
                "o(i) = (x(i) + y(i)) * z(i)",
                "o(i) = x(i) + y(i) * z(i)",
            ],
            vec![1, 1, 1, 1],
            1,
        );
        let ctx = ctx_for(&g);
        let mut checker = accept_only("a(i) = (b(i) + c(i)) * d(i)");
        let out = top_down_search(&g, &ctx, SearchBudget::default(), &mut checker);
        assert!(out.solved(), "top-down must reach balanced ASTs");
    }

    #[test]
    fn exhausts_on_impossible_target() {
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        // Target needs 3 RHS tensors; grammar has only b, c.
        let mut never = |_t: &TacoProgram| CheckOutcome::Failed;
        let out = top_down_search(
            &g,
            &ctx,
            SearchBudget {
                max_nodes: 20_000,
                max_attempts: 500,
                ..SearchBudget::default()
            },
            &mut never,
        );
        assert!(!out.solved());
        assert!(matches!(
            out.stop,
            StopReason::BudgetExceeded | StopReason::Exhausted
        ));
        assert!(out.attempts > 0);
    }

    #[test]
    fn respects_attempt_budget() {
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        let mut never = |_t: &TacoProgram| CheckOutcome::Failed;
        let out = top_down_search(
            &g,
            &ctx,
            SearchBudget {
                max_attempts: 3,
                ..SearchBudget::default()
            },
            &mut never,
        );
        assert!(out.attempts <= 4);
    }

    #[test]
    fn probability_guides_order() {
        // With b(i,j) heavily favoured, the b(i,j)-first template must be
        // attempted before the b(j,i) one.
        let g = grammar_with(
            &[
                "r(i) = m(i,j) * v(j)",
                "r(i) = m(i,j) * v(j)",
                "r(i) = m(i,j) * v(j)",
                "r(i) = m(j,i) * v(j)",
            ],
            vec![1, 2, 1],
            2,
        );
        let ctx = ctx_for(&g);
        let mut seen: Vec<String> = Vec::new();
        let mut spy = |t: &TacoProgram| {
            seen.push(t.to_string());
            CheckOutcome::Failed
        };
        let _ = top_down_search(
            &g,
            &ctx,
            SearchBudget {
                max_attempts: 6,
                ..SearchBudget::default()
            },
            &mut spy,
        );
        let pos_ij = seen.iter().position(|s| s.contains("b(i,j)"));
        let pos_ji = seen.iter().position(|s| s.contains("b(j,i)"));
        match (pos_ij, pos_ji) {
            (Some(a), Some(b)) => assert!(a < b),
            (Some(_), None) => {}
            other => panic!("unexpected enumeration order: {other:?} in {seen:?}"),
        }
    }
}
