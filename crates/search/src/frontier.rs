//! The shared frontier engine behind both search algorithms.
//!
//! Top-down and bottom-up search are the same best-first loop over
//! partial derivation trees; they differ only in how a dequeued tree is
//! judged (skip / check / expand). That per-algorithm logic is the
//! [`Expand`] trait, implemented by the two algorithm modules; the loop
//! itself exists twice — [`run_sequential`] here (byte-identical to the
//! pre-refactor single-thread searches) and the worker-pool version in
//! [`crate::parallel`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gtl_taco::TacoProgram;

use crate::driver::{
    CheckOutcome, Priority, RunState, SearchBudget, SearchHooks, SearchOutcome,
    TemplateChecker,
};
use crate::node::Tree;

/// One prioritised successor produced by [`Expand::children`].
pub(crate) struct Child {
    /// The successor tree.
    pub tree: Tree,
    /// Accumulated rule cost `c(x)`.
    pub cost: f64,
    /// Full priority `f(x) = c(x) + g(x) + X(x)`.
    pub f: f64,
}

/// Algorithm-specific judgement of a dequeued tree.
///
/// Implementations are read-only views of the grammar and penalty
/// context, so they are naturally `Sync` and one expander can serve
/// every worker of a parallel run (the parallel engine adds the bound).
pub(crate) trait Expand {
    /// The initial search state.
    fn root(&self) -> Tree;

    /// Whether the node is discarded outright (counted as a queue pop,
    /// but neither checked nor expanded) — the top-down depth limit.
    fn skip(&self, tree: &Tree) -> bool;

    /// The complete template to send to the checker at this node, if any.
    fn candidate(&self, tree: &Tree) -> Option<TacoProgram>;

    /// Prioritised successors of the node (empty for complete trees).
    fn children(&self, tree: &Tree, cost: f64) -> Vec<Child>;
}

/// A frontier entry. Ordering matches the pre-refactor arena encoding:
/// best (lowest) `f` first, ties broken toward the most recently pushed
/// entry.
pub(crate) struct QEntry {
    pub f: Priority,
    pub seq: u64,
    pub tree: Tree,
    pub cost: f64,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f && self.seq == other.seq
    }
}

impl Eq for QEntry {}

impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `Priority` already reverses for min-f-first in a max-heap; on
        // ties the larger (younger) sequence number wins, exactly like
        // the old `(Priority, arena_index)` tuples.
        self.f.cmp(&other.f).then(self.seq.cmp(&other.seq))
    }
}

/// The single-threaded best-first loop. Preserves the exact pop order,
/// counter updates and stop conditions of the pre-refactor searches, so
/// `jobs = 1` results are bit-identical to the original implementation.
pub(crate) fn run_sequential(
    exp: &dyn Expand,
    budget: SearchBudget,
    checker: &mut dyn TemplateChecker,
) -> SearchOutcome {
    run_sequential_hooked(exp, budget, checker, &SearchHooks::default())
}

/// [`run_sequential`] with external hooks attached: the cancel flag is
/// polled once per pop (the outcome then reports `Cancelled`) and the
/// loop counters are mirrored into the progress tracker after every
/// iteration. With default hooks both additions are untaken branches,
/// leaving pop order and counters bit-identical to the unhooked loop.
pub(crate) fn run_sequential_hooked(
    exp: &dyn Expand,
    budget: SearchBudget,
    checker: &mut dyn TemplateChecker,
    hooks: &SearchHooks,
) -> SearchOutcome {
    let mut state = RunState::new(budget);
    let mut queue: BinaryHeap<QEntry> = BinaryHeap::new();
    let mut seq = 0u64;
    queue.push(QEntry {
        f: Priority(0.0),
        seq,
        tree: exp.root(),
        cost: 0.0,
    });

    while let Some(entry) = queue.pop() {
        if hooks.cancelled() {
            return state.outcome_cancelled();
        }
        if state.over_budget() {
            return state.outcome(None, false);
        }
        state.nodes += 1;
        if exp.skip(&entry.tree) {
            continue;
        }
        if let Some(template) = exp.candidate(&entry.tree) {
            state.attempts += 1;
            if let CheckOutcome::Verified(concrete) = checker.check(&template) {
                return state.outcome(Some((template, concrete)), false);
            }
        }
        for child in exp.children(&entry.tree, entry.cost) {
            seq += 1;
            queue.push(QEntry {
                f: Priority(child.f),
                seq,
                tree: child.tree,
                cost: child.cost,
            });
        }
        if let Some(progress) = &hooks.progress {
            progress.record(state.nodes, state.attempts);
        }
    }
    state.outcome(None, true)
}
