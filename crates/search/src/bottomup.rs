//! Algorithm 2: bottom-up A\* over the tail grammar (§5.2).

use gtl_taco::TacoProgram;
use gtl_template::{GrammarShape, TemplateGrammar};

use crate::driver::{SearchBudget, SearchOutcome, TemplateChecker};
use crate::frontier::{run_sequential, Child, Expand};
use crate::node::{bu_tree_to_program, tree_facts, CostModel, Tree};
use crate::penalty::{bu_penalty, PenaltyContext};

/// The bottom-up completion estimate g(x) of §5.2: the sum, over chain
/// positions not yet filled, of the minimal cost m(d) of adding a tensor
/// of that position's dimension.
fn bu_remaining_cost(
    grammar: &TemplateGrammar,
    costs: &CostModel,
    current_tensors: usize,
) -> f64 {
    let dims = &grammar.nts.position_dims;
    if dims.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for &d in dims.iter().skip(current_tensors) {
        let Some(&nt) = grammar.nts.dim_nts.get(&d) else {
            continue;
        };
        let m = grammar
            .pcfg
            .rules_of(nt)
            .iter()
            .map(|rid| costs.cost(*rid))
            .fold(f64::INFINITY, f64::min);
        if m.is_finite() {
            total += m;
        }
    }
    total
}

/// Runs the bottom-up A\* enumeration of Algorithm 2.
///
/// Dequeued expressions whose tensor count has reached the predicted
/// dimension-list length have their trailing `TAIL` removed
/// (`RemoveTail`) and are passed to the checker; on failure the original
/// (tail re-appended) expression is expanded further. Fully complete
/// chains are always checked.
///
/// # Panics
///
/// Panics if `grammar` is not bottom-up shaped.
pub fn bottom_up_search(
    grammar: &TemplateGrammar,
    ctx: &PenaltyContext,
    budget: SearchBudget,
    checker: &mut dyn TemplateChecker,
) -> SearchOutcome {
    let exp = BuExpand::new(grammar, ctx);
    run_sequential(&exp, budget, checker)
}

/// The bottom-up judgement of a dequeued chain tree (Algorithm 2
/// lines 5–12), shared by the sequential and parallel engines.
pub(crate) struct BuExpand<'a> {
    grammar: &'a TemplateGrammar,
    ctx: &'a PenaltyContext,
    costs: CostModel,
    /// Number of tensors that triggers validation (|tensors(x)| = |L|,
    /// Algorithm 2 line 5). With no prediction (full grammar) every
    /// strippable prefix is validated.
    predicted_rhs: Option<usize>,
}

impl<'a> BuExpand<'a> {
    /// Builds the expander; panics if `grammar` is not bottom-up shaped.
    pub(crate) fn new(grammar: &'a TemplateGrammar, ctx: &'a PenaltyContext) -> BuExpand<'a> {
        assert_eq!(
            grammar.shape,
            GrammarShape::BottomUp,
            "bottom_up_search requires a bottom-up grammar"
        );
        let predicted_rhs = if grammar.nts.position_dims.is_empty() {
            None
        } else {
            Some(grammar.nts.position_dims.len())
        };
        BuExpand {
            grammar,
            ctx,
            costs: CostModel::new(&grammar.pcfg),
            predicted_rhs,
        }
    }
}

impl Expand for BuExpand<'_> {
    fn root(&self) -> Tree {
        Tree::Hole(self.grammar.pcfg.start())
    }

    fn skip(&self, _tree: &Tree) -> bool {
        false
    }

    // Lines 5–11: when big enough (or complete), strip the tail and
    // validate. Algorithm 2 line 5 gates validation strictly on the
    // predicted tensor count — shorter complete chains are never
    // validated, which is why the bottom-up variant leans entirely on
    // dimension prediction. Without a prediction (full grammar) every
    // strippable prefix is validated instead.
    fn candidate(&self, tree: &Tree) -> Option<TacoProgram> {
        let facts = tree_facts(tree, self.grammar.nts.op, &self.grammar.nts.tails);
        let ready = match self.predicted_rhs {
            Some(n) => facts.rhs_operand_slots >= n,
            None => true,
        };
        if !ready {
            return None;
        }
        bu_tree_to_program(tree, &self.grammar.nts.tails)
    }

    // Line 12: expand the leftmost nonterminal.
    fn children(&self, tree: &Tree, cost: f64) -> Vec<Child> {
        if tree.is_complete() {
            return Vec::new();
        }
        let Some(nt) = tree.leftmost_hole() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for rid in self.grammar.pcfg.rules_of(nt) {
            let rule_cost = self.costs.cost(*rid);
            if rule_cost.is_infinite() {
                continue;
            }
            let rhs = &self.grammar.pcfg.rule(*rid).rhs;
            let child = tree.expand_leftmost(rhs).expect("leftmost hole exists");
            let c = cost + rule_cost;
            let child_facts =
                tree_facts(&child, self.grammar.nts.op, &self.grammar.nts.tails);
            let g = bu_remaining_cost(self.grammar, &self.costs, child_facts.rhs_operand_slots);
            let x = bu_penalty(&child_facts, self.ctx);
            if x.is_infinite() {
                continue;
            }
            out.push(Child {
                tree: child,
                cost: c,
                f: c + g + x,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::CheckOutcome;
    use gtl_taco::{parse_program, TacoProgram};
    use gtl_template::{generate_bu_grammar, learn_weights, templatize, TdSpec};

    fn grammar_with(cands: &[&str], dims: Vec<usize>, n_indices: usize) -> TemplateGrammar {
        let templates: Vec<_> = cands
            .iter()
            .map(|s| templatize(&parse_program(s).unwrap()).unwrap())
            .collect();
        let mut g = generate_bu_grammar(&TdSpec {
            dim_list: dims,
            n_indices,
            allow_repeated_index: false,
            include_const: false,
        });
        learn_weights(&mut g, &templates);
        g
    }

    fn ctx_for(g: &TemplateGrammar) -> PenaltyContext {
        PenaltyContext {
            dim_list: g.dim_list.clone(),
            grammar_has_const: g.nts.constant.is_some(),
            live_ops: g.live_ops(),
            settings: crate::penalty::PenaltySettings::all(),
        }
    }

    fn accept_only(target: &str) -> impl FnMut(&TacoProgram) -> CheckOutcome {
        let want = parse_program(target).unwrap();
        move |t: &TacoProgram| {
            if *t == want {
                CheckOutcome::Verified(t.clone())
            } else {
                CheckOutcome::Failed
            }
        }
    }

    #[test]
    fn finds_gemv_template() {
        let g = grammar_with(
            &["r(i) = m(i,j) * v(j)", "r(i) = m(j,i) * v(i)"],
            vec![1, 2, 1],
            2,
        );
        let ctx = ctx_for(&g);
        let mut checker = accept_only("a(i) = b(i,j) * c(j)");
        let out = bottom_up_search(&g, &ctx, SearchBudget::default(), &mut checker);
        assert!(out.solved());
    }

    #[test]
    fn chain_reaches_precedence_shapes() {
        // a*b + c is a precedence-respecting chain.
        let g = grammar_with(
            &["o(i) = x(i) * y(i) + z(i)"],
            vec![1, 1, 1, 1],
            1,
        );
        let ctx = ctx_for(&g);
        let mut checker = accept_only("a(i) = b(i) * c(i) + d(i)");
        let out = bottom_up_search(&g, &ctx, SearchBudget::default(), &mut checker);
        assert!(out.solved());
    }

    #[test]
    fn cannot_reach_balanced_ast() {
        // (b + c) * d is not expressible as a chain: search must fail.
        let g = grammar_with(
            &["o(i) = x(i) + y(i) * z(i)"],
            vec![1, 1, 1, 1],
            1,
        );
        let ctx = ctx_for(&g);
        let mut checker = accept_only("a(i) = (b(i) + c(i)) * d(i)");
        let out = bottom_up_search(
            &g,
            &ctx,
            SearchBudget {
                max_nodes: 50_000,
                max_attempts: 2_000,
                ..SearchBudget::default()
            },
            &mut checker,
        );
        assert!(!out.solved(), "RQ2: bottom-up cannot express balanced ASTs");
    }

    #[test]
    fn validates_at_predicted_size() {
        let g = grammar_with(&["r(i) = m(i,j) * v(j)"], vec![1, 2, 1], 2);
        let ctx = ctx_for(&g);
        let mut sizes: Vec<usize> = Vec::new();
        let mut spy = |t: &TacoProgram| {
            sizes.push(t.rhs.operands().len());
            CheckOutcome::Failed
        };
        let _ = bottom_up_search(
            &g,
            &ctx,
            SearchBudget {
                max_attempts: 20,
                ..SearchBudget::default()
            },
            &mut spy,
        );
        assert!(!sizes.is_empty());
        assert!(
            sizes.iter().all(|&s| s == 2),
            "validation only at the predicted tensor count: {sizes:?}"
        );
    }

    #[test]
    fn fewer_attempts_than_topdown_on_common_query() {
        // The BU grammar fixes dimension order, so it enumerates fewer
        // templates than TD on the same query (Table 1's attempts gap).
        let cands = [
            "r(i) = m(i,j) * v(j)",
            "r(i) = m(j,i) * v(i)",
            "r(i) = m(i,j) + v(i)",
        ];
        let bu = grammar_with(&cands, vec![1, 2, 1], 2);
        let bu_ctx = ctx_for(&bu);
        let mut bu_count = 0u64;
        let mut bu_spy = |_t: &TacoProgram| {
            bu_count += 1;
            CheckOutcome::Failed
        };
        let budget = SearchBudget {
            max_nodes: 20_000,
            max_attempts: 10_000,
            ..SearchBudget::default()
        };
        let out_bu = bottom_up_search(&bu, &bu_ctx, budget, &mut bu_spy);

        let templates: Vec<_> = cands
            .iter()
            .map(|s| {
                gtl_template::templatize(&parse_program(s).unwrap()).unwrap()
            })
            .collect();
        let mut td = gtl_template::generate_td_grammar(&TdSpec {
            dim_list: vec![1, 2, 1],
            n_indices: 2,
            allow_repeated_index: false,
            include_const: false,
        });
        learn_weights(&mut td, &templates);
        let td_ctx = PenaltyContext {
            dim_list: td.dim_list.clone(),
            grammar_has_const: td.nts.constant.is_some(),
            live_ops: td.live_ops(),
            settings: crate::penalty::PenaltySettings::all(),
        };
        let mut td_count = 0u64;
        let mut td_spy = |_t: &TacoProgram| {
            td_count += 1;
            CheckOutcome::Failed
        };
        let out_td = crate::topdown::top_down_search(&td, &td_ctx, budget, &mut td_spy);
        assert!(
            out_bu.attempts <= out_td.attempts,
            "BU ({}) should enumerate no more templates than TD ({})",
            out_bu.attempts,
            out_td.attempts
        );
    }
}
