//! Lexer for the C subset.

use std::fmt;

/// A C token.
#[derive(Debug, Clone, PartialEq)]
pub enum CTok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal, kept exact as mantissa + fractional digit count.
    Float {
        /// Digits with the point removed.
        mantissa: i64,
        /// Digits after the point.
        frac_digits: u32,
    },
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `!`
    Bang,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `*=`
    StarEq,
    /// `/=`
    SlashEq,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
}

impl fmt::Display for CTok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CTok::Ident(s) => write!(f, "{s}"),
            CTok::Int(v) => write!(f, "{v}"),
            CTok::Float {
                mantissa,
                frac_digits,
            } => write!(f, "{mantissa}e-{frac_digits}"),
            CTok::LParen => write!(f, "("),
            CTok::RParen => write!(f, ")"),
            CTok::LBrace => write!(f, "{{"),
            CTok::RBrace => write!(f, "}}"),
            CTok::LBracket => write!(f, "["),
            CTok::RBracket => write!(f, "]"),
            CTok::Semi => write!(f, ";"),
            CTok::Comma => write!(f, ","),
            CTok::Plus => write!(f, "+"),
            CTok::Minus => write!(f, "-"),
            CTok::Star => write!(f, "*"),
            CTok::Slash => write!(f, "/"),
            CTok::Percent => write!(f, "%"),
            CTok::Amp => write!(f, "&"),
            CTok::Bang => write!(f, "!"),
            CTok::Question => write!(f, "?"),
            CTok::Colon => write!(f, ":"),
            CTok::Eq => write!(f, "="),
            CTok::EqEq => write!(f, "=="),
            CTok::Ne => write!(f, "!="),
            CTok::Lt => write!(f, "<"),
            CTok::Le => write!(f, "<="),
            CTok::Gt => write!(f, ">"),
            CTok::Ge => write!(f, ">="),
            CTok::PlusEq => write!(f, "+="),
            CTok::MinusEq => write!(f, "-="),
            CTok::StarEq => write!(f, "*="),
            CTok::SlashEq => write!(f, "/="),
            CTok::PlusPlus => write!(f, "++"),
            CTok::MinusMinus => write!(f, "--"),
            CTok::AndAnd => write!(f, "&&"),
            CTok::OrOr => write!(f, "||"),
        }
    }
}

/// A lex error at a line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CLexError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CLexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for CLexError {}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> CLexError {
        CLexError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }
}

/// Tokenises C source, skipping whitespace and `//`/`/* */` comments.
///
/// ```
/// use gtl_cfront::lexer::{tokenize_c, CTok};
/// let toks = tokenize_c("int x = 3; // three").unwrap();
/// assert_eq!(toks.len(), 5);
/// assert_eq!(toks[2], CTok::Eq);
/// ```
pub fn tokenize_c(src: &str) -> Result<Vec<CTok>, CLexError> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek2() == Some(b'/') => {
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            b'/' if cur.peek2() == Some(b'*') => {
                cur.bump();
                cur.bump();
                loop {
                    match cur.peek() {
                        Some(b'*') if cur.peek2() == Some(b'/') => {
                            cur.bump();
                            cur.bump();
                            break;
                        }
                        Some(_) => {
                            cur.bump();
                        }
                        None => return Err(cur.error("unterminated block comment")),
                    }
                }
            }
            b'0'..=b'9' => out.push(lex_number(&mut cur)?),
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut name = String::new();
                while let Some(c) = cur.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        name.push(c as char);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(CTok::Ident(name));
            }
            _ => out.push(lex_punct(&mut cur)?),
        }
    }
    Ok(out)
}

fn lex_number(cur: &mut Cursor<'_>) -> Result<CTok, CLexError> {
    let mut int_part: i64 = 0;
    while let Some(c) = cur.peek() {
        if let Some(d) = (c as char).to_digit(10) {
            int_part = int_part
                .checked_mul(10)
                .and_then(|v| v.checked_add(d as i64))
                .ok_or_else(|| cur.error("integer literal overflows i64"))?;
            cur.bump();
        } else {
            break;
        }
    }
    if cur.peek() == Some(b'.') {
        cur.bump();
        let mut mantissa = int_part;
        let mut frac_digits = 0u32;
        while let Some(c) = cur.peek() {
            if let Some(d) = (c as char).to_digit(10) {
                mantissa = mantissa
                    .checked_mul(10)
                    .and_then(|v| v.checked_add(d as i64))
                    .ok_or_else(|| cur.error("float literal overflows i64"))?;
                frac_digits += 1;
                cur.bump();
            } else {
                break;
            }
        }
        // Swallow float suffixes.
        if matches!(cur.peek(), Some(b'f') | Some(b'F')) {
            cur.bump();
        }
        Ok(CTok::Float {
            mantissa,
            frac_digits,
        })
    } else {
        Ok(CTok::Int(int_part))
    }
}

fn lex_punct(cur: &mut Cursor<'_>) -> Result<CTok, CLexError> {
    let c = cur.peek().expect("caller checked");
    let two = |cur: &mut Cursor<'_>, tok: CTok| {
        cur.bump();
        cur.bump();
        Ok(tok)
    };
    let one = |cur: &mut Cursor<'_>, tok: CTok| {
        cur.bump();
        Ok(tok)
    };
    match (c, cur.peek2()) {
        (b'+', Some(b'+')) => two(cur, CTok::PlusPlus),
        (b'+', Some(b'=')) => two(cur, CTok::PlusEq),
        (b'+', _) => one(cur, CTok::Plus),
        (b'-', Some(b'-')) => two(cur, CTok::MinusMinus),
        (b'-', Some(b'=')) => two(cur, CTok::MinusEq),
        (b'-', _) => one(cur, CTok::Minus),
        (b'*', Some(b'=')) => two(cur, CTok::StarEq),
        (b'*', _) => one(cur, CTok::Star),
        (b'/', Some(b'=')) => two(cur, CTok::SlashEq),
        (b'/', _) => one(cur, CTok::Slash),
        (b'%', _) => one(cur, CTok::Percent),
        (b'=', Some(b'=')) => two(cur, CTok::EqEq),
        (b'=', _) => one(cur, CTok::Eq),
        (b'!', Some(b'=')) => two(cur, CTok::Ne),
        (b'!', _) => one(cur, CTok::Bang),
        (b'<', Some(b'=')) => two(cur, CTok::Le),
        (b'<', _) => one(cur, CTok::Lt),
        (b'>', Some(b'=')) => two(cur, CTok::Ge),
        (b'>', _) => one(cur, CTok::Gt),
        (b'&', Some(b'&')) => two(cur, CTok::AndAnd),
        (b'&', _) => one(cur, CTok::Amp),
        (b'|', Some(b'|')) => two(cur, CTok::OrOr),
        (b'(', _) => one(cur, CTok::LParen),
        (b')', _) => one(cur, CTok::RParen),
        (b'{', _) => one(cur, CTok::LBrace),
        (b'}', _) => one(cur, CTok::RBrace),
        (b'[', _) => one(cur, CTok::LBracket),
        (b']', _) => one(cur, CTok::RBracket),
        (b';', _) => one(cur, CTok::Semi),
        (b',', _) => one(cur, CTok::Comma),
        (b'?', _) => one(cur, CTok::Question),
        (b':', _) => one(cur, CTok::Colon),
        other => Err(cur.error(format!("unexpected character {:?}", other.0 as char))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_tokens() {
        let src = "*p_t += *p_m1++ * *p_m2++;";
        let toks = tokenize_c(src).unwrap();
        assert_eq!(
            toks,
            vec![
                CTok::Star,
                CTok::Ident("p_t".into()),
                CTok::PlusEq,
                CTok::Star,
                CTok::Ident("p_m1".into()),
                CTok::PlusPlus,
                CTok::Star,
                CTok::Star,
                CTok::Ident("p_m2".into()),
                CTok::PlusPlus,
                CTok::Semi,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize_c("a /* x */ b // y\n c").unwrap();
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn float_literals_exact() {
        let toks = tokenize_c("0.25 1.5f 3.").unwrap();
        assert_eq!(
            toks[0],
            CTok::Float {
                mantissa: 25,
                frac_digits: 2
            }
        );
        assert_eq!(
            toks[1],
            CTok::Float {
                mantissa: 15,
                frac_digits: 1
            }
        );
        assert_eq!(
            toks[2],
            CTok::Float {
                mantissa: 3,
                frac_digits: 0
            }
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize_c("a <= b >= c != d == e").unwrap();
        assert!(toks.contains(&CTok::Le));
        assert!(toks.contains(&CTok::Ge));
        assert!(toks.contains(&CTok::Ne));
        assert!(toks.contains(&CTok::EqEq));
    }

    #[test]
    fn error_position() {
        let err = tokenize_c("int x;\n  @").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 3);
    }
}
