//! C-subset front end: lexer, parser, AST and a rational-semantics
//! interpreter.
//!
//! The Guided Tensor Lifting pipeline consumes legacy C tensor kernels.
//! This crate parses the C subset those kernels are written in — scalar
//! and pointer parameters, `for`/`while`/`if`, compound assignment,
//! pointer arithmetic with post-increment (the Fig. 2 idiom), affine array
//! indexing — and executes them with exact rational arithmetic, mirroring
//! the paper's rational-datatype extension of CBMC (§7).
//!
//! The interpreter serves two roles downstream:
//! - generating input/output examples for template validation (§6);
//! - running the legacy side of the bounded equivalence check (§7).
//!
//! # Example
//!
//! ```
//! use gtl_cfront::{parse_c, run_kernel, ArgValue};
//! use gtl_tensor::Rat;
//!
//! let src = "void dot(int n, int *a, int *b, int *out) {
//!     *out = 0;
//!     for (int i = 0; i < n; i++) *out += a[i] * b[i];
//! }";
//! let program = parse_c(src).unwrap();
//! let result = run_kernel(
//!     program.kernel(),
//!     vec![
//!         ArgValue::Scalar(Rat::from(2)),
//!         ArgValue::Array(vec![Rat::from(3), Rat::from(4)]),
//!         ArgValue::Array(vec![Rat::from(10), Rat::from(20)]),
//!         ArgValue::Array(vec![Rat::ZERO]),
//!     ],
//! )
//! .unwrap();
//! assert_eq!(result.arrays[2][0], Rat::from(110));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod bytecode;
pub mod interp;
pub mod lexer;
pub mod parser;

pub use ast::{AssignOp, CBinOp, CExpr, CProgram, CType, Function, NumType, Param, Stmt, UnOp};
pub use bytecode::{
    compile_fn, run_compiled, run_compiled_with_fuel, CompiledFn, LazyCompiledFn,
};
pub use interp::{
    run_kernel, run_kernel_with_fuel, ArgValue, ExecResult, RuntimeError, Value, DEFAULT_FUEL,
};
pub use parser::{parse_c, CParseError};
