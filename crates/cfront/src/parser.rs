//! Recursive-descent parser for the C subset.

use std::fmt;

use crate::ast::{AssignOp, CBinOp, CExpr, CProgram, CType, Function, NumType, Param, Stmt, UnOp};
use crate::lexer::{tokenize_c, CLexError, CTok};

/// A parse error for C sources.
#[derive(Debug, Clone, PartialEq)]
pub enum CParseError {
    /// Lexing failed.
    Lex(CLexError),
    /// The token stream ended unexpectedly.
    UnexpectedEnd,
    /// An unexpected token was found.
    Unexpected {
        /// Token index.
        position: usize,
        /// What was found.
        found: String,
        /// What was expected.
        expected: String,
    },
    /// The assignment target is not an lvalue.
    NotAnLvalue {
        /// Token index of the assignment operator.
        position: usize,
    },
}

impl fmt::Display for CParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CParseError::Lex(e) => write!(f, "lex error: {e}"),
            CParseError::UnexpectedEnd => write!(f, "unexpected end of input"),
            CParseError::Unexpected {
                position,
                found,
                expected,
            } => write!(f, "expected {expected} at token {position}, found {found:?}"),
            CParseError::NotAnLvalue { position } => {
                write!(f, "assignment target at token {position} is not an lvalue")
            }
        }
    }
}

impl std::error::Error for CParseError {}

impl From<CLexError> for CParseError {
    fn from(e: CLexError) -> Self {
        CParseError::Lex(e)
    }
}

const TYPE_KEYWORDS: [&str; 4] = ["void", "int", "float", "double"];

struct Parser {
    toks: Vec<CTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&CTok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&CTok> {
        self.toks.get(self.pos + n)
    }

    fn bump(&mut self) -> Option<CTok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &CTok, expected: &str) -> Result<(), CParseError> {
        match self.bump() {
            Some(t) if &t == want => Ok(()),
            Some(t) => Err(self.unexpected_at(self.pos - 1, &t, expected)),
            None => Err(CParseError::UnexpectedEnd),
        }
    }

    fn unexpected_at(&self, position: usize, found: &CTok, expected: &str) -> CParseError {
        CParseError::Unexpected {
            position,
            found: found.to_string(),
            expected: expected.to_string(),
        }
    }

    fn is_type_keyword(&self, n: usize) -> bool {
        matches!(self.peek_at(n), Some(CTok::Ident(s))
            if TYPE_KEYWORDS.contains(&s.as_str()) || s == "const")
    }

    /// Parses `['const'] base-type '*'*`; `void` only valid with
    /// `allow_void`.
    fn parse_type(&mut self, allow_void: bool) -> Result<Option<CType>, CParseError> {
        // Skip `const` qualifiers.
        while matches!(self.peek(), Some(CTok::Ident(s)) if s == "const") {
            self.bump();
        }
        let base = match self.bump() {
            Some(CTok::Ident(s)) => s,
            Some(t) => return Err(self.unexpected_at(self.pos - 1, &t, "type name")),
            None => return Err(CParseError::UnexpectedEnd),
        };
        let num = match base.as_str() {
            "int" => Some(NumType::Int),
            "float" => Some(NumType::Float),
            "double" => Some(NumType::Double),
            "void" if allow_void => None,
            other => {
                return Err(CParseError::Unexpected {
                    position: self.pos - 1,
                    found: other.to_string(),
                    expected: "type name".to_string(),
                })
            }
        };
        // Skip more `const` after the base type.
        while matches!(self.peek(), Some(CTok::Ident(s)) if s == "const") {
            self.bump();
        }
        let mut ptr = false;
        while self.peek() == Some(&CTok::Star) {
            self.bump();
            ptr = true;
        }
        Ok(match (num, ptr) {
            (None, _) => None,
            (Some(n), true) => Some(CType::Ptr(n)),
            (Some(n), false) => Some(CType::Num(n)),
        })
    }

    fn parse_function(&mut self) -> Result<Function, CParseError> {
        let ret = self.parse_type(true)?;
        let name = match self.bump() {
            Some(CTok::Ident(s)) => s,
            Some(t) => return Err(self.unexpected_at(self.pos - 1, &t, "function name")),
            None => return Err(CParseError::UnexpectedEnd),
        };
        self.expect(&CTok::LParen, "'('")?;
        let mut params = Vec::new();
        if self.peek() != Some(&CTok::RParen) {
            loop {
                // Tolerate `void` as the entire parameter list.
                if params.is_empty()
                    && matches!(self.peek(), Some(CTok::Ident(s)) if s == "void")
                    && self.peek_at(1) == Some(&CTok::RParen)
                {
                    self.bump();
                    break;
                }
                let ty = self
                    .parse_type(false)?
                    .expect("parse_type(false) never yields void");
                let pname = match self.bump() {
                    Some(CTok::Ident(s)) => s,
                    Some(t) => return Err(self.unexpected_at(self.pos - 1, &t, "parameter name")),
                    None => return Err(CParseError::UnexpectedEnd),
                };
                // Array-style parameter `int a[]` is a pointer.
                let ty = if self.peek() == Some(&CTok::LBracket) {
                    self.bump();
                    // Tolerate a fixed size inside the brackets.
                    if let Some(CTok::Int(_)) = self.peek() {
                        self.bump();
                    }
                    self.expect(&CTok::RBracket, "']'")?;
                    match ty {
                        CType::Num(n) => CType::Ptr(n),
                        p => p,
                    }
                } else {
                    ty
                };
                params.push(Param { name: pname, ty });
                match self.peek() {
                    Some(CTok::Comma) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&CTok::RParen, "')'")?;
        self.expect(&CTok::LBrace, "'{'")?;
        let body = self.parse_block_body()?;
        Ok(Function {
            name,
            ret,
            params,
            body,
        })
    }

    /// Parses statements until the matching `}` (which is consumed).
    fn parse_block_body(&mut self) -> Result<Vec<Stmt>, CParseError> {
        let mut body = Vec::new();
        loop {
            match self.peek() {
                Some(CTok::RBrace) => {
                    self.bump();
                    return Ok(body);
                }
                Some(_) => body.push(self.parse_stmt()?),
                None => return Err(CParseError::UnexpectedEnd),
            }
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CParseError> {
        match self.peek() {
            Some(CTok::LBrace) => {
                self.bump();
                Ok(Stmt::Block(self.parse_block_body()?))
            }
            Some(CTok::Ident(s)) if s == "for" => self.parse_for(),
            Some(CTok::Ident(s)) if s == "while" => self.parse_while(),
            Some(CTok::Ident(s)) if s == "if" => self.parse_if(),
            Some(CTok::Ident(s)) if s == "return" => {
                self.bump();
                if self.peek() == Some(&CTok::Semi) {
                    self.bump();
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(&CTok::Semi, "';'")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Some(_) if self.is_type_keyword(0) => {
                let decls = self.parse_decl()?;
                self.expect(&CTok::Semi, "';'")?;
                Ok(flatten_decls(decls))
            }
            Some(_) => {
                let e = self.parse_expr()?;
                self.expect(&CTok::Semi, "';'")?;
                Ok(Stmt::Expr(e))
            }
            None => Err(CParseError::UnexpectedEnd),
        }
    }

    /// Parses `type declarator (',' declarator)*` without the trailing
    /// `;`. Each declarator may add pointer stars and an initialiser:
    /// `int *p = a, i, f = 0;`
    fn parse_decl(&mut self) -> Result<Vec<Stmt>, CParseError> {
        // Parse the base type without consuming declarator stars: we peel
        // `const` and the base name here, stars per-declarator below.
        while matches!(self.peek(), Some(CTok::Ident(s)) if s == "const") {
            self.bump();
        }
        let base = match self.bump() {
            Some(CTok::Ident(s)) => s,
            Some(t) => return Err(self.unexpected_at(self.pos - 1, &t, "type name")),
            None => return Err(CParseError::UnexpectedEnd),
        };
        let num = match base.as_str() {
            "int" => NumType::Int,
            "float" => NumType::Float,
            "double" => NumType::Double,
            other => {
                return Err(CParseError::Unexpected {
                    position: self.pos - 1,
                    found: other.to_string(),
                    expected: "non-void type".to_string(),
                })
            }
        };
        let mut out = Vec::new();
        loop {
            let mut ptr = false;
            while self.peek() == Some(&CTok::Star) {
                self.bump();
                ptr = true;
            }
            let name = match self.bump() {
                Some(CTok::Ident(s)) => s,
                Some(t) => return Err(self.unexpected_at(self.pos - 1, &t, "variable name")),
                None => return Err(CParseError::UnexpectedEnd),
            };
            let init = if self.peek() == Some(&CTok::Eq) {
                self.bump();
                Some(self.parse_assign()?)
            } else {
                None
            };
            out.push(Stmt::Decl {
                name,
                ty: if ptr { CType::Ptr(num) } else { CType::Num(num) },
                init,
            });
            match self.peek() {
                Some(CTok::Comma) => {
                    self.bump();
                }
                _ => break,
            }
        }
        Ok(out)
    }

    fn parse_for(&mut self) -> Result<Stmt, CParseError> {
        self.bump(); // `for`
        self.expect(&CTok::LParen, "'('")?;
        let init = if self.peek() == Some(&CTok::Semi) {
            self.bump();
            None
        } else if self.is_type_keyword(0) {
            let decls = self.parse_decl()?;
            self.expect(&CTok::Semi, "';'")?;
            Some(Box::new(flatten_decls(decls)))
        } else {
            let e = self.parse_expr()?;
            self.expect(&CTok::Semi, "';'")?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.peek() == Some(&CTok::Semi) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect(&CTok::Semi, "';'")?;
        let step = if self.peek() == Some(&CTok::RParen) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect(&CTok::RParen, "')'")?;
        let body = self.parse_loop_body()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    fn parse_while(&mut self) -> Result<Stmt, CParseError> {
        self.bump(); // `while`
        self.expect(&CTok::LParen, "'('")?;
        let cond = self.parse_expr()?;
        self.expect(&CTok::RParen, "')'")?;
        let body = self.parse_loop_body()?;
        Ok(Stmt::While { cond, body })
    }

    fn parse_if(&mut self) -> Result<Stmt, CParseError> {
        self.bump(); // `if`
        self.expect(&CTok::LParen, "'('")?;
        let cond = self.parse_expr()?;
        self.expect(&CTok::RParen, "')'")?;
        let then_body = self.parse_loop_body()?;
        let else_body = if matches!(self.peek(), Some(CTok::Ident(s)) if s == "else") {
            self.bump();
            self.parse_loop_body()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    /// A loop/branch body: either a braced block or a single statement.
    fn parse_loop_body(&mut self) -> Result<Vec<Stmt>, CParseError> {
        if self.peek() == Some(&CTok::LBrace) {
            self.bump();
            self.parse_block_body()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_expr(&mut self) -> Result<CExpr, CParseError> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<CExpr, CParseError> {
        let lhs = self.parse_ternary()?;
        let op = match self.peek() {
            Some(CTok::Eq) => AssignOp::Assign,
            Some(CTok::PlusEq) => AssignOp::AddAssign,
            Some(CTok::MinusEq) => AssignOp::SubAssign,
            Some(CTok::StarEq) => AssignOp::MulAssign,
            Some(CTok::SlashEq) => AssignOp::DivAssign,
            _ => return Ok(lhs),
        };
        let op_pos = self.pos;
        if !is_lvalue(&lhs) {
            return Err(CParseError::NotAnLvalue { position: op_pos });
        }
        self.bump();
        let rhs = self.parse_assign()?;
        Ok(CExpr::Assign {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn parse_ternary(&mut self) -> Result<CExpr, CParseError> {
        let cond = self.parse_binary(0)?;
        if self.peek() == Some(&CTok::Question) {
            self.bump();
            let then_val = self.parse_expr()?;
            self.expect(&CTok::Colon, "':'")?;
            let else_val = self.parse_ternary()?;
            Ok(CExpr::Ternary {
                cond: Box::new(cond),
                then_val: Box::new(then_val),
                else_val: Box::new(else_val),
            })
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing over the binary operators.
    fn parse_binary(&mut self, min_prec: u8) -> Result<CExpr, CParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Some(CTok::OrOr) => (CBinOp::Or, 1),
                Some(CTok::AndAnd) => (CBinOp::And, 2),
                Some(CTok::EqEq) => (CBinOp::EqEq, 3),
                Some(CTok::Ne) => (CBinOp::Ne, 3),
                Some(CTok::Lt) => (CBinOp::Lt, 4),
                Some(CTok::Le) => (CBinOp::Le, 4),
                Some(CTok::Gt) => (CBinOp::Gt, 4),
                Some(CTok::Ge) => (CBinOp::Ge, 4),
                Some(CTok::Plus) => (CBinOp::Add, 5),
                Some(CTok::Minus) => (CBinOp::Sub, 5),
                Some(CTok::Star) => (CBinOp::Mul, 6),
                Some(CTok::Slash) => (CBinOp::Div, 6),
                Some(CTok::Percent) => (CBinOp::Rem, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = CExpr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<CExpr, CParseError> {
        match self.peek() {
            Some(CTok::Minus) => {
                self.bump();
                Ok(CExpr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            Some(CTok::Star) => {
                self.bump();
                Ok(CExpr::Unary {
                    op: UnOp::Deref,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            Some(CTok::Amp) => {
                self.bump();
                Ok(CExpr::Unary {
                    op: UnOp::AddrOf,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            Some(CTok::Bang) => {
                self.bump();
                Ok(CExpr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            // Cast: '(' type ')' unary.
            Some(CTok::LParen) if self.is_type_keyword(1) => {
                self.bump();
                let ty = self
                    .parse_type(false)?
                    .expect("cast to void not permitted by parse_type(false)");
                self.expect(&CTok::RParen, "')'")?;
                Ok(CExpr::Cast {
                    ty,
                    expr: Box::new(self.parse_unary()?),
                })
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<CExpr, CParseError> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek() {
                Some(CTok::LBracket) => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect(&CTok::RBracket, "']'")?;
                    e = CExpr::Index {
                        base: Box::new(e),
                        index: Box::new(idx),
                    };
                }
                Some(CTok::PlusPlus) => {
                    self.bump();
                    e = CExpr::PostInc(Box::new(e));
                }
                Some(CTok::MinusMinus) => {
                    self.bump();
                    e = CExpr::PostDec(Box::new(e));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<CExpr, CParseError> {
        match self.bump() {
            Some(CTok::Int(v)) => Ok(CExpr::IntLit(v)),
            Some(CTok::Float {
                mantissa,
                frac_digits,
            }) => Ok(CExpr::FloatLit {
                mantissa,
                frac_digits,
            }),
            Some(CTok::Ident(s)) => Ok(CExpr::Var(s)),
            Some(CTok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&CTok::RParen, "')'")?;
                Ok(e)
            }
            Some(t) => Err(self.unexpected_at(self.pos - 1, &t, "expression")),
            None => Err(CParseError::UnexpectedEnd),
        }
    }
}

/// Wraps multiple declarations from one statement into a single `Stmt`.
fn flatten_decls(mut decls: Vec<Stmt>) -> Stmt {
    if decls.len() == 1 {
        decls.pop().expect("length checked")
    } else {
        Stmt::Multi(decls)
    }
}

fn is_lvalue(e: &CExpr) -> bool {
    matches!(
        e,
        CExpr::Var(_)
            | CExpr::Index { .. }
            | CExpr::Unary {
                op: UnOp::Deref,
                ..
            }
    )
}

/// Parses a C translation unit (one or more function definitions).
///
/// ```
/// use gtl_cfront::parse_c;
/// let p = parse_c("void f(int N, int *a) { for (int i = 0; i < N; i++) a[i] = 0; }").unwrap();
/// assert_eq!(p.kernel().params.len(), 2);
/// ```
pub fn parse_c(src: &str) -> Result<CProgram, CParseError> {
    let toks = tokenize_c(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut functions = Vec::new();
    while p.peek().is_some() {
        functions.push(p.parse_function()?);
    }
    if functions.is_empty() {
        return Err(CParseError::UnexpectedEnd);
    }
    Ok(CProgram { functions })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 kernel, verbatim modulo whitespace.
    const FIGURE2: &str = r#"
void function(int N, int *Mat1, int *Mat2, int *Result) {
    int *p_m1;
    int *p_m2;
    int *p_t;
    int i, f;
    p_m1 = Mat1;
    p_t = Result;
    for (f = 0; f < N; f++) {
        *p_t = 0;
        p_m2 = &Mat2[0];
        for (i = 0; i < N; i++)
            *p_t += *p_m1++ * *p_m2++;
        p_t++;
    }
}
"#;

    #[test]
    fn parses_figure2() {
        let p = parse_c(FIGURE2).unwrap();
        let f = p.kernel();
        assert_eq!(f.name, "function");
        assert_eq!(f.params.len(), 4);
        assert_eq!(f.params[0].ty, CType::Num(NumType::Int));
        assert_eq!(f.params[1].ty, CType::Ptr(NumType::Int));
        // Body: 4 decl statements (one is a block of 2), 2 assignments, 1 for.
        assert!(matches!(f.body.last(), Some(Stmt::For { .. })));
    }

    #[test]
    fn multi_declarator() {
        let p = parse_c("void f() { int i, f; }").unwrap();
        match &p.kernel().body[0] {
            Stmt::Multi(ds) => assert_eq!(ds.len(), 2),
            other => panic!("expected multi-decl, got {other:?}"),
        }
    }

    #[test]
    fn pointer_and_value_mix() {
        let p = parse_c("void f() { int *p, q; }").unwrap();
        match &p.kernel().body[0] {
            Stmt::Multi(ds) => {
                assert!(
                    matches!(&ds[0], Stmt::Decl { ty: CType::Ptr(_), .. }),
                    "first is pointer"
                );
                assert!(
                    matches!(&ds[1], Stmt::Decl { ty: CType::Num(_), .. }),
                    "second is value"
                );
            }
            other => panic!("expected multi-decl, got {other:?}"),
        }
    }

    #[test]
    fn precedence_and_indexing() {
        let p = parse_c("void f(int N, int *a, int *b) { a[2*N+1] = b[N] + 3 * 4; }").unwrap();
        match &p.kernel().body[0] {
            Stmt::Expr(CExpr::Assign { lhs, rhs, .. }) => {
                assert!(matches!(**lhs, CExpr::Index { .. }));
                match &**rhs {
                    CExpr::Binary { op, .. } => assert_eq!(*op, CBinOp::Add),
                    other => panic!("expected add, got {other:?}"),
                }
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn for_without_decl() {
        let p = parse_c("void f(int N) { int i; for (i = 0; i < N; i++) ; }");
        // Empty statement `;` is not supported — use a block instead.
        assert!(p.is_err());
        let p2 = parse_c("void f(int N) { int i; for (i = 0; i < N; i++) {} }").unwrap();
        assert!(matches!(p2.kernel().body[1], Stmt::For { .. }));
    }

    #[test]
    fn ternary_and_comparison() {
        let p = parse_c("void f(int x, int *a) { a[0] = x > 0 ? x : 0; }").unwrap();
        match &p.kernel().body[0] {
            Stmt::Expr(CExpr::Assign { rhs, .. }) => {
                assert!(matches!(**rhs, CExpr::Ternary { .. }))
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn cast_expression() {
        let p = parse_c("void f(int n, double *a) { a[0] = (double)n; }").unwrap();
        match &p.kernel().body[0] {
            Stmt::Expr(CExpr::Assign { rhs, .. }) => assert!(matches!(**rhs, CExpr::Cast { .. })),
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn array_param_is_pointer() {
        let p = parse_c("void f(int a[], int b[10]) { }").unwrap();
        assert!(p.kernel().params.iter().all(|pr| pr.ty.is_pointer()));
    }

    #[test]
    fn rejects_bad_assign_target() {
        assert!(matches!(
            parse_c("void f(int x) { 3 = x; }"),
            Err(CParseError::NotAnLvalue { .. })
        ));
    }

    #[test]
    fn if_else() {
        let src = "void f(int x, int *a) { if (x > 0) { a[0] = 1; } else a[0] = 2; }";
        let p = parse_c(src).unwrap();
        match &p.kernel().body[0] {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn while_loop() {
        let src = "void f(int n, int *a) { int i = 0; while (i < n) { a[i] = i; i++; } }";
        let p = parse_c(src).unwrap();
        assert!(matches!(p.kernel().body[1], Stmt::While { .. }));
    }

    #[test]
    fn constants_collected() {
        let p = parse_c("void f(int *a) { a[0] = 5 * a[1] + 7; }").unwrap();
        // Index literals are included in the pool; the validator filters.
        assert_eq!(p.kernel().int_constants(), vec![0, 5, 1, 7]);
    }
}
