//! An interpreter for the C subset with *rational* arithmetic semantics.
//!
//! The paper verifies equivalence over rational datatypes (its CBMC
//! extension, §7); accordingly this interpreter evaluates all numeric
//! expressions in exact rational arithmetic. Loop counters and indices are
//! still required to be integers at the points where integrality matters
//! (array subscripts, `%`).
//!
//! The interpreter executes a kernel [`Function`] against concrete
//! arguments and returns the final contents of every array argument —
//! which is how the pipeline obtains input/output examples (§6) and how
//! the verifier runs the legacy side of a differential test (§7).

use std::collections::HashMap;
use std::fmt;

use gtl_tensor::{Rat, RatError};

use crate::ast::{CBinOp, CExpr, CType, Function, Stmt, UnOp};

/// A runtime value: a rational number or a pointer into an array argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// A number.
    Num(Rat),
    /// A pointer: array argument slot + element offset.
    Ptr {
        /// Index into the machine's array table.
        array: usize,
        /// Element offset (may transiently go out of bounds; checked on
        /// dereference).
        offset: i64,
    },
}

/// An argument passed to a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// A scalar argument (e.g. a size `N` or a coefficient).
    Scalar(Rat),
    /// An array argument; the interpreter copies it into writable storage.
    Array(Vec<Rat>),
}

/// The outcome of running a kernel: final array contents (same order as
/// the array arguments) and the function's return value, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Final contents of each array argument, in argument order.
    pub arrays: Vec<Vec<Rat>>,
    /// The value returned by a `return` statement, if executed.
    pub ret: Option<Rat>,
}

/// A runtime error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Use of a name with no binding.
    UnboundVariable(String),
    /// Array access out of bounds.
    OutOfBounds {
        /// The array slot.
        array: usize,
        /// The offending offset.
        offset: i64,
        /// The array length.
        len: usize,
    },
    /// A numeric operation was applied to a pointer (or vice versa).
    TypeError(&'static str),
    /// Arithmetic failure (division by zero / overflow).
    Arithmetic(RatError),
    /// `%` or an array subscript used a non-integer rational.
    NonIntegral,
    /// The step budget was exhausted (runaway loop).
    FuelExhausted,
    /// Wrong number or kinds of arguments for the kernel.
    BadArguments(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnboundVariable(n) => write!(f, "unbound variable `{n}`"),
            RuntimeError::OutOfBounds { array, offset, len } => {
                write!(f, "array {array} access at {offset} out of bounds (len {len})")
            }
            RuntimeError::TypeError(m) => write!(f, "type error: {m}"),
            RuntimeError::Arithmetic(e) => write!(f, "arithmetic error: {e}"),
            RuntimeError::NonIntegral => write!(f, "non-integer used where an integer is required"),
            RuntimeError::FuelExhausted => write!(f, "step budget exhausted"),
            RuntimeError::BadArguments(m) => write!(f, "bad arguments: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<RatError> for RuntimeError {
    fn from(e: RatError) -> Self {
        RuntimeError::Arithmetic(e)
    }
}

/// Where an lvalue lives.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Place {
    Local(String),
    Elem { array: usize, offset: i64 },
}

/// Signals early function exit.
enum Flow {
    Normal,
    Return(Option<Rat>),
}

/// Default execution step budget.
pub const DEFAULT_FUEL: u64 = 50_000_000;

struct Machine {
    arrays: Vec<Vec<Rat>>,
    locals: Vec<HashMap<String, Value>>,
    fuel: u64,
}

impl Machine {
    fn spend(&mut self, amount: u64) -> Result<(), RuntimeError> {
        if self.fuel < amount {
            return Err(RuntimeError::FuelExhausted);
        }
        self.fuel -= amount;
        Ok(())
    }

    fn lookup(&self, name: &str) -> Result<Value, RuntimeError> {
        for scope in self.locals.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Ok(*v);
            }
        }
        Err(RuntimeError::UnboundVariable(name.to_string()))
    }

    fn assign_var(&mut self, name: &str, v: Value) -> Result<(), RuntimeError> {
        for scope in self.locals.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = v;
                return Ok(());
            }
        }
        Err(RuntimeError::UnboundVariable(name.to_string()))
    }

    fn declare(&mut self, name: &str, v: Value) {
        self.locals
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_string(), v);
    }

    fn read_elem(&self, array: usize, offset: i64) -> Result<Rat, RuntimeError> {
        let arr = &self.arrays[array];
        if offset < 0 || offset as usize >= arr.len() {
            return Err(RuntimeError::OutOfBounds {
                array,
                offset,
                len: arr.len(),
            });
        }
        Ok(arr[offset as usize])
    }

    fn write_elem(&mut self, array: usize, offset: i64, v: Rat) -> Result<(), RuntimeError> {
        let arr = &mut self.arrays[array];
        if offset < 0 || offset as usize >= arr.len() {
            return Err(RuntimeError::OutOfBounds {
                array,
                offset,
                len: arr.len(),
            });
        }
        arr[offset as usize] = v;
        Ok(())
    }

    fn read_place(&self, p: &Place) -> Result<Value, RuntimeError> {
        match p {
            Place::Local(n) => self.lookup(n),
            Place::Elem { array, offset } => Ok(Value::Num(self.read_elem(*array, *offset)?)),
        }
    }

    fn write_place(&mut self, p: &Place, v: Value) -> Result<(), RuntimeError> {
        match p {
            Place::Local(n) => self.assign_var(n, v),
            Place::Elem { array, offset } => match v {
                Value::Num(r) => self.write_elem(*array, *offset, r),
                Value::Ptr { .. } => Err(RuntimeError::TypeError(
                    "cannot store a pointer into a numeric array",
                )),
            },
        }
    }

    fn eval_place(&mut self, e: &CExpr) -> Result<Place, RuntimeError> {
        match e {
            CExpr::Var(n) => Ok(Place::Local(n.clone())),
            CExpr::Index { base, index } => {
                let b = self.eval(base)?;
                let i = self.eval_int(index)?;
                match b {
                    Value::Ptr { array, offset } => Ok(Place::Elem {
                        array,
                        offset: offset + i,
                    }),
                    Value::Num(_) => Err(RuntimeError::TypeError("indexing a non-pointer")),
                }
            }
            CExpr::Unary {
                op: UnOp::Deref,
                expr,
            } => match self.eval(expr)? {
                Value::Ptr { array, offset } => Ok(Place::Elem { array, offset }),
                Value::Num(_) => Err(RuntimeError::TypeError("dereferencing a non-pointer")),
            },
            _ => Err(RuntimeError::TypeError("expression is not an lvalue")),
        }
    }

    fn eval_int(&mut self, e: &CExpr) -> Result<i64, RuntimeError> {
        match self.eval(e)? {
            Value::Num(r) if r.is_integer() => {
                i64::try_from(r.numer()).map_err(|_| RuntimeError::NonIntegral)
            }
            Value::Num(_) => Err(RuntimeError::NonIntegral),
            Value::Ptr { .. } => Err(RuntimeError::TypeError("pointer used as integer")),
        }
    }

    fn eval_num(&mut self, e: &CExpr) -> Result<Rat, RuntimeError> {
        match self.eval(e)? {
            Value::Num(r) => Ok(r),
            Value::Ptr { .. } => Err(RuntimeError::TypeError("pointer used as number")),
        }
    }

    fn truthy(&mut self, e: &CExpr) -> Result<bool, RuntimeError> {
        Ok(!self.eval_num(e)?.is_zero())
    }

    fn eval(&mut self, e: &CExpr) -> Result<Value, RuntimeError> {
        self.spend(1)?;
        match e {
            CExpr::IntLit(v) => Ok(Value::Num(Rat::from(*v))),
            CExpr::FloatLit {
                mantissa,
                frac_digits,
            } => {
                let den = 10i128
                    .checked_pow(*frac_digits)
                    .ok_or(RuntimeError::Arithmetic(RatError::Overflow))?;
                Ok(Value::Num(Rat::new(*mantissa as i128, den)))
            }
            CExpr::Var(n) => self.lookup(n),
            CExpr::Unary { op, expr } => match op {
                UnOp::Neg => Ok(Value::Num(-self.eval_num(expr)?)),
                UnOp::Not => Ok(Value::Num(if self.eval_num(expr)?.is_zero() {
                    Rat::ONE
                } else {
                    Rat::ZERO
                })),
                UnOp::Deref => {
                    let p = self.eval_place(e)?;
                    self.read_place(&p)
                }
                UnOp::AddrOf => {
                    // &expr: expr must denote an array element; taking the
                    // address of a scalar local has no place in the
                    // array-argument memory model.
                    match self.eval_place(expr)? {
                        Place::Elem { array, offset } => Ok(Value::Ptr { array, offset }),
                        Place::Local(_) => Err(RuntimeError::TypeError(
                            "address-of a scalar local is not supported",
                        )),
                    }
                }
            },
            CExpr::PostInc(inner) => self.post_step(inner, 1),
            CExpr::PostDec(inner) => self.post_step(inner, -1),
            CExpr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            CExpr::Index { .. } => {
                let p = self.eval_place(e)?;
                self.read_place(&p)
            }
            CExpr::Assign { op, lhs, rhs } => {
                let place = self.eval_place(lhs)?;
                let rv = self.eval(rhs)?;
                let new = match op.arith() {
                    None => rv,
                    Some(a) => {
                        let old = self.read_place(&place)?;
                        self.apply_arith(a, old, rv)?
                    }
                };
                self.write_place(&place, new)?;
                Ok(new)
            }
            CExpr::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                if self.truthy(cond)? {
                    self.eval(then_val)
                } else {
                    self.eval(else_val)
                }
            }
            CExpr::Cast { expr, ty } => {
                // Rational semantics: casts between numeric types are
                // no-ops; casting to a pointer type is not supported.
                if ty.is_pointer() {
                    return Err(RuntimeError::TypeError("pointer casts are not supported"));
                }
                self.eval(expr)
            }
        }
    }

    fn post_step(&mut self, inner: &CExpr, delta: i64) -> Result<Value, RuntimeError> {
        let place = self.eval_place(inner)?;
        let old = self.read_place(&place)?;
        let new = match old {
            Value::Num(r) => Value::Num(r.checked_add(Rat::from(delta))?),
            Value::Ptr { array, offset } => Value::Ptr {
                array,
                offset: offset + delta,
            },
        };
        self.write_place(&place, new)?;
        Ok(old)
    }

    fn apply_arith(&self, op: CBinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
        match (l, r) {
            (Value::Num(a), Value::Num(b)) => {
                let v = match op {
                    CBinOp::Add => a.checked_add(b)?,
                    CBinOp::Sub => a.checked_sub(b)?,
                    CBinOp::Mul => a.checked_mul(b)?,
                    CBinOp::Div => a.checked_div(b)?,
                    CBinOp::Rem => {
                        if !a.is_integer() || !b.is_integer() {
                            return Err(RuntimeError::NonIntegral);
                        }
                        if b.is_zero() {
                            return Err(RuntimeError::Arithmetic(RatError::DivisionByZero));
                        }
                        Rat::new(a.numer() % b.numer(), 1)
                    }
                    _ => unreachable!("apply_arith only handles arithmetic ops"),
                };
                Ok(Value::Num(v))
            }
            // Pointer arithmetic: p + n, p - n, n + p.
            (Value::Ptr { array, offset }, Value::Num(n)) if matches!(op, CBinOp::Add | CBinOp::Sub) => {
                if !n.is_integer() {
                    return Err(RuntimeError::NonIntegral);
                }
                let d = i64::try_from(n.numer()).map_err(|_| RuntimeError::NonIntegral)?;
                let offset = if op == CBinOp::Add { offset + d } else { offset - d };
                Ok(Value::Ptr { array, offset })
            }
            (Value::Num(n), Value::Ptr { array, offset }) if op == CBinOp::Add => {
                if !n.is_integer() {
                    return Err(RuntimeError::NonIntegral);
                }
                let d = i64::try_from(n.numer()).map_err(|_| RuntimeError::NonIntegral)?;
                Ok(Value::Ptr {
                    array,
                    offset: offset + d,
                })
            }
            (Value::Ptr { array: a1, offset: o1 }, Value::Ptr { array: a2, offset: o2 })
                if op == CBinOp::Sub && a1 == a2 =>
            {
                Ok(Value::Num(Rat::from(o1 - o2)))
            }
            _ => Err(RuntimeError::TypeError("invalid operand types")),
        }
    }

    fn eval_binary(&mut self, op: CBinOp, lhs: &CExpr, rhs: &CExpr) -> Result<Value, RuntimeError> {
        // Short-circuit logical operators.
        match op {
            CBinOp::And => {
                return Ok(Value::Num(if self.truthy(lhs)? && self.truthy(rhs)? {
                    Rat::ONE
                } else {
                    Rat::ZERO
                }))
            }
            CBinOp::Or => {
                return Ok(Value::Num(if self.truthy(lhs)? || self.truthy(rhs)? {
                    Rat::ONE
                } else {
                    Rat::ZERO
                }))
            }
            _ => {}
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        if op.is_arith() || op == CBinOp::Rem {
            return self.apply_arith(op, l, r);
        }
        // Comparisons.
        let b = match (l, r) {
            (Value::Num(a), Value::Num(b)) => match op {
                CBinOp::Lt => a < b,
                CBinOp::Le => a <= b,
                CBinOp::Gt => a > b,
                CBinOp::Ge => a >= b,
                CBinOp::EqEq => a == b,
                CBinOp::Ne => a != b,
                _ => unreachable!("logical ops handled above"),
            },
            (Value::Ptr { array: a1, offset: o1 }, Value::Ptr { array: a2, offset: o2 })
                if a1 == a2 =>
            {
                match op {
                    CBinOp::Lt => o1 < o2,
                    CBinOp::Le => o1 <= o2,
                    CBinOp::Gt => o1 > o2,
                    CBinOp::Ge => o1 >= o2,
                    CBinOp::EqEq => o1 == o2,
                    CBinOp::Ne => o1 != o2,
                    _ => unreachable!("logical ops handled above"),
                }
            }
            _ => return Err(RuntimeError::TypeError("invalid comparison operands")),
        };
        Ok(Value::Num(if b { Rat::ONE } else { Rat::ZERO }))
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, RuntimeError> {
        self.locals.push(HashMap::new());
        let r = self.exec_stmts(stmts);
        self.locals.pop();
        r
    }

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> Result<Flow, RuntimeError> {
        for s in stmts {
            match self.exec_stmt(s)? {
                Flow::Normal => {}
                ret @ Flow::Return(_) => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<Flow, RuntimeError> {
        self.spend(1)?;
        match s {
            Stmt::Decl { name, ty, init } => {
                let v = match init {
                    Some(e) => self.eval(e)?,
                    None => match ty {
                        CType::Num(_) => Value::Num(Rat::ZERO),
                        // Uninitialised pointer: poison via impossible slot;
                        // any use will be caught as out-of-bounds.
                        CType::Ptr(_) => Value::Ptr {
                            array: usize::MAX,
                            offset: 0,
                        },
                    },
                };
                self.declare(name, v);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.locals.push(HashMap::new());
                let result = (|| {
                    if let Some(i) = init {
                        if let Flow::Return(v) = self.exec_stmt(i)? {
                            return Ok(Flow::Return(v));
                        }
                    }
                    loop {
                        if let Some(c) = cond {
                            if !self.truthy(c)? {
                                break;
                            }
                        }
                        match self.exec_block(body)? {
                            Flow::Normal => {}
                            ret @ Flow::Return(_) => return Ok(ret),
                        }
                        if let Some(st) = step {
                            self.eval(st)?;
                        }
                        self.spend(1)?;
                    }
                    Ok(Flow::Normal)
                })();
                self.locals.pop();
                result
            }
            Stmt::While { cond, body } => {
                loop {
                    if !self.truthy(cond)? {
                        break;
                    }
                    match self.exec_block(body)? {
                        Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    self.spend(1)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.truthy(cond)? {
                    self.exec_block(then_body)
                } else {
                    self.exec_block(else_body)
                }
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.eval_num(e)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Block(b) => self.exec_block(b),
            Stmt::Multi(decls) => self.exec_stmts(decls),
        }
    }
}

/// Runs `func` on the given arguments with the default step budget.
///
/// Arguments must match the parameter kinds: [`ArgValue::Scalar`] for
/// numeric parameters, [`ArgValue::Array`] for pointer parameters.
///
/// ```
/// use gtl_cfront::{parse_c, run_kernel, ArgValue};
/// use gtl_tensor::Rat;
///
/// let p = parse_c("void scale(int n, int *a) { for (int i = 0; i < n; i++) a[i] = a[i] * 2; }")
///     .unwrap();
/// let result = run_kernel(
///     p.kernel(),
///     vec![
///         ArgValue::Scalar(Rat::from(3)),
///         ArgValue::Array(vec![Rat::from(1), Rat::from(2), Rat::from(3)]),
///     ],
/// )
/// .unwrap();
/// assert_eq!(result.arrays[0], vec![Rat::from(2), Rat::from(4), Rat::from(6)]);
/// ```
pub fn run_kernel(func: &Function, args: Vec<ArgValue>) -> Result<ExecResult, RuntimeError> {
    run_kernel_with_fuel(func, args, DEFAULT_FUEL)
}

/// Runs `func` with an explicit step budget.
pub fn run_kernel_with_fuel(
    func: &Function,
    args: Vec<ArgValue>,
    fuel: u64,
) -> Result<ExecResult, RuntimeError> {
    if args.len() != func.params.len() {
        return Err(RuntimeError::BadArguments(format!(
            "expected {} arguments, got {}",
            func.params.len(),
            args.len()
        )));
    }
    let mut machine = Machine {
        arrays: Vec::new(),
        locals: vec![HashMap::new()],
        fuel,
    };
    for (param, arg) in func.params.iter().zip(args) {
        let v = match (param.ty, arg) {
            (CType::Num(_), ArgValue::Scalar(r)) => Value::Num(r),
            (CType::Ptr(_), ArgValue::Array(data)) => {
                machine.arrays.push(data);
                Value::Ptr {
                    array: machine.arrays.len() - 1,
                    offset: 0,
                }
            }
            (ty, arg) => {
                return Err(RuntimeError::BadArguments(format!(
                    "parameter `{}` of type {ty} received incompatible argument {arg:?}",
                    param.name
                )))
            }
        };
        machine.declare(&param.name, v);
    }
    let flow = machine.exec_stmts(&func.body)?;
    let ret = match flow {
        Flow::Return(v) => v,
        Flow::Normal => None,
    };
    Ok(ExecResult {
        arrays: machine.arrays,
        ret,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_c;

    fn ints(vals: &[i64]) -> Vec<Rat> {
        vals.iter().map(|&v| Rat::from(v)).collect()
    }

    const FIGURE2: &str = r#"
void function(int N, int *Mat1, int *Mat2, int *Result) {
    int *p_m1;
    int *p_m2;
    int *p_t;
    int i, f;
    p_m1 = Mat1;
    p_t = Result;
    for (f = 0; f < N; f++) {
        *p_t = 0;
        p_m2 = &Mat2[0];
        for (i = 0; i < N; i++)
            *p_t += *p_m1++ * *p_m2++;
        p_t++;
    }
}
"#;

    #[test]
    fn figure2_gemv() {
        let p = parse_c(FIGURE2).unwrap();
        // N = 2, Mat1 = [[1,2],[3,4]], Mat2 = [10, 100].
        let res = run_kernel(
            p.kernel(),
            vec![
                ArgValue::Scalar(Rat::from(2)),
                ArgValue::Array(ints(&[1, 2, 3, 4])),
                ArgValue::Array(ints(&[10, 100])),
                ArgValue::Array(ints(&[0, 0])),
            ],
        )
        .unwrap();
        assert_eq!(res.arrays[2], ints(&[210, 430]));
    }

    #[test]
    fn pointer_reset_semantics() {
        // p_m2 resets to &Mat2[0] per outer iteration while p_m1 runs on:
        // with N=2 p_m1 visits elements 0,1,2,3.
        let p = parse_c(FIGURE2).unwrap();
        let res = run_kernel(
            p.kernel(),
            vec![
                ArgValue::Scalar(Rat::from(2)),
                ArgValue::Array(ints(&[1, 0, 0, 1])), // identity
                ArgValue::Array(ints(&[7, 9])),
                ArgValue::Array(ints(&[0, 0])),
            ],
        )
        .unwrap();
        assert_eq!(res.arrays[2], ints(&[7, 9]));
    }

    #[test]
    fn compound_assignment_and_division() {
        let src = "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) a[i] /= b[i]; }";
        let p = parse_c(src).unwrap();
        let res = run_kernel(
            p.kernel(),
            vec![
                ArgValue::Scalar(Rat::from(2)),
                ArgValue::Array(ints(&[1, 3])),
                ArgValue::Array(ints(&[2, 4])),
            ],
        )
        .unwrap();
        // Rational semantics: 1/2 and 3/4 exactly.
        assert_eq!(res.arrays[0], vec![Rat::new(1, 2), Rat::new(3, 4)]);
    }

    #[test]
    fn division_by_zero_detected() {
        let src = "void f(int *a, int *b) { a[0] = a[0] / b[0]; }";
        let p = parse_c(src).unwrap();
        let err = run_kernel(
            p.kernel(),
            vec![ArgValue::Array(ints(&[1])), ArgValue::Array(ints(&[0]))],
        )
        .unwrap_err();
        assert_eq!(err, RuntimeError::Arithmetic(RatError::DivisionByZero));
    }

    #[test]
    fn out_of_bounds_detected() {
        let src = "void f(int n, int *a) { a[n] = 1; }";
        let p = parse_c(src).unwrap();
        let err = run_kernel(
            p.kernel(),
            vec![ArgValue::Scalar(Rat::from(3)), ArgValue::Array(ints(&[0, 0, 0]))],
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::OutOfBounds { offset: 3, .. }));
    }

    #[test]
    fn while_and_return() {
        let src = r#"
int sum(int n, int *a) {
    int s = 0;
    int i = 0;
    while (i < n) { s += a[i]; i++; }
    return s;
}
"#;
        let p = parse_c(src).unwrap();
        let res = run_kernel(
            p.kernel(),
            vec![ArgValue::Scalar(Rat::from(3)), ArgValue::Array(ints(&[5, 6, 7]))],
        )
        .unwrap();
        assert_eq!(res.ret, Some(Rat::from(18)));
    }

    #[test]
    fn ternary_max() {
        let src = "void relu(int n, int *a, int *out) { for (int i = 0; i < n; i++) out[i] = a[i] > 0 ? a[i] : 0; }";
        let p = parse_c(src).unwrap();
        let res = run_kernel(
            p.kernel(),
            vec![
                ArgValue::Scalar(Rat::from(3)),
                ArgValue::Array(ints(&[-1, 2, -3])),
                ArgValue::Array(ints(&[9, 9, 9])),
            ],
        )
        .unwrap();
        assert_eq!(res.arrays[1], ints(&[0, 2, 0]));
    }

    #[test]
    fn runaway_loop_hits_fuel() {
        let src = "void f(int *a) { while (1) { a[0] = a[0] + 1; } }";
        let p = parse_c(src).unwrap();
        let err =
            run_kernel_with_fuel(p.kernel(), vec![ArgValue::Array(ints(&[0]))], 10_000).unwrap_err();
        assert_eq!(err, RuntimeError::FuelExhausted);
    }

    #[test]
    fn float_literal_is_exact() {
        let src = "void f(double *a) { a[0] = 0.25; }";
        let p = parse_c(src).unwrap();
        let res = run_kernel(p.kernel(), vec![ArgValue::Array(ints(&[0]))]).unwrap();
        assert_eq!(res.arrays[0][0], Rat::new(1, 4));
    }

    #[test]
    fn modulo_is_c_truncating() {
        let src = "void f(int *a) { a[0] = -7 % 3; }";
        let p = parse_c(src).unwrap();
        let res = run_kernel(p.kernel(), vec![ArgValue::Array(ints(&[0]))]).unwrap();
        // C: (-7) % 3 == -1.
        assert_eq!(res.arrays[0][0], Rat::from(-1));
    }

    #[test]
    fn scope_shadowing() {
        let src = r#"
void f(int *a) {
    int x = 1;
    { int x = 2; a[0] = x; }
    a[1] = x;
}
"#;
        let p = parse_c(src).unwrap();
        let res = run_kernel(p.kernel(), vec![ArgValue::Array(ints(&[0, 0]))]).unwrap();
        assert_eq!(res.arrays[0], ints(&[2, 1]));
    }

    #[test]
    fn bad_arguments_rejected() {
        let p = parse_c("void f(int n) { }").unwrap();
        assert!(matches!(
            run_kernel(p.kernel(), vec![]),
            Err(RuntimeError::BadArguments(_))
        ));
        assert!(matches!(
            run_kernel(p.kernel(), vec![ArgValue::Array(vec![])]),
            Err(RuntimeError::BadArguments(_))
        ));
    }

    #[test]
    fn pointer_difference() {
        let src = "void f(int *a, int *out) { int *p = a + 5; out[0] = p - a; }";
        let p = parse_c(src).unwrap();
        let res = run_kernel(
            p.kernel(),
            vec![
                ArgValue::Array(ints(&[0; 8])),
                ArgValue::Array(ints(&[0])),
            ],
        )
        .unwrap();
        assert_eq!(res.arrays[1][0], Rat::from(5));
    }
}
