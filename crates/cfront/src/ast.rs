//! Abstract syntax for the C subset understood by the lifting pipeline.
//!
//! The subset covers the legacy tensor kernels the paper lifts: functions
//! over scalar and pointer parameters, declarations, `for`/`while`/`if`,
//! assignments (plain and compound), pointer arithmetic including
//! post-increment idioms like `*p_t += *p_m1++ * *p_m2++;` (Fig. 2), and
//! affine array indexing like `A[i*N + j]`.

use std::fmt;

/// A numeric element type. The interpreter gives all of these *rational*
/// semantics, mirroring the paper's rational-datatype extension of CBMC
/// (§7); the distinction is kept for parsing fidelity and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumType {
    /// `int`
    Int,
    /// `float`
    Float,
    /// `double`
    Double,
}

impl fmt::Display for NumType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumType::Int => write!(f, "int"),
            NumType::Float => write!(f, "float"),
            NumType::Double => write!(f, "double"),
        }
    }
}

/// A C type in the subset: a number or a pointer to numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CType {
    /// A scalar numeric type.
    Num(NumType),
    /// A pointer to a numeric element type.
    Ptr(NumType),
}

impl CType {
    /// Whether this is a pointer type.
    pub fn is_pointer(self) -> bool {
        matches!(self, CType::Ptr(_))
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CType::Num(n) => write!(f, "{n}"),
            CType::Ptr(n) => write!(f, "{n} *"),
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: CType,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Pointer dereference `*e`.
    Deref,
    /// Address-of `&e`.
    AddrOf,
    /// Logical not `!e`.
    Not,
}

/// Binary operators (arithmetic, comparison, logical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integer modulo; operands must be integral at runtime)
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl CBinOp {
    /// Whether the operator is one of the four arithmetic ones that can
    /// appear in lifted TACO code.
    pub fn is_arith(self) -> bool {
        matches!(self, CBinOp::Add | CBinOp::Sub | CBinOp::Mul | CBinOp::Div)
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
}

impl AssignOp {
    /// The arithmetic operator a compound assignment applies, if any.
    pub fn arith(self) -> Option<CBinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::AddAssign => Some(CBinOp::Add),
            AssignOp::SubAssign => Some(CBinOp::Sub),
            AssignOp::MulAssign => Some(CBinOp::Mul),
            AssignOp::DivAssign => Some(CBinOp::Div),
        }
    }
}

/// A C expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// Integer literal.
    IntLit(i64),
    /// Floating literal, stored exactly as parsed (mantissa, power of ten)
    /// so the rational interpreter loses nothing: `0.25` is `(25, 2)`.
    FloatLit {
        /// The digits with the decimal point removed.
        mantissa: i64,
        /// Number of digits after the decimal point.
        frac_digits: u32,
    },
    /// A variable reference.
    Var(String),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<CExpr>,
    },
    /// Post-increment `e++`.
    PostInc(Box<CExpr>),
    /// Post-decrement `e--`.
    PostDec(Box<CExpr>),
    /// A binary operation.
    Binary {
        /// The operator.
        op: CBinOp,
        /// Left operand.
        lhs: Box<CExpr>,
        /// Right operand.
        rhs: Box<CExpr>,
    },
    /// Array indexing `base[index]`.
    Index {
        /// The indexed expression (array or pointer valued).
        base: Box<CExpr>,
        /// The index expression.
        index: Box<CExpr>,
    },
    /// Assignment, usable in expression position as in C.
    Assign {
        /// The assignment operator.
        op: AssignOp,
        /// The assigned lvalue.
        lhs: Box<CExpr>,
        /// The value expression.
        rhs: Box<CExpr>,
    },
    /// A ternary conditional `c ? t : e`.
    Ternary {
        /// Condition.
        cond: Box<CExpr>,
        /// Value if true.
        then_val: Box<CExpr>,
        /// Value if false.
        else_val: Box<CExpr>,
    },
    /// A cast `(type) e`; a no-op under rational semantics.
    Cast {
        /// Target type.
        ty: CType,
        /// Operand.
        expr: Box<CExpr>,
    },
}

impl CExpr {
    /// Convenience constructor for binary nodes.
    pub fn binary(op: CBinOp, lhs: CExpr, rhs: CExpr) -> CExpr {
        CExpr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for a variable.
    pub fn var(name: &str) -> CExpr {
        CExpr::Var(name.to_string())
    }

    /// Collects every integer literal in the expression (the constant pool
    /// used to instantiate `Const` template symbols, §6).
    pub fn collect_int_literals(&self, out: &mut Vec<i64>) {
        match self {
            CExpr::IntLit(v) => out.push(*v),
            CExpr::FloatLit { .. } | CExpr::Var(_) => {}
            CExpr::Unary { expr, .. } | CExpr::PostInc(expr) | CExpr::PostDec(expr) => {
                expr.collect_int_literals(out)
            }
            CExpr::Binary { lhs, rhs, .. } => {
                lhs.collect_int_literals(out);
                rhs.collect_int_literals(out);
            }
            CExpr::Index { base, index } => {
                base.collect_int_literals(out);
                index.collect_int_literals(out);
            }
            CExpr::Assign { lhs, rhs, .. } => {
                lhs.collect_int_literals(out);
                rhs.collect_int_literals(out);
            }
            CExpr::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                cond.collect_int_literals(out);
                then_val.collect_int_literals(out);
                else_val.collect_int_literals(out);
            }
            CExpr::Cast { expr, .. } => expr.collect_int_literals(out),
        }
    }
}

/// A C statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A local declaration, possibly initialised.
    Decl {
        /// Variable name.
        name: String,
        /// Variable type.
        ty: CType,
        /// Optional initialiser.
        init: Option<CExpr>,
    },
    /// An expression statement (assignments, increments…).
    Expr(CExpr),
    /// A `for` loop.
    For {
        /// Loop initialiser (a declaration or expression statement).
        init: Option<Box<Stmt>>,
        /// Loop condition; `None` means `for(;;)`.
        cond: Option<CExpr>,
        /// Loop step expression.
        step: Option<CExpr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A `while` loop.
    While {
        /// Loop condition.
        cond: CExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// An `if` statement.
    If {
        /// Condition.
        cond: CExpr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (empty if absent).
        else_body: Vec<Stmt>,
    },
    /// A `return`, with optional value.
    Return(Option<CExpr>),
    /// A braced block (introduces a scope).
    Block(Vec<Stmt>),
    /// Several declarations produced by one source statement
    /// (`int i, f;`). Unlike [`Stmt::Block`], these execute in the
    /// *enclosing* scope.
    Multi(Vec<Stmt>),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type; `None` for `void`.
    pub ret: Option<CType>,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Looks up a parameter index by name.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Collects every integer literal appearing in the body, deduplicated
    /// and in order of first appearance. This is the constant pool the
    /// validator draws from when instantiating `Const` symbols.
    pub fn int_constants(&self) -> Vec<i64> {
        let mut all = Vec::new();
        collect_stmt_literals(&self.body, &mut all);
        let mut uniq = Vec::new();
        for v in all {
            if !uniq.contains(&v) {
                uniq.push(v);
            }
        }
        uniq
    }
}

fn collect_stmt_literals(stmts: &[Stmt], out: &mut Vec<i64>) {
    for s in stmts {
        match s {
            Stmt::Decl { init, .. } => {
                if let Some(e) = init {
                    e.collect_int_literals(out);
                }
            }
            Stmt::Expr(e) => e.collect_int_literals(out),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    collect_stmt_literals(std::slice::from_ref(i), out);
                }
                if let Some(c) = cond {
                    c.collect_int_literals(out);
                }
                if let Some(st) = step {
                    st.collect_int_literals(out);
                }
                collect_stmt_literals(body, out);
            }
            Stmt::While { cond, body } => {
                cond.collect_int_literals(out);
                collect_stmt_literals(body, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                cond.collect_int_literals(out);
                collect_stmt_literals(then_body, out);
                collect_stmt_literals(else_body, out);
            }
            Stmt::Return(Some(e)) => e.collect_int_literals(out),
            Stmt::Return(None) => {}
            Stmt::Block(b) | Stmt::Multi(b) => collect_stmt_literals(b, out),
        }
    }
}

/// A translation unit: one or more function definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct CProgram {
    /// The functions, in source order.
    pub functions: Vec<Function>,
}

impl CProgram {
    /// The first function in the unit (the kernel, by convention).
    pub fn kernel(&self) -> &Function {
        &self.functions[0]
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_collection_dedups() {
        let f = Function {
            name: "f".into(),
            ret: None,
            params: vec![],
            body: vec![
                Stmt::Expr(CExpr::binary(
                    CBinOp::Add,
                    CExpr::IntLit(2),
                    CExpr::IntLit(3),
                )),
                Stmt::Expr(CExpr::IntLit(2)),
            ],
        };
        assert_eq!(f.int_constants(), vec![2, 3]);
    }

    #[test]
    fn assign_op_arith() {
        assert_eq!(AssignOp::AddAssign.arith(), Some(CBinOp::Add));
        assert_eq!(AssignOp::Assign.arith(), None);
    }

    #[test]
    fn type_display() {
        assert_eq!(CType::Ptr(NumType::Int).to_string(), "int *");
        assert_eq!(CType::Num(NumType::Double).to_string(), "double");
    }
}
