//! A bytecode compiler for the C subset: the reference interpreter's
//! fast path.
//!
//! [`crate::interp`] resolves every variable by walking a stack of
//! `HashMap` scopes at runtime — fine for one-off runs, but `run_reference`
//! sits on the hot path of example generation and both verifiers, where
//! the *same* kernel executes thousands of times. This module lowers a
//! [`Function`] **once** into a flat, slot-resolved program:
//!
//! - every local resolves at compile time to a frame slot (`Vec<Value>`
//!   indexing — no strings, no hashing, no scope stack at runtime);
//! - expressions, lvalues and statements live in typed arenas addressed
//!   by `u32` node ids, so execution walks dense vectors;
//! - fuel accounting and error classification mirror the interpreter
//!   *exactly*: the compiled program spends one fuel unit at every point
//!   the interpreter does and produces bit-identical
//!   [`RuntimeError`] values on every input (the differential tests
//!   sweep fuel budgets one unit at a time to prove it).
//!
//! # Why compile-time resolution is sound
//!
//! The interpreter uses dynamic scoping: `lookup` walks the scope stack
//! innermost-first. The subset has no `goto`/`break`/`continue`, so
//! within a block, statement *k* executes only after statements
//! `0..k` of the same block entry — a use that lexically follows a
//! declaration in its block is always preceded by that declaration's
//! execution, and a use that lexically *precedes* it (or sits in a loop
//! body before the declaration statement) can never observe it, because
//! each block entry starts from a fresh scope. Resolving names at their
//! point of declaration in statement order therefore reproduces the
//! dynamic behaviour, including use-before-declaration binding to outer
//! scopes and unbound names erroring only when actually read or written.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use gtl_tensor::{Rat, RatError};

use crate::ast::{AssignOp, CBinOp, CExpr, CType, Function, Param, Stmt, UnOp};
use crate::interp::{ArgValue, ExecResult, RuntimeError, Value};

type ExprId = u32;
type PlaceId = u32;
type StmtId = u32;

/// A contiguous run of statement ids in the sequence arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Seq {
    start: u32,
    len: u32,
}

/// A compiled rvalue expression node.
#[derive(Debug, Clone, PartialEq)]
enum ExprNode {
    /// Integer literal.
    Int(i64),
    /// Float literal kept in parsed form; the denominator is computed at
    /// evaluation time so an exponent overflow classifies exactly as the
    /// interpreter's (and is never raised by dead code).
    Float { mantissa: i64, frac_digits: u32 },
    /// A resolved local / parameter read.
    Slot(u32),
    /// A name with no binding at this point; errors when evaluated.
    Unbound(u32),
    /// Array element or dereference read (`a[i]`, `*p`).
    ReadPlace(PlaceId),
    /// Arithmetic negation.
    Neg(ExprId),
    /// Logical not.
    Not(ExprId),
    /// `&lvalue`.
    AddrOf(PlaceId),
    /// Post-increment / post-decrement (`delta` = ±1).
    PostStep(PlaceId, i64),
    /// Binary operation (including short-circuiting `&&`/`||`).
    Binary { op: CBinOp, lhs: ExprId, rhs: ExprId },
    /// Assignment, plain or compound.
    Assign {
        op: AssignOp,
        place: PlaceId,
        rhs: ExprId,
    },
    /// `c ? t : e`.
    Ternary {
        cond: ExprId,
        then_val: ExprId,
        else_val: ExprId,
    },
    /// Numeric cast: a fuel-spending no-op wrapper.
    CastNum(ExprId),
    /// Pointer cast: spends fuel, then errors (unsupported).
    CastPtr,
}

/// A compiled lvalue expression.
#[derive(Debug, Clone, PartialEq)]
enum PlaceNode {
    /// A resolved local / parameter.
    Slot(u32),
    /// An unresolved name; errors on read/write, not on place formation
    /// (mirroring the interpreter's late lookup).
    Unbound(u32),
    /// `base[index]`.
    Elem { base: ExprId, index: ExprId },
    /// `*expr`.
    Deref(ExprId),
    /// Not an lvalue at all; errors when the place is evaluated.
    NotLvalue,
}

/// A compiled statement.
#[derive(Debug, Clone, PartialEq)]
enum StmtNode {
    Decl {
        slot: u32,
        is_ptr: bool,
        init: Option<ExprId>,
    },
    Expr(ExprId),
    For {
        init: Option<StmtId>,
        cond: Option<ExprId>,
        step: Option<ExprId>,
        body: Seq,
    },
    While {
        cond: ExprId,
        body: Seq,
    },
    If {
        cond: ExprId,
        then_body: Seq,
        else_body: Seq,
    },
    Return(Option<ExprId>),
    /// A block or multi-declaration: scoping is compiled away, so both
    /// reduce to "run these statements".
    Seq(Seq),
}

/// A [`Function`] lowered to slot-resolved arenas, executable any number
/// of times via [`run_compiled`] with results bit-identical to
/// [`crate::run_kernel`] — same outputs, same [`RuntimeError`]
/// classification, same fuel accounting.
///
/// ```
/// use gtl_cfront::{compile_fn, parse_c, run_compiled, ArgValue};
/// use gtl_tensor::Rat;
///
/// let p = parse_c("void scale(int n, int *a) { for (int i = 0; i < n; i++) a[i] = a[i] * 2; }")
///     .unwrap();
/// let compiled = compile_fn(p.kernel());
/// let result = run_compiled(
///     &compiled,
///     vec![
///         ArgValue::Scalar(Rat::from(2)),
///         ArgValue::Array(vec![Rat::from(1), Rat::from(2)]),
///     ],
/// )
/// .unwrap();
/// assert_eq!(result.arrays[0], vec![Rat::from(2), Rat::from(4)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFn {
    name: String,
    params: Vec<Param>,
    n_slots: usize,
    exprs: Vec<ExprNode>,
    places: Vec<PlaceNode>,
    stmts: Vec<StmtNode>,
    seq_items: Vec<StmtId>,
    /// Interned names, for `UnboundVariable` diagnostics only.
    names: Vec<String>,
    body: Seq,
}

impl CompiledFn {
    /// The compiled function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameters, in order (same as the source [`Function`]).
    pub fn params(&self) -> &[Param] {
        &self.params
    }
}

/// Compiles `func` to its slot-resolved form. Compilation is total:
/// constructs the interpreter treats as runtime errors (unbound names,
/// non-lvalue assignment targets, pointer casts) compile to nodes that
/// raise the same error at the same evaluation point.
pub fn compile_fn(func: &Function) -> CompiledFn {
    let mut c = Compiler {
        out: CompiledFn {
            name: func.name.clone(),
            params: func.params.clone(),
            n_slots: func.params.len(),
            exprs: Vec::new(),
            places: Vec::new(),
            stmts: Vec::new(),
            seq_items: Vec::new(),
            names: Vec::new(),
            body: Seq { start: 0, len: 0 },
        },
        scopes: vec![func
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i as u32))
            .collect()],
        name_ids: HashMap::new(),
    };
    c.out.body = c.compile_seq(&func.body);
    c.out
}

struct Compiler {
    out: CompiledFn,
    /// Lexical scope stack mirroring the interpreter's dynamic one,
    /// advanced statement by statement (declarations register only once
    /// their statement is reached).
    scopes: Vec<HashMap<String, u32>>,
    name_ids: HashMap<String, u32>,
}

impl Compiler {
    fn resolve(&self, name: &str) -> Option<u32> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = self.out.names.len() as u32;
        self.out.names.push(name.to_string());
        self.name_ids.insert(name.to_string(), id);
        id
    }

    fn push_expr(&mut self, node: ExprNode) -> ExprId {
        self.out.exprs.push(node);
        (self.out.exprs.len() - 1) as ExprId
    }

    fn push_place(&mut self, node: PlaceNode) -> PlaceId {
        self.out.places.push(node);
        (self.out.places.len() - 1) as PlaceId
    }

    fn push_stmt(&mut self, node: StmtNode) -> StmtId {
        self.out.stmts.push(node);
        (self.out.stmts.len() - 1) as StmtId
    }

    fn compile_seq(&mut self, stmts: &[Stmt]) -> Seq {
        let ids: Vec<StmtId> = stmts.iter().map(|s| self.compile_stmt(s)).collect();
        let start = self.out.seq_items.len() as u32;
        let len = ids.len() as u32;
        self.out.seq_items.extend(ids);
        Seq { start, len }
    }

    fn compile_scoped_seq(&mut self, stmts: &[Stmt]) -> Seq {
        self.scopes.push(HashMap::new());
        let seq = self.compile_seq(stmts);
        self.scopes.pop();
        seq
    }

    fn compile_stmt(&mut self, s: &Stmt) -> StmtId {
        let node = match s {
            Stmt::Decl { name, ty, init } => {
                // Initialiser resolves *before* the declaration registers,
                // matching `int x = x + 1;` binding the outer `x`.
                let init = init.as_ref().map(|e| self.compile_expr(e));
                let slot = self.out.n_slots as u32;
                self.out.n_slots += 1;
                self.scopes
                    .last_mut()
                    .expect("at least one scope")
                    .insert(name.clone(), slot);
                StmtNode::Decl {
                    slot,
                    is_ptr: ty.is_pointer(),
                    init,
                }
            }
            Stmt::Expr(e) => StmtNode::Expr(self.compile_expr(e)),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                let init = init.as_ref().map(|i| self.compile_stmt(i));
                let cond = cond.as_ref().map(|c| self.compile_expr(c));
                let body = self.compile_scoped_seq(body);
                let step = step.as_ref().map(|st| self.compile_expr(st));
                self.scopes.pop();
                StmtNode::For {
                    init,
                    cond,
                    step,
                    body,
                }
            }
            Stmt::While { cond, body } => StmtNode::While {
                cond: self.compile_expr(cond),
                body: self.compile_scoped_seq(body),
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => StmtNode::If {
                cond: self.compile_expr(cond),
                then_body: self.compile_scoped_seq(then_body),
                else_body: self.compile_scoped_seq(else_body),
            },
            Stmt::Return(e) => StmtNode::Return(e.as_ref().map(|e| self.compile_expr(e))),
            Stmt::Block(b) => StmtNode::Seq(self.compile_scoped_seq(b)),
            Stmt::Multi(b) => StmtNode::Seq(self.compile_seq(b)),
        };
        self.push_stmt(node)
    }

    fn compile_expr(&mut self, e: &CExpr) -> ExprId {
        let node = match e {
            CExpr::IntLit(v) => ExprNode::Int(*v),
            CExpr::FloatLit {
                mantissa,
                frac_digits,
            } => ExprNode::Float {
                mantissa: *mantissa,
                frac_digits: *frac_digits,
            },
            CExpr::Var(n) => match self.resolve(n) {
                Some(slot) => ExprNode::Slot(slot),
                None => {
                    let id = self.intern(n);
                    ExprNode::Unbound(id)
                }
            },
            CExpr::Unary { op, expr } => match op {
                UnOp::Neg => ExprNode::Neg(self.compile_expr(expr)),
                UnOp::Not => ExprNode::Not(self.compile_expr(expr)),
                UnOp::Deref => {
                    let inner = self.compile_expr(expr);
                    ExprNode::ReadPlace(self.push_place(PlaceNode::Deref(inner)))
                }
                UnOp::AddrOf => ExprNode::AddrOf(self.compile_place(expr)),
            },
            CExpr::PostInc(inner) => ExprNode::PostStep(self.compile_place(inner), 1),
            CExpr::PostDec(inner) => ExprNode::PostStep(self.compile_place(inner), -1),
            CExpr::Binary { op, lhs, rhs } => ExprNode::Binary {
                op: *op,
                lhs: self.compile_expr(lhs),
                rhs: self.compile_expr(rhs),
            },
            CExpr::Index { base, index } => {
                let base = self.compile_expr(base);
                let index = self.compile_expr(index);
                ExprNode::ReadPlace(self.push_place(PlaceNode::Elem { base, index }))
            }
            CExpr::Assign { op, lhs, rhs } => ExprNode::Assign {
                op: *op,
                place: self.compile_place(lhs),
                rhs: self.compile_expr(rhs),
            },
            CExpr::Ternary {
                cond,
                then_val,
                else_val,
            } => ExprNode::Ternary {
                cond: self.compile_expr(cond),
                then_val: self.compile_expr(then_val),
                else_val: self.compile_expr(else_val),
            },
            CExpr::Cast { ty, expr } => {
                if ty.is_pointer() {
                    // The interpreter errors before evaluating the operand;
                    // the operand is dead code and is not compiled.
                    ExprNode::CastPtr
                } else {
                    ExprNode::CastNum(self.compile_expr(expr))
                }
            }
        };
        self.push_expr(node)
    }

    fn compile_place(&mut self, e: &CExpr) -> PlaceId {
        let node = match e {
            CExpr::Var(n) => match self.resolve(n) {
                Some(slot) => PlaceNode::Slot(slot),
                None => {
                    let id = self.intern(n);
                    PlaceNode::Unbound(id)
                }
            },
            CExpr::Index { base, index } => {
                let base = self.compile_expr(base);
                let index = self.compile_expr(index);
                PlaceNode::Elem { base, index }
            }
            CExpr::Unary {
                op: UnOp::Deref,
                expr,
            } => PlaceNode::Deref(self.compile_expr(expr)),
            _ => PlaceNode::NotLvalue,
        };
        self.push_place(node)
    }
}

/// A resolved lvalue at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RPlace {
    Slot(u32),
    Unbound(u32),
    Elem { array: usize, offset: i64 },
}

/// Signals early function exit.
enum Flow {
    Normal,
    Return(Option<Rat>),
}

struct Exec<'p> {
    prog: &'p CompiledFn,
    arrays: Vec<Vec<Rat>>,
    frame: Vec<Value>,
    fuel: u64,
}

impl Exec<'_> {
    fn spend(&mut self, amount: u64) -> Result<(), RuntimeError> {
        if self.fuel < amount {
            return Err(RuntimeError::FuelExhausted);
        }
        self.fuel -= amount;
        Ok(())
    }

    fn unbound(&self, name: u32) -> RuntimeError {
        RuntimeError::UnboundVariable(self.prog.names[name as usize].clone())
    }

    fn read_elem(&self, array: usize, offset: i64) -> Result<Rat, RuntimeError> {
        let arr = &self.arrays[array];
        if offset < 0 || offset as usize >= arr.len() {
            return Err(RuntimeError::OutOfBounds {
                array,
                offset,
                len: arr.len(),
            });
        }
        Ok(arr[offset as usize])
    }

    fn write_elem(&mut self, array: usize, offset: i64, v: Rat) -> Result<(), RuntimeError> {
        let arr = &mut self.arrays[array];
        if offset < 0 || offset as usize >= arr.len() {
            return Err(RuntimeError::OutOfBounds {
                array,
                offset,
                len: arr.len(),
            });
        }
        arr[offset as usize] = v;
        Ok(())
    }

    fn read_place(&self, p: RPlace) -> Result<Value, RuntimeError> {
        match p {
            RPlace::Slot(s) => Ok(self.frame[s as usize]),
            RPlace::Unbound(n) => Err(self.unbound(n)),
            RPlace::Elem { array, offset } => Ok(Value::Num(self.read_elem(array, offset)?)),
        }
    }

    fn write_place(&mut self, p: RPlace, v: Value) -> Result<(), RuntimeError> {
        match p {
            RPlace::Slot(s) => {
                self.frame[s as usize] = v;
                Ok(())
            }
            RPlace::Unbound(n) => Err(self.unbound(n)),
            RPlace::Elem { array, offset } => match v {
                Value::Num(r) => self.write_elem(array, offset, r),
                Value::Ptr { .. } => Err(RuntimeError::TypeError(
                    "cannot store a pointer into a numeric array",
                )),
            },
        }
    }

    fn eval_place(&mut self, p: PlaceId) -> Result<RPlace, RuntimeError> {
        match self.prog.places[p as usize] {
            PlaceNode::Slot(s) => Ok(RPlace::Slot(s)),
            PlaceNode::Unbound(n) => Ok(RPlace::Unbound(n)),
            PlaceNode::Elem { base, index } => {
                let b = self.eval(base)?;
                let i = self.eval_int(index)?;
                match b {
                    Value::Ptr { array, offset } => Ok(RPlace::Elem {
                        array,
                        offset: offset + i,
                    }),
                    Value::Num(_) => Err(RuntimeError::TypeError("indexing a non-pointer")),
                }
            }
            PlaceNode::Deref(e) => match self.eval(e)? {
                Value::Ptr { array, offset } => Ok(RPlace::Elem { array, offset }),
                Value::Num(_) => Err(RuntimeError::TypeError("dereferencing a non-pointer")),
            },
            PlaceNode::NotLvalue => Err(RuntimeError::TypeError("expression is not an lvalue")),
        }
    }

    fn eval_int(&mut self, e: ExprId) -> Result<i64, RuntimeError> {
        match self.eval(e)? {
            Value::Num(r) if r.is_integer() => {
                i64::try_from(r.numer()).map_err(|_| RuntimeError::NonIntegral)
            }
            Value::Num(_) => Err(RuntimeError::NonIntegral),
            Value::Ptr { .. } => Err(RuntimeError::TypeError("pointer used as integer")),
        }
    }

    fn eval_num(&mut self, e: ExprId) -> Result<Rat, RuntimeError> {
        match self.eval(e)? {
            Value::Num(r) => Ok(r),
            Value::Ptr { .. } => Err(RuntimeError::TypeError("pointer used as number")),
        }
    }

    fn truthy(&mut self, e: ExprId) -> Result<bool, RuntimeError> {
        Ok(!self.eval_num(e)?.is_zero())
    }

    fn eval(&mut self, e: ExprId) -> Result<Value, RuntimeError> {
        self.spend(1)?;
        match self.prog.exprs[e as usize] {
            ExprNode::Int(v) => Ok(Value::Num(Rat::from(v))),
            ExprNode::Float {
                mantissa,
                frac_digits,
            } => {
                let den = 10i128
                    .checked_pow(frac_digits)
                    .ok_or(RuntimeError::Arithmetic(RatError::Overflow))?;
                Ok(Value::Num(Rat::new(mantissa as i128, den)))
            }
            ExprNode::Slot(s) => Ok(self.frame[s as usize]),
            ExprNode::Unbound(n) => Err(self.unbound(n)),
            ExprNode::ReadPlace(p) => {
                let place = self.eval_place(p)?;
                self.read_place(place)
            }
            ExprNode::Neg(e) => Ok(Value::Num(-self.eval_num(e)?)),
            ExprNode::Not(e) => Ok(Value::Num(if self.eval_num(e)?.is_zero() {
                Rat::ONE
            } else {
                Rat::ZERO
            })),
            ExprNode::AddrOf(p) => match self.eval_place(p)? {
                RPlace::Elem { array, offset } => Ok(Value::Ptr { array, offset }),
                RPlace::Slot(_) | RPlace::Unbound(_) => Err(RuntimeError::TypeError(
                    "address-of a scalar local is not supported",
                )),
            },
            ExprNode::PostStep(p, delta) => {
                let place = self.eval_place(p)?;
                let old = self.read_place(place)?;
                let new = match old {
                    Value::Num(r) => Value::Num(r.checked_add(Rat::from(delta))?),
                    Value::Ptr { array, offset } => Value::Ptr {
                        array,
                        offset: offset + delta,
                    },
                };
                self.write_place(place, new)?;
                Ok(old)
            }
            ExprNode::Binary { op, lhs, rhs } => self.eval_binary(op, lhs, rhs),
            ExprNode::Assign { op, place, rhs } => {
                let place = self.eval_place(place)?;
                let rv = self.eval(rhs)?;
                let new = match op.arith() {
                    None => rv,
                    Some(a) => {
                        let old = self.read_place(place)?;
                        self.apply_arith(a, old, rv)?
                    }
                };
                self.write_place(place, new)?;
                Ok(new)
            }
            ExprNode::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                if self.truthy(cond)? {
                    self.eval(then_val)
                } else {
                    self.eval(else_val)
                }
            }
            ExprNode::CastNum(e) => self.eval(e),
            ExprNode::CastPtr => Err(RuntimeError::TypeError("pointer casts are not supported")),
        }
    }

    fn apply_arith(&self, op: CBinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
        match (l, r) {
            (Value::Num(a), Value::Num(b)) => {
                let v = match op {
                    CBinOp::Add => a.checked_add(b)?,
                    CBinOp::Sub => a.checked_sub(b)?,
                    CBinOp::Mul => a.checked_mul(b)?,
                    CBinOp::Div => a.checked_div(b)?,
                    CBinOp::Rem => {
                        if !a.is_integer() || !b.is_integer() {
                            return Err(RuntimeError::NonIntegral);
                        }
                        if b.is_zero() {
                            return Err(RuntimeError::Arithmetic(RatError::DivisionByZero));
                        }
                        Rat::new(a.numer() % b.numer(), 1)
                    }
                    _ => unreachable!("apply_arith only handles arithmetic ops"),
                };
                Ok(Value::Num(v))
            }
            (Value::Ptr { array, offset }, Value::Num(n))
                if matches!(op, CBinOp::Add | CBinOp::Sub) =>
            {
                if !n.is_integer() {
                    return Err(RuntimeError::NonIntegral);
                }
                let d = i64::try_from(n.numer()).map_err(|_| RuntimeError::NonIntegral)?;
                let offset = if op == CBinOp::Add {
                    offset + d
                } else {
                    offset - d
                };
                Ok(Value::Ptr { array, offset })
            }
            (Value::Num(n), Value::Ptr { array, offset }) if op == CBinOp::Add => {
                if !n.is_integer() {
                    return Err(RuntimeError::NonIntegral);
                }
                let d = i64::try_from(n.numer()).map_err(|_| RuntimeError::NonIntegral)?;
                Ok(Value::Ptr {
                    array,
                    offset: offset + d,
                })
            }
            (
                Value::Ptr {
                    array: a1,
                    offset: o1,
                },
                Value::Ptr {
                    array: a2,
                    offset: o2,
                },
            ) if op == CBinOp::Sub && a1 == a2 => Ok(Value::Num(Rat::from(o1 - o2))),
            _ => Err(RuntimeError::TypeError("invalid operand types")),
        }
    }

    fn eval_binary(&mut self, op: CBinOp, lhs: ExprId, rhs: ExprId) -> Result<Value, RuntimeError> {
        match op {
            CBinOp::And => {
                return Ok(Value::Num(if self.truthy(lhs)? && self.truthy(rhs)? {
                    Rat::ONE
                } else {
                    Rat::ZERO
                }))
            }
            CBinOp::Or => {
                return Ok(Value::Num(if self.truthy(lhs)? || self.truthy(rhs)? {
                    Rat::ONE
                } else {
                    Rat::ZERO
                }))
            }
            _ => {}
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        if op.is_arith() || op == CBinOp::Rem {
            return self.apply_arith(op, l, r);
        }
        let b = match (l, r) {
            (Value::Num(a), Value::Num(b)) => match op {
                CBinOp::Lt => a < b,
                CBinOp::Le => a <= b,
                CBinOp::Gt => a > b,
                CBinOp::Ge => a >= b,
                CBinOp::EqEq => a == b,
                CBinOp::Ne => a != b,
                _ => unreachable!("logical ops handled above"),
            },
            (
                Value::Ptr {
                    array: a1,
                    offset: o1,
                },
                Value::Ptr {
                    array: a2,
                    offset: o2,
                },
            ) if a1 == a2 => match op {
                CBinOp::Lt => o1 < o2,
                CBinOp::Le => o1 <= o2,
                CBinOp::Gt => o1 > o2,
                CBinOp::Ge => o1 >= o2,
                CBinOp::EqEq => o1 == o2,
                CBinOp::Ne => o1 != o2,
                _ => unreachable!("logical ops handled above"),
            },
            _ => return Err(RuntimeError::TypeError("invalid comparison operands")),
        };
        Ok(Value::Num(if b { Rat::ONE } else { Rat::ZERO }))
    }

    fn exec_seq(&mut self, seq: Seq) -> Result<Flow, RuntimeError> {
        let (start, end) = (seq.start as usize, (seq.start + seq.len) as usize);
        for i in start..end {
            match self.exec_stmt(self.prog.seq_items[i])? {
                Flow::Normal => {}
                ret @ Flow::Return(_) => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: StmtId) -> Result<Flow, RuntimeError> {
        self.spend(1)?;
        match self.prog.stmts[s as usize] {
            StmtNode::Decl { slot, is_ptr, init } => {
                let v = match init {
                    Some(e) => self.eval(e)?,
                    None => {
                        if is_ptr {
                            // Uninitialised pointer: poison via impossible
                            // slot, exactly as the interpreter.
                            Value::Ptr {
                                array: usize::MAX,
                                offset: 0,
                            }
                        } else {
                            Value::Num(Rat::ZERO)
                        }
                    }
                };
                self.frame[slot as usize] = v;
                Ok(Flow::Normal)
            }
            StmtNode::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            StmtNode::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    if let Flow::Return(v) = self.exec_stmt(i)? {
                        return Ok(Flow::Return(v));
                    }
                }
                loop {
                    if let Some(c) = cond {
                        if !self.truthy(c)? {
                            break;
                        }
                    }
                    match self.exec_seq(body)? {
                        Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    if let Some(st) = step {
                        self.eval(st)?;
                    }
                    self.spend(1)?;
                }
                Ok(Flow::Normal)
            }
            StmtNode::While { cond, body } => {
                loop {
                    if !self.truthy(cond)? {
                        break;
                    }
                    match self.exec_seq(body)? {
                        Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    self.spend(1)?;
                }
                Ok(Flow::Normal)
            }
            StmtNode::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.truthy(cond)? {
                    self.exec_seq(then_body)
                } else {
                    self.exec_seq(else_body)
                }
            }
            StmtNode::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.eval_num(e)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            StmtNode::Seq(seq) => self.exec_seq(seq),
        }
    }
}

/// Runs a compiled function with the default step budget
/// ([`crate::DEFAULT_FUEL`]).
///
/// # Errors
///
/// Exactly the errors of [`crate::run_kernel`] on the same function and
/// arguments.
pub fn run_compiled(cf: &CompiledFn, args: Vec<ArgValue>) -> Result<ExecResult, RuntimeError> {
    run_compiled_with_fuel(cf, args, crate::interp::DEFAULT_FUEL)
}

/// Runs a compiled function with an explicit step budget; fuel accounting
/// is unit-for-unit identical to [`crate::run_kernel_with_fuel`].
///
/// # Errors
///
/// Exactly the errors of [`crate::run_kernel_with_fuel`] on the same
/// inputs, including the budget at which [`RuntimeError::FuelExhausted`]
/// first appears.
pub fn run_compiled_with_fuel(
    cf: &CompiledFn,
    args: Vec<ArgValue>,
    fuel: u64,
) -> Result<ExecResult, RuntimeError> {
    if args.len() != cf.params.len() {
        return Err(RuntimeError::BadArguments(format!(
            "expected {} arguments, got {}",
            cf.params.len(),
            args.len()
        )));
    }
    let mut exec = Exec {
        prog: cf,
        arrays: Vec::new(),
        frame: vec![Value::Num(Rat::ZERO); cf.n_slots],
        fuel,
    };
    for (slot, (param, arg)) in cf.params.iter().zip(args).enumerate() {
        let v = match (param.ty, arg) {
            (CType::Num(_), ArgValue::Scalar(r)) => Value::Num(r),
            (CType::Ptr(_), ArgValue::Array(data)) => {
                exec.arrays.push(data);
                Value::Ptr {
                    array: exec.arrays.len() - 1,
                    offset: 0,
                }
            }
            (ty, arg) => {
                return Err(RuntimeError::BadArguments(format!(
                    "parameter `{}` of type {ty} received incompatible argument {arg:?}",
                    param.name
                )))
            }
        };
        exec.frame[slot] = v;
    }
    let flow = exec.exec_seq(cf.body)?;
    let ret = match flow {
        Flow::Return(v) => v,
        Flow::Normal => None,
    };
    Ok(ExecResult {
        arrays: exec.arrays,
        ret,
    })
}

/// A lazily compiled, shareable [`CompiledFn`]: the `OnceLock` cache that
/// lets task/benchmark values compile their reference kernel exactly once
/// across any number of `run_reference` calls and threads.
///
/// `Default`/`Clone`/`Debug` make it embeddable in plain-struct-literal
/// types (a clone of an initialised cache keeps the compiled program).
#[derive(Debug, Default, Clone)]
pub struct LazyCompiledFn(OnceLock<Arc<CompiledFn>>);

impl LazyCompiledFn {
    /// An empty (not yet compiled) cache.
    pub fn new() -> LazyCompiledFn {
        LazyCompiledFn(OnceLock::new())
    }

    /// A cache pre-seeded with an already compiled program, so a task
    /// built from a source that was compiled elsewhere (e.g. a benchmark
    /// registry) never compiles again.
    pub fn from_compiled(cf: Arc<CompiledFn>) -> LazyCompiledFn {
        let cache = OnceLock::new();
        let _ = cache.set(cf);
        LazyCompiledFn(cache)
    }

    /// The compiled form of `func`, compiling on first call.
    ///
    /// The caller must pass the same `func` every time (the cache is
    /// keyed by identity of the owning struct, not by content).
    pub fn get_or_compile(&self, func: &Function) -> &Arc<CompiledFn> {
        self.0.get_or_init(|| Arc::new(compile_fn(func)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CExpr, Stmt};
    use crate::interp::{run_kernel_with_fuel, DEFAULT_FUEL};
    use crate::parser::parse_c;

    fn ints(vals: &[i64]) -> Vec<Rat> {
        vals.iter().map(|&v| Rat::from(v)).collect()
    }

    /// Differential harness: the compiled program must agree with the
    /// interpreter exactly — result, error classification, everything.
    fn assert_same(src: &str, args: Vec<ArgValue>) {
        let p = parse_c(src).unwrap();
        let interp = run_kernel_with_fuel(p.kernel(), args.clone(), DEFAULT_FUEL);
        let compiled = run_compiled_with_fuel(&compile_fn(p.kernel()), args, DEFAULT_FUEL);
        assert_eq!(compiled, interp, "compiled diverges from interpreter:\n{src}");
    }

    /// Fuel sweep: at *every* budget from 0 to `max`, both engines agree
    /// — which proves the compiled program spends fuel at exactly the
    /// interpreter's points.
    fn assert_same_fuel_sweep(src: &str, args: Vec<ArgValue>, max: u64) {
        let p = parse_c(src).unwrap();
        let cf = compile_fn(p.kernel());
        for fuel in 0..=max {
            let interp = run_kernel_with_fuel(p.kernel(), args.clone(), fuel);
            let compiled = run_compiled_with_fuel(&cf, args.clone(), fuel);
            assert_eq!(compiled, interp, "divergence at fuel {fuel}:\n{src}");
        }
    }

    const FIGURE2: &str = r#"
void function(int N, int *Mat1, int *Mat2, int *Result) {
    int *p_m1;
    int *p_m2;
    int *p_t;
    int i, f;
    p_m1 = Mat1;
    p_t = Result;
    for (f = 0; f < N; f++) {
        *p_t = 0;
        p_m2 = &Mat2[0];
        for (i = 0; i < N; i++)
            *p_t += *p_m1++ * *p_m2++;
        p_t++;
    }
}
"#;

    #[test]
    fn figure2_gemv_matches() {
        let args = vec![
            ArgValue::Scalar(Rat::from(2)),
            ArgValue::Array(ints(&[1, 2, 3, 4])),
            ArgValue::Array(ints(&[10, 100])),
            ArgValue::Array(ints(&[0, 0])),
        ];
        assert_same(FIGURE2, args.clone());
        let p = parse_c(FIGURE2).unwrap();
        let res = run_compiled(&compile_fn(p.kernel()), args).unwrap();
        assert_eq!(res.arrays[2], ints(&[210, 430]));
    }

    #[test]
    fn figure2_fuel_accounting_is_unit_identical() {
        // Sweeping every budget one unit at a time proves every spend
        // point (expressions, statements, loop iterations) lines up.
        assert_same_fuel_sweep(
            FIGURE2,
            vec![
                ArgValue::Scalar(Rat::from(2)),
                ArgValue::Array(ints(&[1, 2, 3, 4])),
                ArgValue::Array(ints(&[10, 100])),
                ArgValue::Array(ints(&[0, 0])),
            ],
            400,
        );
    }

    #[test]
    fn short_circuit_fuel_is_identical() {
        let src = "void f(int n, int *a) {
            for (int i = 0; i < n; i++)
                a[i] = (i > 0 && a[i-1] > 0) || a[i] > 1 ? a[i] : 0 - a[i];
        }";
        assert_same_fuel_sweep(
            src,
            vec![
                ArgValue::Scalar(Rat::from(3)),
                ArgValue::Array(ints(&[-2, 5, 1])),
            ],
            200,
        );
    }

    #[test]
    fn compound_assignment_and_division() {
        assert_same(
            "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) a[i] /= b[i]; }",
            vec![
                ArgValue::Scalar(Rat::from(2)),
                ArgValue::Array(ints(&[1, 3])),
                ArgValue::Array(ints(&[2, 4])),
            ],
        );
    }

    #[test]
    fn division_by_zero_classified() {
        assert_same(
            "void f(int *a, int *b) { a[0] = a[0] / b[0]; }",
            vec![ArgValue::Array(ints(&[1])), ArgValue::Array(ints(&[0]))],
        );
    }

    #[test]
    fn out_of_bounds_classified() {
        assert_same(
            "void f(int n, int *a) { a[n] = 1; }",
            vec![
                ArgValue::Scalar(Rat::from(3)),
                ArgValue::Array(ints(&[0, 0, 0])),
            ],
        );
    }

    #[test]
    fn while_and_return() {
        assert_same(
            "int sum(int n, int *a) {
                int s = 0;
                int i = 0;
                while (i < n) { s += a[i]; i++; }
                return s;
            }",
            vec![
                ArgValue::Scalar(Rat::from(3)),
                ArgValue::Array(ints(&[5, 6, 7])),
            ],
        );
    }

    #[test]
    fn ternary_relu() {
        assert_same(
            "void relu(int n, int *a, int *out) {
                for (int i = 0; i < n; i++) out[i] = a[i] > 0 ? a[i] : 0;
            }",
            vec![
                ArgValue::Scalar(Rat::from(3)),
                ArgValue::Array(ints(&[-1, 2, -3])),
                ArgValue::Array(ints(&[9, 9, 9])),
            ],
        );
    }

    #[test]
    fn float_modulo_casts() {
        assert_same(
            "void f(double *a) { a[0] = (double) 0.25 + -7 % 3; }",
            vec![ArgValue::Array(ints(&[0]))],
        );
    }

    #[test]
    fn scope_shadowing() {
        assert_same(
            "void f(int *a) {
                int x = 1;
                { int x = 2; a[0] = x; }
                a[1] = x;
            }",
            vec![ArgValue::Array(ints(&[0, 0]))],
        );
    }

    #[test]
    fn use_before_declaration_binds_outer_every_iteration() {
        // Each loop iteration re-enters a fresh scope: `a[i] = x` reads
        // the *outer* x on every iteration, even though an inner `x` is
        // declared later in the body. The compiled slot resolution must
        // reproduce the interpreter's dynamic behaviour.
        let src = "void f(int n, int *a) {
            int x = 7;
            for (int i = 0; i < n; i++) { a[i] = x; int x = i + 40; a[i] += x - x; }
        }";
        let args = vec![
            ArgValue::Scalar(Rat::from(3)),
            ArgValue::Array(ints(&[0, 0, 0])),
        ];
        assert_same(src, args.clone());
        let p = parse_c(src).unwrap();
        let res = run_compiled(&compile_fn(p.kernel()), args).unwrap();
        assert_eq!(res.arrays[0], ints(&[7, 7, 7]));
    }

    #[test]
    fn decl_initialiser_sees_outer_binding() {
        assert_same(
            "void f(int *a) { int x = 3; { int x = x + 10; a[0] = x; } a[1] = x; }",
            vec![ArgValue::Array(ints(&[0, 0]))],
        );
    }

    #[test]
    fn unbound_variable_errors_identically() {
        assert_same(
            "void f(int *a) { a[0] = mystery; }",
            vec![ArgValue::Array(ints(&[0]))],
        );
        // Unbound on the *write* side: the error must surface after the
        // right-hand side evaluated, exactly as the interpreter's late
        // place resolution does.
        assert_same(
            "void f(int *a) { mystery = a[0]; }",
            vec![ArgValue::Array(ints(&[0]))],
        );
    }

    #[test]
    fn address_of_scalar_rejected() {
        assert_same(
            "void f(int *a) { int x = 1; a[0] = &x - a; }",
            vec![ArgValue::Array(ints(&[0]))],
        );
    }

    #[test]
    fn non_lvalue_targets_error_at_runtime() {
        // Constructed directly: `1++` is not an lvalue; both engines must
        // classify it as the same TypeError when (and only when) the
        // statement executes.
        let func = Function {
            name: "f".into(),
            ret: None,
            params: vec![],
            body: vec![Stmt::Expr(CExpr::PostInc(Box::new(CExpr::IntLit(1))))],
        };
        let interp = run_kernel_with_fuel(&func, vec![], DEFAULT_FUEL);
        let compiled = run_compiled_with_fuel(&compile_fn(&func), vec![], DEFAULT_FUEL);
        assert_eq!(compiled, interp);
        assert_eq!(
            compiled,
            Err(RuntimeError::TypeError("expression is not an lvalue"))
        );
    }

    #[test]
    fn dead_branch_errors_stay_dead() {
        // The taken ternary branch matters; the div-by-zero in the other
        // branch must not fire in either engine.
        let src = "void f(int *a, int *z) { a[0] = a[0] > 0 ? a[0] : a[0] / z[0]; }";
        assert_same(
            src,
            vec![ArgValue::Array(ints(&[5])), ArgValue::Array(ints(&[0]))],
        );
        assert_same(
            src,
            vec![ArgValue::Array(ints(&[-5])), ArgValue::Array(ints(&[0]))],
        );
    }

    #[test]
    fn bad_arguments_messages_match() {
        let p = parse_c("void f(int n) { }").unwrap();
        let cf = compile_fn(p.kernel());
        assert_eq!(
            run_compiled(&cf, vec![]),
            run_kernel_with_fuel(p.kernel(), vec![], DEFAULT_FUEL)
        );
        assert_eq!(
            run_compiled(&cf, vec![ArgValue::Array(vec![])]),
            run_kernel_with_fuel(p.kernel(), vec![ArgValue::Array(vec![])], DEFAULT_FUEL)
        );
    }

    #[test]
    fn pointer_difference_and_comparison() {
        assert_same(
            "void f(int *a, int *out) { int *p = a + 5; out[0] = p - a; out[0] += p > a; }",
            vec![ArgValue::Array(ints(&[0; 8])), ArgValue::Array(ints(&[0]))],
        );
    }

    #[test]
    fn runaway_loop_exhausts_fuel_at_the_same_unit() {
        let src = "void f(int *a) { while (1) { a[0] = a[0] + 1; } }";
        let p = parse_c(src).unwrap();
        let cf = compile_fn(p.kernel());
        for fuel in [0u64, 1, 7, 100, 10_000] {
            assert_eq!(
                run_compiled_with_fuel(&cf, vec![ArgValue::Array(ints(&[0]))], fuel),
                run_kernel_with_fuel(p.kernel(), vec![ArgValue::Array(ints(&[0]))], fuel),
            );
        }
    }

    #[test]
    fn lazy_cache_compiles_once_and_clones_share() {
        let p = parse_c("void f(int n) { }").unwrap();
        let lazy = LazyCompiledFn::new();
        let a = Arc::as_ptr(lazy.get_or_compile(p.kernel()));
        let b = Arc::as_ptr(lazy.get_or_compile(p.kernel()));
        assert_eq!(a, b);
        let cloned = lazy.clone();
        assert_eq!(Arc::as_ptr(cloned.get_or_compile(p.kernel())), a);
    }
}
