//! mathfu-style vector math kernels (8 benchmarks).
//!
//! `mf_lerp` requires a parenthesised (balanced) AST — one of the shapes
//! the paper's §8 RQ2 notes the bottom-up search cannot express.

use super::helpers::{arr, arr_nz, out, scalar};
use crate::spec::{Benchmark, ParamSpec, Suite};

/// The 8 mathfu benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "mf_vadd",
            suite: Suite::Mathfu,
            source: "void vadd(int n, int *a, int *b, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] + b[i];
            }",
            ground_truth: "out(i) = a(i) + b(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), arr(&["n"]), out(&["n"])],
        },
        Benchmark {
            name: "mf_vsub",
            suite: Suite::Mathfu,
            source: "void vsub(int n, int *a, int *b, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] - b[i];
            }",
            ground_truth: "out(i) = a(i) - b(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), arr(&["n"]), out(&["n"])],
        },
        Benchmark {
            name: "mf_vdiv",
            suite: Suite::Mathfu,
            source: "void vdiv(int n, int *a, int *b, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] / b[i];
            }",
            ground_truth: "out(i) = a(i) / b(i)",
            params: vec![
                ParamSpec::Size("n"),
                arr(&["n"]),
                arr_nz(&["n"]),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "mf_vmul",
            suite: Suite::Mathfu,
            source: "void vmul(int n, int *a, int *b, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] * b[i];
            }",
            ground_truth: "out(i) = a(i) * b(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), arr(&["n"]), out(&["n"])],
        },
        Benchmark {
            name: "mf_dot",
            suite: Suite::Mathfu,
            source: "void vdot(int n, int *a, int *b, int *out) {
                *out = 0;
                for (int i = 0; i < n; i++)
                    *out += a[i] * b[i];
            }",
            ground_truth: "out = a(i) * b(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), arr(&["n"]), out(&[])],
        },
        // Linear interpolation: needs the balanced AST
        // a + (b - a) * t, unreachable for the bottom-up tail grammar.
        Benchmark {
            name: "mf_lerp",
            suite: Suite::Mathfu,
            source: "void lerp(int n, int t, int *a, int *b, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] + (b[i] - a[i]) * t;
            }",
            ground_truth: "out(i) = a(i) + (b(i) - a(i)) * t",
            params: vec![
                ParamSpec::Size("n"),
                scalar(),
                arr(&["n"]),
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "mf_scale",
            suite: Suite::Mathfu,
            source: "void vscale(int n, int s, int *a, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = s * a[i];
            }",
            ground_truth: "out(i) = s * a(i)",
            params: vec![
                ParamSpec::Size("n"),
                scalar(),
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "mf_outer",
            suite: Suite::Mathfu,
            source: "void outer(int n, int m, int *a, int *b, int *out) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++)
                        out[i*m + j] = a[i] * b[j];
            }",
            ground_truth: "out(i,j) = a(i) * b(j)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                arr(&["n"]),
                arr(&["m"]),
                out(&["n", "m"]),
            ],
        },
    ]
}
