//! BLAS-style dense linear algebra kernels (10 benchmarks).
//!
//! `blas_gemv` is the paper's running example (Fig. 2), verbatim: the
//! pointer-walking row-times-vector product.

use super::helpers::{arr, out};
use crate::spec::{Benchmark, ParamSpec, Suite};

/// The 10 BLAS benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "blas_dot",
            suite: Suite::Blas,
            source: "void dot(int n, int *x, int *y, int *out) {
                *out = 0;
                for (int i = 0; i < n; i++)
                    *out += x[i] * y[i];
            }",
            ground_truth: "out = x(i) * y(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), arr(&["n"]), out(&[])],
        },
        Benchmark {
            name: "blas_axpy",
            suite: Suite::Blas,
            source: "void axpy(int n, int alpha, int *x, int *y, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = alpha * x[i] + y[i];
            }",
            ground_truth: "out(i) = alpha * x(i) + y(i)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::ScalarIn { nonzero: false },
                arr(&["n"]),
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        // The paper's Figure 2, kept verbatim (pointer-walking GEMV).
        Benchmark {
            name: "blas_gemv",
            suite: Suite::Blas,
            source: "void function(int N, int *Mat1, int *Mat2, int *Result) {
                int *p_m1;
                int *p_m2;
                int *p_t;
                int i, f;
                p_m1 = Mat1;
                p_t = Result;
                for (f = 0; f < N; f++) {
                    *p_t = 0;
                    p_m2 = &Mat2[0];
                    for (i = 0; i < N; i++)
                        *p_t += *p_m1++ * *p_m2++;
                    p_t++;
                }
            }",
            ground_truth: "Result(i) = Mat1(i,j) * Mat2(j)",
            params: vec![
                ParamSpec::Size("N"),
                arr(&["N", "N"]),
                arr(&["N"]),
                out(&["N"]),
            ],
        },
        Benchmark {
            name: "blas_gemm",
            suite: Suite::Blas,
            source: "void gemm(int n, int m, int p, int *A, int *B, int *C) {
                for (int i = 0; i < n; i++) {
                    for (int j = 0; j < p; j++) {
                        C[i*p + j] = 0;
                        for (int k = 0; k < m; k++)
                            C[i*p + j] += A[i*m + k] * B[k*p + j];
                    }
                }
            }",
            ground_truth: "C(i,j) = A(i,k) * B(k,j)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                ParamSpec::Size("p"),
                arr(&["n", "m"]),
                arr(&["m", "p"]),
                out(&["n", "p"]),
            ],
        },
        Benchmark {
            name: "blas_ger",
            suite: Suite::Blas,
            source: "void ger(int n, int m, int *x, int *y, int *A) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++)
                        A[i*m + j] = x[i] * y[j];
            }",
            ground_truth: "A(i,j) = x(i) * y(j)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                arr(&["n"]),
                arr(&["m"]),
                out(&["n", "m"]),
            ],
        },
        Benchmark {
            name: "blas_scal",
            suite: Suite::Blas,
            source: "void scal(int n, int alpha, int *x, int *out) {
                int i;
                for (i = 0; i < n; i++)
                    out[i] = alpha * x[i];
            }",
            ground_truth: "out(i) = alpha * x(i)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::ScalarIn { nonzero: false },
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "blas_copy",
            suite: Suite::Blas,
            source: "void copy(int n, int *x, int *out) {
                int *p = x;
                int *q = out;
                for (int i = 0; i < n; i++)
                    *q++ = *p++;
            }",
            ground_truth: "out(i) = x(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), out(&["n"])],
        },
        Benchmark {
            name: "blas_gemv_t",
            suite: Suite::Blas,
            source: "void gemvt(int n, int m, int *A, int *x, int *y) {
                for (int j = 0; j < m; j++) {
                    y[j] = 0;
                    for (int i = 0; i < n; i++)
                        y[j] += A[i*m + j] * x[i];
                }
            }",
            ground_truth: "y(i) = A(j,i) * x(j)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                arr(&["n", "m"]),
                arr(&["n"]),
                out(&["m"]),
            ],
        },
        Benchmark {
            name: "blas_syrk",
            suite: Suite::Blas,
            source: "void syrk(int n, int m, int *A, int *C) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < n; j++) {
                        C[i*n + j] = 0;
                        for (int k = 0; k < m; k++)
                            C[i*n + j] += A[i*m + k] * A[j*m + k];
                    }
            }",
            ground_truth: "C(i,j) = A(i,k) * A(j,k)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                arr(&["n", "m"]),
                out(&["n", "n"]),
            ],
        },
        Benchmark {
            name: "blas_dot_scaled",
            suite: Suite::Blas,
            source: "void sdot(int n, int alpha, int *x, int *y, int *out) {
                *out = 0;
                for (int i = 0; i < n; i++)
                    *out += alpha * x[i] * y[i];
            }",
            ground_truth: "out = alpha * x(i) * y(i)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::ScalarIn { nonzero: false },
                arr(&["n"]),
                arr(&["n"]),
                out(&[]),
            ],
        },
    ]
}
