//! Kernels modelled on the darknet ML framework (12 benchmarks).
//!
//! darknet is one of the real-world codebases in the C2TACO suite the
//! paper evaluates on; these kernels reproduce its characteristic shapes:
//! bias/scale application across channels, array reductions, blended
//! updates, and a batch-norm-style normalisation (`dn_normalize`, the
//! hardest kernel in the suite).

use super::helpers::{arr, arr_nz, out, scalar};
use crate::spec::{Benchmark, ParamSpec, Suite};

/// The 12 darknet benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "dn_bias_add",
            suite: Suite::Darknet,
            source: "void add_bias(int c, int size, int *output, int *biases, int *result) {
                for (int i = 0; i < c; i++)
                    for (int j = 0; j < size; j++)
                        result[i*size + j] = output[i*size + j] + biases[i];
            }",
            ground_truth: "result(i,j) = output(i,j) + biases(i)",
            params: vec![
                ParamSpec::Size("c"),
                ParamSpec::Size("size"),
                arr(&["c", "size"]),
                arr(&["c"]),
                out(&["c", "size"]),
            ],
        },
        Benchmark {
            name: "dn_scale_bias",
            suite: Suite::Darknet,
            source: "void scale_bias(int c, int size, int *output, int *scales, int *result) {
                for (int i = 0; i < c; i++)
                    for (int j = 0; j < size; j++)
                        result[i*size + j] = output[i*size + j] * scales[i];
            }",
            ground_truth: "result(i,j) = output(i,j) * scales(i)",
            params: vec![
                ParamSpec::Size("c"),
                ParamSpec::Size("size"),
                arr(&["c", "size"]),
                arr(&["c"]),
                out(&["c", "size"]),
            ],
        },
        Benchmark {
            name: "dn_sum_array",
            suite: Suite::Darknet,
            source: "void sum_array(int *a, int n, int *out) {
                int i;
                int sum = 0;
                for (i = 0; i < n; i++) sum += a[i];
                *out = sum;
            }",
            ground_truth: "out = a(i)",
            params: vec![arr(&["n"]), ParamSpec::Size("n"), out(&[])],
        },
        Benchmark {
            name: "dn_mean_array",
            suite: Suite::Darknet,
            source: "void mean_array(int *a, int n, int *out) {
                int i;
                *out = 0;
                for (i = 0; i < n; i++) *out += a[i];
                *out = *out / n;
            }",
            ground_truth: "out = a(i) / n",
            params: vec![arr(&["n"]), ParamSpec::Size("n"), out(&[])],
        },
        Benchmark {
            name: "dn_mult_add_into",
            suite: Suite::Darknet,
            source: "void mult_add_into(int n, int *a, int *b, int *c, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] * b[i] + c[i];
            }",
            ground_truth: "out(i) = a(i) * b(i) + c(i)",
            params: vec![
                ParamSpec::Size("n"),
                arr(&["n"]),
                arr(&["n"]),
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "dn_weighted_sum",
            suite: Suite::Darknet,
            source: "void weighted_sum(int n, int s, int t, int *a, int *b, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] * s + b[i] * t;
            }",
            ground_truth: "out(i) = a(i) * s + b(i) * t",
            params: vec![
                ParamSpec::Size("n"),
                scalar(),
                scalar(),
                arr(&["n"]),
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "dn_copy2d",
            suite: Suite::Darknet,
            source: "void copy2d(int n, int m, int *src, int *dst) {
                int *p = src;
                int *q = dst;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++)
                        *q++ = *p++;
            }",
            ground_truth: "dst(i,j) = src(i,j)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                arr(&["n", "m"]),
                out(&["n", "m"]),
            ],
        },
        Benchmark {
            name: "dn_scale_array",
            suite: Suite::Darknet,
            source: "void scale_array(int *a, int n, int s, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] * s;
            }",
            ground_truth: "out(i) = a(i) * s",
            params: vec![
                arr(&["n"]),
                ParamSpec::Size("n"),
                scalar(),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "dn_dot_error",
            suite: Suite::Darknet,
            source: "void dot_error(int n, int *pred, int *truth, int *out) {
                int sum = 0;
                for (int i = 0; i < n; i++)
                    sum += pred[i] * truth[i];
                *out = sum;
            }",
            ground_truth: "out = pred(i) * truth(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), arr(&["n"]), out(&[])],
        },
        Benchmark {
            name: "dn_l2_partial",
            suite: Suite::Darknet,
            source: "void l2(int n, int *x, int *out) {
                *out = 0;
                for (int i = 0; i < n; i++)
                    *out += x[i] * x[i];
            }",
            ground_truth: "out = x(i) * x(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), out(&[])],
        },
        Benchmark {
            name: "dn_matmul",
            suite: Suite::Darknet,
            source: "void gemm_nn(int M, int N, int K, int *A, int *B, int *C) {
                int i, j, k;
                for (i = 0; i < M; i++) {
                    for (j = 0; j < N; j++) {
                        C[i*N + j] = 0;
                    }
                    for (k = 0; k < K; k++) {
                        for (j = 0; j < N; j++) {
                            C[i*N + j] += A[i*K + k] * B[k*N + j];
                        }
                    }
                }
            }",
            ground_truth: "C(i,j) = A(i,k) * B(k,j)",
            params: vec![
                ParamSpec::Size("M"),
                ParamSpec::Size("N"),
                ParamSpec::Size("K"),
                arr(&["M", "K"]),
                arr(&["K", "N"]),
                out(&["M", "N"]),
            ],
        },
        // Batch-norm-style normalisation: the hardest real-world kernel —
        // four tensors, three distinct operators and a parenthesised
        // subtraction.
        Benchmark {
            name: "dn_normalize",
            suite: Suite::Darknet,
            source: "void normalize(int c, int size, int *x, int *mean, int *variance, int *scales, int *out) {
                for (int i = 0; i < c; i++)
                    for (int j = 0; j < size; j++)
                        out[i*size + j] = (x[i*size + j] - mean[i]) / variance[i] * scales[i];
            }",
            ground_truth: "out(i,j) = (x(i,j) - mean(i)) / variance(i) * scales(i)",
            params: vec![
                ParamSpec::Size("c"),
                ParamSpec::Size("size"),
                arr(&["c", "size"]),
                arr(&["c"]),
                arr_nz(&["c"]),
                arr(&["c"]),
                out(&["c", "size"]),
            ],
        },
    ]
}
