//! UTDSP-style digital signal processing kernels (10 benchmarks).
//!
//! UTDSP kernels are written in the pointer-heavy style typical of
//! hand-optimised DSP code, exercising the array-recovery analysis.

use super::helpers::{arr, out, scalar};
use crate::spec::{Benchmark, ParamSpec, Suite};

/// The 10 UTDSP benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "utdsp_mult_mm",
            suite: Suite::Utdsp,
            source: "void mult(int n, int m, int p, int *A, int *B, int *C) {
                int *c_ptr = C;
                for (int i = 0; i < n; i++) {
                    for (int j = 0; j < p; j++) {
                        int sum = 0;
                        for (int k = 0; k < m; k++)
                            sum += A[i*m + k] * B[k*p + j];
                        *c_ptr++ = sum;
                    }
                }
            }",
            ground_truth: "C(i,j) = A(i,k) * B(k,j)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                ParamSpec::Size("p"),
                arr(&["n", "m"]),
                arr(&["m", "p"]),
                out(&["n", "p"]),
            ],
        },
        Benchmark {
            name: "utdsp_mult_vv",
            suite: Suite::Utdsp,
            source: "void vmult(int n, int *a, int *b, int *out) {
                int *pa = a;
                int *pb = b;
                int *po = out;
                for (int i = 0; i < n; i++)
                    *po++ = *pa++ * *pb++;
            }",
            ground_truth: "out(i) = a(i) * b(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), arr(&["n"]), out(&["n"])],
        },
        Benchmark {
            name: "utdsp_add_vv",
            suite: Suite::Utdsp,
            source: "void vadd(int n, int *a, int *b, int *out) {
                int *pa = a;
                int *pb = b;
                int *po = out;
                for (int i = 0; i < n; i++)
                    *po++ = *pa++ + *pb++;
            }",
            ground_truth: "out(i) = a(i) + b(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), arr(&["n"]), out(&["n"])],
        },
        Benchmark {
            name: "utdsp_sub_vv",
            suite: Suite::Utdsp,
            source: "void vsub(int n, int *a, int *b, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] - b[i];
            }",
            ground_truth: "out(i) = a(i) - b(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), arr(&["n"]), out(&["n"])],
        },
        Benchmark {
            name: "utdsp_dot",
            suite: Suite::Utdsp,
            source: "void ddot(int n, int *a, int *b, int *out) {
                int *pa = a;
                int *pb = b;
                int sum = 0;
                for (int i = 0; i < n; i++)
                    sum += *pa++ * *pb++;
                *out = sum;
            }",
            ground_truth: "out = a(i) * b(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), arr(&["n"]), out(&[])],
        },
        Benchmark {
            name: "utdsp_mat_trans_mult",
            suite: Suite::Utdsp,
            source: "void atb(int n, int m, int p, int *A, int *B, int *C) {
                for (int i = 0; i < m; i++)
                    for (int j = 0; j < p; j++) {
                        C[i*p + j] = 0;
                        for (int k = 0; k < n; k++)
                            C[i*p + j] += A[k*m + i] * B[k*p + j];
                    }
            }",
            ground_truth: "C(i,j) = A(k,i) * B(k,j)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                ParamSpec::Size("p"),
                arr(&["n", "m"]),
                arr(&["n", "p"]),
                out(&["m", "p"]),
            ],
        },
        Benchmark {
            name: "utdsp_scale",
            suite: Suite::Utdsp,
            source: "void vscale(int n, int gain, int *x, int *out) {
                int *px = x;
                int *po = out;
                for (int i = 0; i < n; i++)
                    *po++ = gain * *px++;
            }",
            ground_truth: "out(i) = gain * x(i)",
            params: vec![
                ParamSpec::Size("n"),
                scalar(),
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "utdsp_vec_sum",
            suite: Suite::Utdsp,
            source: "void vsum(int n, int *x, int *out) {
                int acc = 0;
                int *p = x;
                for (int i = 0; i < n; i++)
                    acc += *p++;
                *out = acc;
            }",
            ground_truth: "out = x(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), out(&[])],
        },
        Benchmark {
            name: "utdsp_norm_sq",
            suite: Suite::Utdsp,
            source: "void normsq(int n, int *x, int *out) {
                *out = 0;
                for (int i = 0; i < n; i++)
                    *out += x[i] * x[i];
            }",
            ground_truth: "out = x(i) * x(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), out(&[])],
        },
        Benchmark {
            name: "utdsp_mv",
            suite: Suite::Utdsp,
            source: "void mv(int n, int m, int *A, int *x, int *y) {
                int *pa = A;
                for (int i = 0; i < n; i++) {
                    int sum = 0;
                    for (int j = 0; j < m; j++)
                        sum += *pa++ * x[j];
                    y[i] = sum;
                }
            }",
            ground_truth: "y(i) = A(i,j) * x(j)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                arr(&["n", "m"]),
                arr(&["m"]),
                out(&["n"]),
            ],
        },
    ]
}
