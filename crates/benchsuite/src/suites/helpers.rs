//! Tiny shared constructors for parameter specs.

use crate::spec::ParamSpec;

/// An input array parameter.
pub(crate) fn arr(dims: &'static [&'static str]) -> ParamSpec {
    ParamSpec::ArrayIn {
        dims,
        nonzero: false,
    }
}

/// An input array parameter whose elements must be nonzero (divisor).
pub(crate) fn arr_nz(dims: &'static [&'static str]) -> ParamSpec {
    ParamSpec::ArrayIn {
        dims,
        nonzero: true,
    }
}

/// The output array parameter.
pub(crate) fn out(dims: &'static [&'static str]) -> ParamSpec {
    ParamSpec::ArrayOut { dims }
}

/// A scalar data input.
pub(crate) fn scalar() -> ParamSpec {
    ParamSpec::ScalarIn { nonzero: false }
}

/// A scalar data input that must be nonzero (divisor).
pub(crate) fn scalar_nz() -> ParamSpec {
    ParamSpec::ScalarIn { nonzero: true }
}
