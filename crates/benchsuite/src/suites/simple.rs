//! Generic array-manipulation kernels (13 benchmarks), including the
//! higher-order tensor contractions (TTV, TTM, MTTKRP) that stress
//! multi-dimensional synthesis.

use super::helpers::{arr, out, scalar_nz};
use crate::spec::{Benchmark, ParamSpec, Suite};

/// The 13 simple-array benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "sa_sum2d",
            suite: Suite::SimpleArray,
            source: "void sum2d(int n, int m, int *A, int *out) {
                *out = 0;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++)
                        *out += A[i*m + j];
            }",
            ground_truth: "out = A(i,j)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                arr(&["n", "m"]),
                out(&[]),
            ],
        },
        Benchmark {
            name: "sa_rowsum",
            suite: Suite::SimpleArray,
            source: "void rowsum(int n, int m, int *A, int *out) {
                for (int i = 0; i < n; i++) {
                    out[i] = 0;
                    for (int j = 0; j < m; j++)
                        out[i] += A[i*m + j];
                }
            }",
            ground_truth: "out(i) = A(i,j)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                arr(&["n", "m"]),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "sa_colsum",
            suite: Suite::SimpleArray,
            source: "void colsum(int n, int m, int *A, int *out) {
                for (int j = 0; j < m; j++)
                    out[j] = 0;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++)
                        out[j] += A[i*m + j];
            }",
            ground_truth: "out(i) = A(j,i)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                arr(&["n", "m"]),
                out(&["m"]),
            ],
        },
        Benchmark {
            name: "sa_add_scalar",
            suite: Suite::SimpleArray,
            source: "void adds(int n, int s, int *a, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] + s;
            }",
            ground_truth: "out(i) = a(i) + s",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::ScalarIn { nonzero: false },
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "sa_ttv",
            suite: Suite::SimpleArray,
            source: "void ttv(int n, int m, int p, int *T, int *v, int *out) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++) {
                        out[i*m + j] = 0;
                        for (int k = 0; k < p; k++)
                            out[i*m + j] += T[i*m*p + j*p + k] * v[k];
                    }
            }",
            ground_truth: "out(i,j) = T(i,j,k) * v(k)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                ParamSpec::Size("p"),
                arr(&["n", "m", "p"]),
                arr(&["p"]),
                out(&["n", "m"]),
            ],
        },
        Benchmark {
            name: "sa_ttm",
            suite: Suite::SimpleArray,
            source: "void ttm(int n, int m, int p, int q, int *T, int *M, int *out) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++)
                        for (int k = 0; k < p; k++) {
                            out[i*m*p + j*p + k] = 0;
                            for (int l = 0; l < q; l++)
                                out[i*m*p + j*p + k] += T[i*m*q + j*q + l] * M[k*q + l];
                        }
            }",
            ground_truth: "out(i,j,k) = T(i,j,l) * M(k,l)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                ParamSpec::Size("p"),
                ParamSpec::Size("q"),
                arr(&["n", "m", "q"]),
                arr(&["p", "q"]),
                out(&["n", "m", "p"]),
            ],
        },
        Benchmark {
            name: "sa_mttkrp",
            suite: Suite::SimpleArray,
            source: "void mttkrp(int n, int m, int p, int q, int *B, int *C, int *D, int *out) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++) {
                        out[i*m + j] = 0;
                        for (int k = 0; k < p; k++)
                            for (int l = 0; l < q; l++)
                                out[i*m + j] += B[i*p*q + k*q + l] * C[k*m + j] * D[l*m + j];
                    }
            }",
            ground_truth: "out(i,j) = B(i,k,l) * C(k,j) * D(l,j)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                ParamSpec::Size("p"),
                ParamSpec::Size("q"),
                arr(&["n", "p", "q"]),
                arr(&["p", "m"]),
                arr(&["q", "m"]),
                out(&["n", "m"]),
            ],
        },
        Benchmark {
            name: "sa_tadd3",
            suite: Suite::SimpleArray,
            source: "void tadd(int n, int m, int p, int *A, int *B, int *out) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++)
                        for (int k = 0; k < p; k++)
                            out[i*m*p + j*p + k] = A[i*m*p + j*p + k] + B[i*m*p + j*p + k];
            }",
            ground_truth: "out(i,j,k) = A(i,j,k) + B(i,j,k)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                ParamSpec::Size("p"),
                arr(&["n", "m", "p"]),
                arr(&["n", "m", "p"]),
                out(&["n", "m", "p"]),
            ],
        },
        Benchmark {
            name: "sa_inner3",
            suite: Suite::SimpleArray,
            source: "void inner3(int n, int m, int p, int *A, int *B, int *out) {
                *out = 0;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++)
                        for (int k = 0; k < p; k++)
                            *out += A[i*m*p + j*p + k] * B[i*m*p + j*p + k];
            }",
            ground_truth: "out = A(i,j,k) * B(i,j,k)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                ParamSpec::Size("p"),
                arr(&["n", "m", "p"]),
                arr(&["n", "m", "p"]),
                out(&[]),
            ],
        },
        Benchmark {
            name: "sa_trace",
            suite: Suite::SimpleArray,
            source: "void trace(int n, int *A, int *out) {
                *out = 0;
                for (int i = 0; i < n; i++)
                    *out += A[i*n + i];
            }",
            ground_truth: "out = A(i,i)",
            params: vec![ParamSpec::Size("n"), arr(&["n", "n"]), out(&[])],
        },
        Benchmark {
            name: "sa_scale_div",
            suite: Suite::SimpleArray,
            source: "void sdiv(int n, int d, int *a, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] / d;
            }",
            ground_truth: "out(i) = a(i) / d",
            params: vec![
                ParamSpec::Size("n"),
                scalar_nz(),
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "sa_4d_add",
            suite: Suite::SimpleArray,
            source: "void add4(int n, int m, int p, int q, int *A, int *B, int *out) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++)
                        for (int k = 0; k < p; k++)
                            for (int l = 0; l < q; l++)
                                out[i*m*p*q + j*p*q + k*q + l] =
                                    A[i*m*p*q + j*p*q + k*q + l] + B[i*m*p*q + j*p*q + k*q + l];
            }",
            ground_truth: "out(i,j,k,l) = A(i,j,k,l) + B(i,j,k,l)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                ParamSpec::Size("p"),
                ParamSpec::Size("q"),
                arr(&["n", "m", "p", "q"]),
                arr(&["n", "m", "p", "q"]),
                out(&["n", "m", "p", "q"]),
            ],
        },
        Benchmark {
            name: "sa_4d_contract",
            suite: Suite::SimpleArray,
            source: "void contract4(int n, int m, int p, int q, int *A, int *B, int *out) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++) {
                        out[i*m + j] = 0;
                        for (int k = 0; k < p; k++)
                            for (int l = 0; l < q; l++)
                                out[i*m + j] += A[i*m*p*q + j*p*q + k*q + l] * B[k*q + l];
                    }
            }",
            ground_truth: "out(i,j) = A(i,j,k,l) * B(k,l)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                ParamSpec::Size("p"),
                ParamSpec::Size("q"),
                arr(&["n", "m", "p", "q"]),
                arr(&["p", "q"]),
                out(&["n", "m"]),
            ],
        },
    ]
}
