//! DSPStone-style kernels (8 benchmarks).

use super::helpers::{arr, arr_nz, out};
use crate::spec::{Benchmark, ParamSpec, Suite};

/// The 8 DSPStone benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "ds_mat1x3",
            suite: Suite::Dspstone,
            source: "void mat1x3(int n, int *h, int *x, int *y) {
                int *p = y;
                for (int i = 0; i < n; i++) {
                    *p = 0;
                    for (int f = 0; f < n; f++)
                        *p += h[i*n + f] * x[f];
                    p++;
                }
            }",
            ground_truth: "y(i) = h(i,j) * x(j)",
            params: vec![
                ParamSpec::Size("n"),
                arr(&["n", "n"]),
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "ds_dot",
            suite: Suite::Dspstone,
            source: "void ddot(int n, int *a, int *b, int *res) {
                *res = 0;
                for (int i = 0; i < n; i++)
                    *res = *res + a[i] * b[i];
            }",
            ground_truth: "res = a(i) * b(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), arr(&["n"]), out(&[])],
        },
        Benchmark {
            name: "ds_vmul",
            suite: Suite::Dspstone,
            source: "void pin(int n, int *a, int *b, int *c) {
                for (int i = 0; i < n; i++)
                    c[i] = a[i] * b[i];
            }",
            ground_truth: "c(i) = a(i) * b(i)",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), arr(&["n"]), out(&["n"])],
        },
        Benchmark {
            name: "ds_madd",
            suite: Suite::Dspstone,
            source: "void madd(int n, int m, int *A, int *B, int *C) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++)
                        C[i*m + j] = A[i*m + j] + B[i*m + j];
            }",
            ground_truth: "C(i,j) = A(i,j) + B(i,j)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                arr(&["n", "m"]),
                arr(&["n", "m"]),
                out(&["n", "m"]),
            ],
        },
        Benchmark {
            name: "ds_msub",
            suite: Suite::Dspstone,
            source: "void msub(int n, int m, int *A, int *B, int *C) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++)
                        C[i*m + j] = A[i*m + j] - B[i*m + j];
            }",
            ground_truth: "C(i,j) = A(i,j) - B(i,j)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                arr(&["n", "m"]),
                arr(&["n", "m"]),
                out(&["n", "m"]),
            ],
        },
        Benchmark {
            name: "ds_scale_const",
            suite: Suite::Dspstone,
            source: "void scale2(int n, int *x, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = x[i] * 2;
            }",
            ground_truth: "out(i) = x(i) * 2",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), out(&["n"])],
        },
        Benchmark {
            name: "ds_offset_const",
            suite: Suite::Dspstone,
            source: "void offset3(int n, int *x, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = x[i] + 3;
            }",
            ground_truth: "out(i) = x(i) + 3",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), out(&["n"])],
        },
        Benchmark {
            name: "ds_vdiv",
            suite: Suite::Dspstone,
            source: "void vdiv(int n, int *a, int *b, int *c) {
                for (int i = 0; i < n; i++)
                    c[i] = a[i] / b[i];
            }",
            ground_truth: "c(i) = a(i) / b(i)",
            params: vec![
                ParamSpec::Size("n"),
                arr(&["n"]),
                arr_nz(&["n"]),
                out(&["n"]),
            ],
        },
    ]
}
