//! The 10 artificial stress-test benchmarks (the paper evaluates 67
//! real-world + 10 artificial = 77 queries).
//!
//! These exercise grammar corners deliberately: long operator chains,
//! parenthesised/balanced ASTs (bottom-up-hostile), constants inside
//! sub-expressions, three-matrix contractions and transposed outputs.

use super::helpers::{arr, arr_nz, out, scalar};
use crate::spec::{Benchmark, ParamSpec, Suite};

/// The 10 artificial benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "art_chain4",
            suite: Suite::Artificial,
            source: "void chain4(int n, int *a, int *b, int *c, int *d, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] + b[i] + c[i] + d[i];
            }",
            ground_truth: "out(i) = a(i) + b(i) + c(i) + d(i)",
            params: vec![
                ParamSpec::Size("n"),
                arr(&["n"]),
                arr(&["n"]),
                arr(&["n"]),
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "art_mixed_chain",
            suite: Suite::Artificial,
            source: "void mixed(int n, int *a, int *b, int *c, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] * b[i] + c[i];
            }",
            ground_truth: "out(i) = a(i) * b(i) + c(i)",
            params: vec![
                ParamSpec::Size("n"),
                arr(&["n"]),
                arr(&["n"]),
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        // Parenthesised: (a + b) * c — unreachable for the bottom-up
        // tail grammar (RQ2).
        Benchmark {
            name: "art_paren_mul",
            suite: Suite::Artificial,
            source: "void pmul(int n, int *a, int *b, int *c, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = (a[i] + b[i]) * c[i];
            }",
            ground_truth: "out(i) = (a(i) + b(i)) * c(i)",
            params: vec![
                ParamSpec::Size("n"),
                arr(&["n"]),
                arr(&["n"]),
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        // Parenthesised with division: (a - b) / c.
        Benchmark {
            name: "art_paren_div",
            suite: Suite::Artificial,
            source: "void pdiv(int n, int *a, int *b, int *c, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = (a[i] - b[i]) / c[i];
            }",
            ground_truth: "out(i) = (a(i) - b(i)) / c(i)",
            params: vec![
                ParamSpec::Size("n"),
                arr(&["n"]),
                arr(&["n"]),
                arr_nz(&["n"]),
                out(&["n"]),
            ],
        },
        Benchmark {
            name: "art_const_mul",
            suite: Suite::Artificial,
            source: "void cmul(int n, int *a, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] * 5;
            }",
            ground_truth: "out(i) = a(i) * 5",
            params: vec![ParamSpec::Size("n"), arr(&["n"]), out(&["n"])],
        },
        Benchmark {
            name: "art_scalar_div_sum",
            suite: Suite::Artificial,
            source: "void sdiv(int n, int *a, int *b, int *out) {
                *out = 0;
                for (int i = 0; i < n; i++)
                    *out += a[i] / b[i];
            }",
            ground_truth: "out = a(i) / b(i)",
            params: vec![
                ParamSpec::Size("n"),
                arr(&["n"]),
                arr_nz(&["n"]),
                out(&[]),
            ],
        },
        // Balanced but precedence-respecting: a*b + c*d (bottom-up CAN
        // express this as a chain).
        Benchmark {
            name: "art_two_products",
            suite: Suite::Artificial,
            source: "void twop(int n, int *a, int *b, int *c, int *d, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] * b[i] + c[i] * d[i];
            }",
            ground_truth: "out(i) = a(i) * b(i) + c(i) * d(i)",
            params: vec![
                ParamSpec::Size("n"),
                arr(&["n"]),
                arr(&["n"]),
                arr(&["n"]),
                arr(&["n"]),
                out(&["n"]),
            ],
        },
        // Three-matrix chain product.
        Benchmark {
            name: "art_3mat_chain",
            suite: Suite::Artificial,
            source: "void chain3(int n, int m, int p, int q, int *A, int *B, int *C, int *out) {
                for (int i = 0; i < n; i++)
                    for (int l = 0; l < q; l++) {
                        out[i*q + l] = 0;
                        for (int j = 0; j < m; j++)
                            for (int k = 0; k < p; k++)
                                out[i*q + l] += A[i*m + j] * B[j*p + k] * C[k*q + l];
                    }
            }",
            ground_truth: "out(i,l) = A(i,j) * B(j,k) * C(k,l)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                ParamSpec::Size("p"),
                ParamSpec::Size("q"),
                arr(&["n", "m"]),
                arr(&["m", "p"]),
                arr(&["p", "q"]),
                out(&["n", "q"]),
            ],
        },
        // Transposed output: out(j,i) = T(i,j,k) * v(k).
        Benchmark {
            name: "art_ttv_transposed",
            suite: Suite::Artificial,
            source: "void ttvt(int n, int m, int p, int *T, int *v, int *out) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < m; j++) {
                        out[j*n + i] = 0;
                        for (int k = 0; k < p; k++)
                            out[j*n + i] += T[i*m*p + j*p + k] * v[k];
                    }
            }",
            ground_truth: "out(j,i) = T(i,j,k) * v(k)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::Size("m"),
                ParamSpec::Size("p"),
                arr(&["n", "m", "p"]),
                arr(&["p"]),
                out(&["m", "n"]),
            ],
        },
        // Constant inside a parenthesised sub-expression: a * (b + t).
        Benchmark {
            name: "art_paren_scalar",
            suite: Suite::Artificial,
            source: "void pscal(int n, int t, int *a, int *b, int *out) {
                for (int i = 0; i < n; i++)
                    out[i] = a[i] * (b[i] + t);
            }",
            ground_truth: "out(i) = a(i) * (b(i) + t)",
            params: vec![
                ParamSpec::Size("n"),
                scalar(),
                arr(&["n"]),
                arr(&["n"]),
                out(&["n"]),
            ],
        },
    ]
}
