//! Six kernels from C++-based llama inference code, mirroring the paper's
//! §8 benchmark provenance ("6 from the C++ based inference code of
//! Llama"). These are the linear-algebra cores of the transformer forward
//! pass, in the llama2.c style.

use super::helpers::{arr, out};
use crate::spec::{Benchmark, ParamSpec, Suite};

/// The 6 llama benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        // The core of the forward pass: W (d,n) @ x (n,) -> xout (d,).
        Benchmark {
            name: "llama_matmul",
            suite: Suite::Llama,
            source: "void matmul(int *xout, int *x, int *w, int n, int d) {
                for (int i = 0; i < d; i++) {
                    int val = 0;
                    for (int j = 0; j < n; j++)
                        val += w[i*n + j] * x[j];
                    xout[i] = val;
                }
            }",
            ground_truth: "xout(i) = w(i,j) * x(j)",
            params: vec![
                ParamSpec::ArrayOut { dims: &["d"] },
                arr(&["n"]),
                arr(&["d", "n"]),
                ParamSpec::Size("n"),
                ParamSpec::Size("d"),
            ],
        },
        // The sum-of-squares inside rmsnorm.
        Benchmark {
            name: "llama_rmsnorm_ss",
            suite: Suite::Llama,
            source: "void rmsnorm_ss(int *out, int *x, int size) {
                int ss = 0;
                for (int j = 0; j < size; j++)
                    ss += x[j] * x[j];
                *out = ss;
            }",
            ground_truth: "out = x(i) * x(i)",
            params: vec![out(&[]), arr(&["size"]), ParamSpec::Size("size")],
        },
        // The residual connection x += xb, written out-of-place.
        Benchmark {
            name: "llama_residual",
            suite: Suite::Llama,
            source: "void residual(int dim, int *x, int *xb, int *out) {
                for (int i = 0; i < dim; i++)
                    out[i] = x[i] + xb[i];
            }",
            ground_truth: "out(i) = x(i) + xb(i)",
            params: vec![
                ParamSpec::Size("dim"),
                arr(&["dim"]),
                arr(&["dim"]),
                out(&["dim"]),
            ],
        },
        // SwiGLU elementwise gate: hb * hb2.
        Benchmark {
            name: "llama_hadamard",
            suite: Suite::Llama,
            source: "void swiglu_gate(int hidden_dim, int *hb, int *hb2, int *out) {
                for (int i = 0; i < hidden_dim; i++)
                    out[i] = hb[i] * hb2[i];
            }",
            ground_truth: "out(i) = hb(i) * hb2(i)",
            params: vec![
                ParamSpec::Size("hidden_dim"),
                arr(&["hidden_dim"]),
                arr(&["hidden_dim"]),
                out(&["hidden_dim"]),
            ],
        },
        // Attention-weighted sum of the value vectors:
        // xb(i) = sum_t att(t) * v(t,i).
        Benchmark {
            name: "llama_att_weighted",
            suite: Suite::Llama,
            source: "void att_mix(int steps, int head_size, int *att, int *v, int *xb) {
                for (int i = 0; i < head_size; i++)
                    xb[i] = 0;
                for (int t = 0; t < steps; t++) {
                    for (int i = 0; i < head_size; i++)
                        xb[i] += att[t] * v[t*head_size + i];
                }
            }",
            ground_truth: "xb(i) = att(j) * v(j,i)",
            params: vec![
                ParamSpec::Size("steps"),
                ParamSpec::Size("head_size"),
                arr(&["steps"]),
                arr(&["steps", "head_size"]),
                out(&["head_size"]),
            ],
        },
        // The q·k attention score for one (query, key) pair.
        Benchmark {
            name: "llama_qk_dot",
            suite: Suite::Llama,
            source: "void qk_score(int head_size, int *q, int *k, int *out) {
                int score = 0;
                for (int i = 0; i < head_size; i++)
                    score += q[i] * k[i];
                *out = score;
            }",
            ground_truth: "out = q(i) * k(i)",
            params: vec![
                ParamSpec::Size("head_size"),
                arr(&["head_size"]),
                arr(&["head_size"]),
                out(&[]),
            ],
        },
    ]
}
