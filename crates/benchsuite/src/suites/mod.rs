//! The benchmark suites: 67 real-world-style kernels plus 10 artificial
//! ones, mirroring the paper's 77-query evaluation set.

pub mod artificial;
pub mod blas;
pub mod darknet;
pub mod dspstone;
mod helpers;
pub mod llama;
pub mod mathfu;
pub mod simple;
pub mod utdsp;
