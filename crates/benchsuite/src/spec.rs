//! Benchmark specification and instantiation machinery.
//!
//! A [`Benchmark`] packages a legacy C kernel with the metadata the
//! harness needs: the logical shape of every parameter, which parameter is
//! the output, and the ground-truth TACO program (used by the synthetic
//! oracle and by suite self-tests — the pipeline itself never looks at
//! it).

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock, RwLock};

use gtl_cfront::{
    compile_fn, parse_c, run_compiled, ArgValue, CProgram, CompiledFn, LazyCompiledFn,
    RuntimeError,
};
use gtl_taco::{parse_program, TacoProgram, TensorEnv};
use gtl_tensor::{Rat, Shape, Tensor, TensorGen};

/// The originating suite of a benchmark, mirroring the paper's benchmark
/// provenance (61 literature kernels + 6 llama + 10 artificial).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// BLAS-style dense linear algebra.
    Blas,
    /// Kernels from the darknet ML framework.
    Darknet,
    /// UTDSP digital signal processing kernels.
    Utdsp,
    /// DSPStone kernels.
    Dspstone,
    /// The mathfu vector-math library.
    Mathfu,
    /// Generic array-manipulation kernels.
    SimpleArray,
    /// The C++ llama inference code (6 kernels, as in the paper).
    Llama,
    /// The 10 artificial stress-test kernels.
    Artificial,
}

impl Suite {
    /// Whether the suite counts toward the 67 "real-world" benchmarks.
    pub fn is_real_world(self) -> bool {
        !matches!(self, Suite::Artificial)
    }

    /// The stable CLI/JSON name of the suite (the inverse of
    /// [`crate::suite_from_name`]).
    pub fn cli_name(self) -> &'static str {
        match self {
            Suite::Blas => "blas",
            Suite::Darknet => "darknet",
            Suite::Utdsp => "utdsp",
            Suite::Dspstone => "dspstone",
            Suite::Mathfu => "mathfu",
            Suite::SimpleArray => "simple",
            Suite::Llama => "llama",
            Suite::Artificial => "artificial",
        }
    }
}

/// Logical description of one kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamSpec {
    /// An `int` scalar bound to a size symbol (an array extent).
    Size(&'static str),
    /// A scalar data input (rational). `nonzero` marks divisors.
    ScalarIn {
        /// Must the generated value be nonzero?
        nonzero: bool,
    },
    /// An input array with the given extent symbols (row-major).
    ArrayIn {
        /// Extent symbols, outermost first.
        dims: &'static [&'static str],
        /// Must every element be nonzero (the array is a divisor)?
        nonzero: bool,
    },
    /// The output array with the given extent symbols.
    ArrayOut {
        /// Extent symbols, outermost first.
        dims: &'static [&'static str],
    },
}

/// A benchmark: a C kernel plus the metadata needed to instantiate it.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Unique name, e.g. `blas_gemv`.
    pub name: &'static str,
    /// Provenance suite.
    pub suite: Suite,
    /// The legacy C source (one kernel function).
    pub source: &'static str,
    /// The ground-truth TACO program over parameter names.
    pub ground_truth: &'static str,
    /// Parameter descriptions, in signature order.
    pub params: Vec<ParamSpec>,
}

/// An instantiation error.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// The benchmark's C source failed to parse (a suite bug).
    BadSource(String),
    /// A size symbol had no binding.
    MissingSize(&'static str),
    /// Running the kernel failed.
    Runtime(RuntimeError),
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::BadSource(e) => write!(f, "bad benchmark source: {e}"),
            InstanceError::MissingSize(s) => write!(f, "no binding for size symbol `{s}`"),
            InstanceError::Runtime(e) => write!(f, "kernel execution failed: {e}"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// A concrete instantiation of a benchmark: inputs generated, shapes
/// resolved.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Arguments for the C interpreter, in signature order.
    pub args: Vec<ArgValue>,
    /// Input bindings for TACO evaluation: every array *input* as a shaped
    /// tensor and every scalar parameter (sizes included) as a rank-0
    /// tensor, keyed by parameter name.
    pub env: TensorEnv,
    /// Name of the output parameter.
    pub output_name: String,
    /// Index of the output parameter.
    pub output_index: usize,
    /// Logical shape of the output.
    pub output_shape: Shape,
}

/// The parsed and bytecode-compiled form of one benchmark source, shared
/// process-wide (see [`Benchmark::compiled_source`]).
#[derive(Debug)]
pub struct CompiledSource {
    /// The parsed C program.
    pub program: CProgram,
    /// The kernel compiled to interpreter bytecode.
    pub kernel: Arc<CompiledFn>,
}

impl Benchmark {
    /// Parses the C source.
    ///
    /// # Errors
    ///
    /// Returns the parse error message; suite tests assert this never
    /// happens for shipped benchmarks.
    pub fn parse_source(&self) -> Result<CProgram, InstanceError> {
        parse_c(self.source).map_err(|e| InstanceError::BadSource(e.to_string()))
    }

    /// The parsed + compiled kernel, cached process-wide.
    ///
    /// Benchmark values are rebuilt freely (suites return fresh `Vec`s),
    /// so the cache is keyed by the `'static` source text rather than by
    /// value identity: every instantiation, reference run and lift task of
    /// a benchmark shares one parse and one bytecode compilation. Parse
    /// failures are not cached (they only occur for malformed test
    /// fixtures).
    pub fn compiled_source(&self) -> Result<Arc<CompiledSource>, InstanceError> {
        static CACHE: OnceLock<RwLock<HashMap<&'static str, Arc<CompiledSource>>>> =
            OnceLock::new();
        let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
        if let Some(hit) = cache.read().expect("cache lock").get(self.source) {
            return Ok(hit.clone());
        }
        let program = self.parse_source()?;
        let kernel = Arc::new(compile_fn(program.kernel()));
        let entry = Arc::new(CompiledSource { program, kernel });
        cache
            .write()
            .expect("cache lock")
            .entry(self.source)
            .or_insert(entry.clone());
        Ok(entry)
    }

    /// Parses the ground-truth TACO program.
    pub fn parse_ground_truth(&self) -> TacoProgram {
        parse_program(self.ground_truth).expect("suite ground truth parses")
    }

    /// Index and spec of the output parameter.
    pub fn output_param(&self) -> (usize, &'static [&'static str]) {
        for (i, p) in self.params.iter().enumerate() {
            if let ParamSpec::ArrayOut { dims } = p {
                return (i, dims);
            }
        }
        panic!("benchmark {} has no output parameter", self.name);
    }

    /// The size symbols this benchmark uses, in order of first appearance.
    pub fn size_symbols(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for p in &self.params {
            match p {
                ParamSpec::Size(s) => {
                    if !out.contains(s) {
                        out.push(*s);
                    }
                }
                ParamSpec::ArrayIn { dims, .. } | ParamSpec::ArrayOut { dims } => {
                    for d in *dims {
                        if !out.contains(d) {
                            out.push(*d);
                        }
                    }
                }
                ParamSpec::ScalarIn { .. } => {}
            }
        }
        out
    }

    /// Builds a concrete instance with the given size bindings, drawing
    /// input data from `gen` (integers in `[lo, hi]`).
    pub fn instantiate(
        &self,
        sizes: &BTreeMap<&str, usize>,
        gen: &mut TensorGen,
        lo: i64,
        hi: i64,
    ) -> Result<Instance, InstanceError> {
        let src = self.compiled_source()?;
        let func = src.program.kernel();
        assert_eq!(
            func.params.len(),
            self.params.len(),
            "benchmark {}: param spec length mismatch",
            self.name
        );
        let resolve = |sym: &'static str| -> Result<usize, InstanceError> {
            sizes.get(sym).copied().ok_or(InstanceError::MissingSize(sym))
        };
        let mut args = Vec::new();
        let mut env = TensorEnv::new();
        let mut output = None;
        for (i, (spec, param)) in self.params.iter().zip(&func.params).enumerate() {
            match spec {
                ParamSpec::Size(sym) => {
                    let v = resolve(sym)? as i64;
                    args.push(ArgValue::Scalar(Rat::from(v)));
                    env.insert(param.name.clone(), Tensor::scalar(Rat::from(v)));
                }
                ParamSpec::ScalarIn { nonzero } => {
                    let v = if *nonzero {
                        gen.nonzero_int_in(lo, hi)
                    } else {
                        gen.int_in(lo, hi)
                    };
                    args.push(ArgValue::Scalar(v));
                    env.insert(param.name.clone(), Tensor::scalar(v));
                }
                ParamSpec::ArrayIn { dims, nonzero } => {
                    let extents = dims
                        .iter()
                        .map(|d| resolve(d))
                        .collect::<Result<Vec<_>, _>>()?;
                    let shape = Shape::new(extents);
                    let t = if *nonzero {
                        gen.nonzero_int_tensor(shape, lo, hi)
                    } else {
                        gen.int_tensor(shape, lo, hi)
                    };
                    args.push(ArgValue::Array(t.data().to_vec()));
                    env.insert(param.name.clone(), t);
                }
                ParamSpec::ArrayOut { dims } => {
                    let extents = dims
                        .iter()
                        .map(|d| resolve(d))
                        .collect::<Result<Vec<_>, _>>()?;
                    let shape = Shape::new(extents);
                    args.push(ArgValue::Array(vec![Rat::ZERO; shape.len()]));
                    output = Some((i, param.name.clone(), shape));
                }
            }
        }
        let (output_index, output_name, output_shape) =
            output.unwrap_or_else(|| panic!("benchmark {} has no output parameter", self.name));
        Ok(Instance {
            args,
            env,
            output_name,
            output_index,
            output_shape,
        })
    }

    /// Runs the C kernel on an instance, returning the output as a shaped
    /// tensor. The kernel runs as cached bytecode ([`Self::compiled_source`]):
    /// parse and compile happen once per benchmark, not once per run.
    pub fn run_reference(&self, instance: &Instance) -> Result<Tensor, InstanceError> {
        let src = self.compiled_source()?;
        let result =
            run_compiled(&src.kernel, instance.args.clone()).map_err(InstanceError::Runtime)?;
        // Map the output parameter index to its array-slot index (array
        // arguments only).
        let array_slot = self
            .params
            .iter()
            .take(instance.output_index)
            .filter(|p| {
                matches!(p, ParamSpec::ArrayIn { .. } | ParamSpec::ArrayOut { .. })
            })
            .count();
        let data = result.arrays[array_slot].clone();
        Tensor::from_data(instance.output_shape.clone(), data)
            .map_err(|_| InstanceError::BadSource("output shape/data mismatch".to_string()))
    }

    /// A default size binding for this benchmark: distinct small extents
    /// per symbol so transposition errors are observable.
    pub fn default_sizes(&self) -> BTreeMap<&str, usize> {
        // Distinct primes keep linearised offsets unambiguous.
        const EXTENTS: [usize; 6] = [3, 4, 2, 5, 3, 4];
        self.size_symbols()
            .into_iter()
            .enumerate()
            .map(|(n, s)| (s, EXTENTS[n % EXTENTS.len()]))
            .collect()
    }
}

impl Benchmark {
    /// Converts the benchmark into a [`gtl_validate::LiftTask`] for the
    /// lifting pipeline: parses the kernel, translates the parameter
    /// specs and harvests the constant pool.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark source does not parse (a suite bug caught
    /// by the suite's own tests).
    pub fn lift_task(&self) -> gtl_validate::LiftTask {
        use gtl_validate::{TaskParam, TaskParamKind};
        let src = self
            .compiled_source()
            .unwrap_or_else(|e| panic!("{}: {e}", self.name));
        let func = src.program.kernel().clone();
        let params = self
            .params
            .iter()
            .zip(&func.params)
            .map(|(spec, p)| TaskParam {
                name: p.name.clone(),
                kind: match spec {
                    ParamSpec::Size(sym) => TaskParamKind::Size((*sym).to_string()),
                    ParamSpec::ScalarIn { nonzero } => TaskParamKind::ScalarIn {
                        nonzero: *nonzero,
                    },
                    ParamSpec::ArrayIn { dims, nonzero } => TaskParamKind::ArrayIn {
                        dims: dims.iter().map(|d| (*d).to_string()).collect(),
                        nonzero: *nonzero,
                    },
                    ParamSpec::ArrayOut { dims } => TaskParamKind::ArrayOut {
                        dims: dims.iter().map(|d| (*d).to_string()).collect(),
                    },
                },
            })
            .collect();
        let constants = func.int_constants();
        gtl_validate::LiftTask {
            func,
            params,
            output: self.output_param().0,
            constants,
            // Seed the task with the already compiled kernel so the
            // pipeline's reference runs reuse this benchmark's bytecode.
            ref_program: LazyCompiledFn::from_compiled(src.kernel.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot_benchmark() -> Benchmark {
        Benchmark {
            name: "test_dot",
            suite: Suite::Blas,
            source: "void dot(int n, int *a, int *b, int *out) {
                *out = 0;
                for (int i = 0; i < n; i++) *out += a[i] * b[i];
            }",
            ground_truth: "out = a(i) * b(i)",
            params: vec![
                ParamSpec::Size("n"),
                ParamSpec::ArrayIn {
                    dims: &["n"],
                    nonzero: false,
                },
                ParamSpec::ArrayIn {
                    dims: &["n"],
                    nonzero: false,
                },
                ParamSpec::ArrayOut { dims: &[] },
            ],
        }
    }

    #[test]
    fn instantiate_and_run() {
        let b = dot_benchmark();
        let sizes = b.default_sizes();
        let mut gen = TensorGen::from_label("test");
        let inst = b.instantiate(&sizes, &mut gen, -5, 5).unwrap();
        assert_eq!(inst.output_shape, Shape::scalar());
        assert_eq!(inst.env.len(), 3, "n, a, b are all bound");
        let out = b.run_reference(&inst).unwrap();
        // Compare against the ground truth evaluated with TACO semantics.
        let gt = b.parse_ground_truth();
        let expected = gtl_taco::evaluate(&gt, &inst.env).unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn size_symbols_deduplicated() {
        let b = dot_benchmark();
        assert_eq!(b.size_symbols(), vec!["n"]);
    }

    #[test]
    fn missing_size_reported() {
        let b = dot_benchmark();
        let mut gen = TensorGen::from_label("test");
        let err = b
            .instantiate(&BTreeMap::new(), &mut gen, -5, 5)
            .unwrap_err();
        assert_eq!(err, InstanceError::MissingSize("n"));
    }
}
