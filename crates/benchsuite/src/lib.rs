//! The 77-benchmark lifting suite of the Guided Tensor Lifting
//! reproduction.
//!
//! The paper evaluates on 77 queries: 67 real-world problems (61 from the
//! literature — blas, darknet, UTDSP, DSPStone, mathfu, generic array
//! code — plus 6 from C++ llama inference) and 10 artificial examples.
//! This crate re-creates that suite: every benchmark is a legacy C kernel
//! with logical shapes, a designated output parameter, and a ground-truth
//! TACO program used by the synthetic oracle and by the suite's own
//! consistency tests.
//!
//! # Example
//!
//! ```
//! use gtl_benchsuite::{all_benchmarks, by_name};
//!
//! assert_eq!(all_benchmarks().len(), 77);
//! let gemv = by_name("blas_gemv").unwrap();
//! assert_eq!(gemv.ground_truth, "Result(i) = Mat1(i,j) * Mat2(j)");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod spec;
pub mod suites;

pub use spec::{Benchmark, Instance, InstanceError, ParamSpec, Suite};

/// All 77 benchmarks: 67 real-world followed by the 10 artificial ones.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut out = Vec::with_capacity(77);
    out.extend(suites::blas::benchmarks());
    out.extend(suites::darknet::benchmarks());
    out.extend(suites::utdsp::benchmarks());
    out.extend(suites::dspstone::benchmarks());
    out.extend(suites::mathfu::benchmarks());
    out.extend(suites::simple::benchmarks());
    out.extend(suites::llama::benchmarks());
    out.extend(suites::artificial::benchmarks());
    out
}

/// The 67 real-world benchmarks (everything except the artificial suite).
pub fn real_world_benchmarks() -> Vec<Benchmark> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.suite.is_real_world())
        .collect()
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// All benchmarks of one suite, in suite order.
pub fn by_suite(suite: Suite) -> Vec<Benchmark> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.suite == suite)
        .collect()
}

/// Parses a suite from its CLI name (`blas`, `darknet`, `utdsp`,
/// `dspstone`, `mathfu`, `simple`, `llama`, `artificial`).
pub fn suite_from_name(name: &str) -> Option<Suite> {
    Some(match name {
        "blas" => Suite::Blas,
        "darknet" => Suite::Darknet,
        "utdsp" => Suite::Utdsp,
        "dspstone" => Suite::Dspstone,
        "mathfu" => Suite::Mathfu,
        "simple" => Suite::SimpleArray,
        "llama" => Suite::Llama,
        "artificial" => Suite::Artificial,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_taco::evaluate;
    use gtl_tensor::TensorGen;
    use std::collections::BTreeMap;

    #[test]
    fn exactly_77_benchmarks() {
        assert_eq!(all_benchmarks().len(), 77);
        assert_eq!(real_world_benchmarks().len(), 67);
    }

    #[test]
    fn names_unique() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len(), "duplicate benchmark names");
    }

    #[test]
    fn all_sources_parse() {
        for b in all_benchmarks() {
            b.parse_source()
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn all_ground_truths_parse() {
        for b in all_benchmarks() {
            let gt = b.parse_ground_truth();
            // LHS must be the output parameter.
            let (idx, _) = b.output_param();
            let prog = b.parse_source().unwrap();
            assert_eq!(
                gt.lhs.tensor.as_str(),
                prog.kernel().params[idx].name,
                "{}: ground-truth LHS must name the output param",
                b.name
            );
        }
    }

    /// The pivotal consistency check: for every benchmark, running the C
    /// kernel must agree with evaluating the ground-truth TACO program —
    /// on two different size bindings and three random draws each.
    #[test]
    fn c_and_taco_ground_truth_agree() {
        for b in all_benchmarks() {
            let syms = b.size_symbols();
            let bindings: Vec<BTreeMap<&str, usize>> = vec![
                b.default_sizes(),
                syms.iter()
                    .enumerate()
                    .map(|(n, s)| (*s, [2usize, 3, 4, 2, 3][n % 5]))
                    .collect(),
            ];
            let gt = b.parse_ground_truth();
            for (round, sizes) in bindings.iter().enumerate() {
                for draw in 0..3 {
                    let mut gen =
                        TensorGen::from_label(&format!("{}::{round}::{draw}", b.name));
                    let inst = b
                        .instantiate(sizes, &mut gen, -4, 4)
                        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
                    let c_out = b
                        .run_reference(&inst)
                        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
                    let taco_out = evaluate(&gt, &inst.env)
                        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
                    assert_eq!(
                        c_out, taco_out,
                        "{}: C kernel disagrees with ground truth (sizes {sizes:?})",
                        b.name
                    );
                }
            }
        }
    }

    #[test]
    fn suite_lookup_roundtrips() {
        for b in all_benchmarks() {
            assert_eq!(suite_from_name(b.suite.cli_name()), Some(b.suite));
        }
        let simple = by_suite(Suite::SimpleArray);
        assert!(!simple.is_empty());
        assert!(simple.iter().all(|b| b.suite == Suite::SimpleArray));
        assert_eq!(suite_from_name("nope"), None);
    }

    #[test]
    fn suite_sizes_match_paper() {
        let count = |s: Suite| all_benchmarks().iter().filter(|b| b.suite == s).count();
        assert_eq!(count(Suite::Llama), 6, "paper: 6 llama kernels");
        assert_eq!(count(Suite::Artificial), 10, "paper: 10 artificial");
    }
}
