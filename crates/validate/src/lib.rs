//! Template validation against input/output examples (§6 of the paper).
//!
//! Complete templates arriving from the search contain symbolic tensors
//! (`b, c, …`) and symbolic constants. This crate:
//!
//! - models the lifting [`LiftTask`] (kernel + logical shapes + constant
//!   pool);
//! - generates I/O examples by running the legacy kernel on random inputs
//!   ([`generate_examples`]);
//! - enumerates dimensionally-sound [`Substitution`]s (Fig. 8), applies
//!   them, and tests each instantiation against the examples
//!   ([`validate_template`]), handing survivors to the §7 verifier.
//!
//! # Example
//!
//! ```
//! use gtl_cfront::parse_c;
//! use gtl_taco::parse_program;
//! use gtl_validate::*;
//!
//! let prog = parse_c("void scale(int n, int *x, int *out) {
//!     for (int i = 0; i < n; i++) out[i] = 2 * x[i];
//! }").unwrap();
//! let task = LiftTask {
//!     func: prog.kernel().clone(),
//!     params: vec![
//!         TaskParam { name: "n".into(), kind: TaskParamKind::Size("n".into()) },
//!         TaskParam { name: "x".into(), kind: TaskParamKind::ArrayIn { dims: vec!["n".into()], nonzero: false } },
//!         TaskParam { name: "out".into(), kind: TaskParamKind::ArrayOut { dims: vec!["n".into()] } },
//!     ],
//!     output: 2,
//!     constants: vec![0, 2],
//!     ref_program: Default::default(),
//! };
//! let examples = generate_examples(&task, &ExampleConfig::default()).unwrap();
//! let template = parse_program("a(i) = b(i) * Const").unwrap();
//! let mut stats = ValidationStats::default();
//! let solution =
//!     validate_template(&template, &task, &examples, |_, _| true, &mut stats).unwrap();
//! assert_eq!(solution.to_string(), "out(i) = x(i) * 2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod subst;
mod task;
mod validator;

pub use subst::{
    apply_substitution, enumerate_substitutions, template_slots, Substitution, TemplateSlots,
};
pub use task::{LiftTask, TaskError, TaskInstance, TaskParam, TaskParamKind, ValueMode};
pub use validator::{
    generate_examples, passes_examples, passes_examples_cached, validate_template,
    validate_template_cached, ExampleConfig, IoExample, SharedValidationStats, ValidationStats,
};
