//! Substitution enumeration and template instantiation (§6, Fig. 8).
//!
//! A complete template contains symbolic tensors `b, c, …` and symbolic
//! constants. The validator enumerates every binding of tensor symbols to
//! kernel arguments and constant symbols to the source constant pool,
//! discards bindings that are dimensionally unsound (a rank-2 symbol
//! cannot bind a scalar and vice versa), instantiates the template and
//! tests it against the input/output examples.

use std::collections::BTreeMap;

use gtl_taco::{Access, Expr, Ident, TacoProgram};

use crate::task::LiftTask;

/// A substitution: tensor symbol → argument name, constant slot → value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Substitution {
    /// Tensor symbol bindings (e.g. `b → Mat1`).
    pub tensors: BTreeMap<String, String>,
    /// Constant slot bindings (slot id → value).
    pub constants: BTreeMap<u32, i64>,
}

impl std::fmt::Display for Substitution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        let mut first = true;
        for (s, a) in &self.tensors {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{s} ↦ {a}")?;
        }
        for (slot, v) in &self.constants {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "Const{slot} ↦ {v}")?;
        }
        write!(f, "⟩")
    }
}

/// Applies a substitution to a template, producing a concrete program
/// over argument names.
pub fn apply_substitution(template: &TacoProgram, sub: &Substitution, output: &str) -> TacoProgram {
    fn rename_access(acc: &Access, sub: &Substitution, output: &str) -> Access {
        let name = acc.tensor.as_str();
        let new = if name == "a" {
            output.to_string()
        } else {
            sub.tensors
                .get(name)
                .cloned()
                .unwrap_or_else(|| name.to_string())
        };
        Access {
            tensor: Ident::new(new),
            indices: acc.indices.clone(),
        }
    }
    fn rename(e: &Expr, sub: &Substitution, output: &str) -> Expr {
        match e {
            Expr::Access(acc) => Expr::Access(rename_access(acc, sub, output)),
            Expr::Const(c) => Expr::Const(*c),
            Expr::ConstSym(slot) => match sub.constants.get(slot) {
                Some(v) => Expr::Const(*v),
                None => Expr::ConstSym(*slot),
            },
            Expr::Neg(inner) => Expr::Neg(Box::new(rename(inner, sub, output))),
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(rename(lhs, sub, output)),
                rhs: Box::new(rename(rhs, sub, output)),
            },
        }
    }
    TacoProgram {
        lhs: rename_access(&template.lhs, sub, output),
        rhs: rename(&template.rhs, sub, output),
    }
}

/// The symbolic slots of a template: RHS tensor symbols with their ranks
/// (in order of first appearance) and the constant slot ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateSlots {
    /// `(symbol, rank)` pairs.
    pub tensors: Vec<(String, usize)>,
    /// Constant slot ids, in appearance order.
    pub constants: Vec<u32>,
}

/// Extracts the slots of a template. Returns `None` when a symbol is used
/// with inconsistent ranks (such templates are unsatisfiable).
pub fn template_slots(template: &TacoProgram) -> Option<TemplateSlots> {
    let mut tensors: Vec<(String, usize)> = Vec::new();
    for acc in template.rhs.accesses() {
        let name = acc.tensor.as_str();
        if name == "a" {
            // LHS symbol reused on the RHS: it binds the output.
            continue;
        }
        match tensors.iter().find(|(n, _)| n == name) {
            Some((_, rank)) if *rank != acc.rank() => return None,
            Some(_) => {}
            None => tensors.push((name.to_string(), acc.rank())),
        }
    }
    let mut constants = Vec::new();
    collect_const_slots(&template.rhs, &mut constants);
    Some(TemplateSlots { tensors, constants })
}

fn collect_const_slots(e: &Expr, out: &mut Vec<u32>) {
    match e {
        Expr::ConstSym(s) => {
            if !out.contains(s) {
                out.push(*s);
            }
        }
        Expr::Access(_) | Expr::Const(_) => {}
        Expr::Neg(inner) => collect_const_slots(inner, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_const_slots(lhs, out);
            collect_const_slots(rhs, out);
        }
    }
}

/// Enumerates all dimensionally-sound substitutions for a template
/// against a task, in a deterministic order (Fig. 8's filtered set).
///
/// Tensor symbols of rank r bind arguments of logical rank r; rank-0
/// symbols bind scalar arguments (sizes and data scalars). Constant slots
/// bind values from the source constant pool. Bindings are not required
/// to be injective (Fig. 8 tries `b → Mat1, c → Mat1`).
pub fn enumerate_substitutions(template: &TacoProgram, task: &LiftTask) -> Vec<Substitution> {
    let Some(slots) = template_slots(template) else {
        return Vec::new();
    };
    let ranks = task.param_ranks();
    // Candidate argument names per slot, by rank.
    let mut per_slot: Vec<Vec<&str>> = Vec::new();
    for (_, rank) in &slots.tensors {
        let cands: Vec<&str> = task
            .params
            .iter()
            .map(|p| p.name.as_str())
            .filter(|n| ranks[n] == *rank)
            .collect();
        if cands.is_empty() {
            return Vec::new();
        }
        per_slot.push(cands);
    }
    let const_pool: Vec<i64> = if slots.constants.is_empty() {
        Vec::new()
    } else if task.constants.is_empty() {
        return Vec::new();
    } else {
        task.constants.clone()
    };

    // Cartesian product over tensor slots, then constant slots.
    let mut subs = Vec::new();
    let mut tensor_choice = vec![0usize; per_slot.len()];
    loop {
        let mut const_choice = vec![0usize; slots.constants.len()];
        loop {
            let mut sub = Substitution::default();
            for ((sym, _), (cands, &choice)) in slots
                .tensors
                .iter()
                .zip(per_slot.iter().zip(&tensor_choice))
            {
                sub.tensors.insert(sym.clone(), cands[choice].to_string());
            }
            for (slot, &choice) in slots.constants.iter().zip(&const_choice) {
                sub.constants.insert(*slot, const_pool[choice]);
            }
            subs.push(sub);
            // Advance the constant odometer (last slot fastest, so the
            // enumeration is lexicographic).
            let mut done = true;
            for c in const_choice.iter_mut().rev() {
                *c += 1;
                if *c < const_pool.len() {
                    done = false;
                    break;
                }
                *c = 0;
            }
            if done {
                break;
            }
        }
        // Advance the tensor odometer (last slot fastest).
        let mut done = true;
        for pos in (0..tensor_choice.len()).rev() {
            tensor_choice[pos] += 1;
            if tensor_choice[pos] < per_slot[pos].len() {
                done = false;
                break;
            }
            tensor_choice[pos] = 0;
        }
        if done {
            break;
        }
    }
    subs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::tests_support::dot_task;
    use gtl_taco::parse_program;

    #[test]
    fn slots_extraction() {
        let t = parse_program("a(i) = b(i,j) * c(j) + Const").unwrap();
        let slots = template_slots(&t).unwrap();
        assert_eq!(
            slots.tensors,
            vec![("b".to_string(), 2), ("c".to_string(), 1)]
        );
        assert_eq!(slots.constants.len(), 1);
    }

    #[test]
    fn inconsistent_rank_rejected() {
        let t = parse_program("a(i) = b(i,j) * b(j)").unwrap();
        assert!(template_slots(&t).is_none());
    }

    #[test]
    fn enumeration_filters_by_rank() {
        // dot task: args n (0), a (1), b (1), out (0).
        let task = dot_task();
        let t = parse_program("a = b(i) * c(i)").unwrap();
        let subs = enumerate_substitutions(&t, &task);
        // Each of b, c can bind the two rank-1 arrays: 4 combinations.
        assert_eq!(subs.len(), 4);
        assert!(subs
            .iter()
            .any(|s| s.tensors["b"] == "a" && s.tensors["c"] == "b"));
        // Non-injective bindings present (Fig. 8's S1).
        assert!(subs
            .iter()
            .any(|s| s.tensors["b"] == "a" && s.tensors["c"] == "a"));
    }

    #[test]
    fn scalar_symbols_bind_scalars() {
        let task = dot_task();
        let t = parse_program("a = b(i) * c").unwrap();
        let subs = enumerate_substitutions(&t, &task);
        // c (rank 0) binds n or out: 2 options × b's 2 arrays = 4.
        assert_eq!(subs.len(), 4);
        assert!(subs.iter().all(|s| s.tensors["c"] == "n" || s.tensors["c"] == "out"));
    }

    #[test]
    fn constants_from_pool() {
        let task = dot_task(); // constants: [0]
        let t = parse_program("a = b(i) * Const").unwrap();
        let subs = enumerate_substitutions(&t, &task);
        assert!(!subs.is_empty());
        assert!(subs.iter().all(|s| s.constants[&0] == 0));
    }

    #[test]
    fn application_renames() {
        let t = parse_program("a(i) = b(i,j) * c(j)").unwrap();
        let mut sub = Substitution::default();
        sub.tensors.insert("b".into(), "Mat1".into());
        sub.tensors.insert("c".into(), "Mat2".into());
        let concrete = apply_substitution(&t, &sub, "Result");
        assert_eq!(concrete.to_string(), "Result(i) = Mat1(i,j) * Mat2(j)");
    }

    #[test]
    fn display_matches_paper_notation() {
        let mut sub = Substitution::default();
        sub.tensors.insert("b".into(), "Mat1".into());
        assert_eq!(sub.to_string(), "⟨b ↦ Mat1⟩");
    }
}
