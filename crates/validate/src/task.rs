//! The lifting task: a legacy C kernel plus the logical-shape metadata
//! the validator and verifier need to run it.

use std::collections::BTreeMap;

use gtl_cfront::{run_compiled, ArgValue, Function, LazyCompiledFn, RuntimeError};
use gtl_taco::TensorEnv;
use gtl_tensor::{Rat, Shape, Tensor, TensorGen};

/// The kind of one kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskParamKind {
    /// An `int` scalar bound to a size symbol.
    Size(String),
    /// A scalar data input.
    ScalarIn {
        /// Whether the value must be nonzero (it is used as a divisor).
        nonzero: bool,
    },
    /// An input array with symbolic extents.
    ArrayIn {
        /// Extent symbols, outermost first.
        dims: Vec<String>,
        /// Whether elements must be nonzero.
        nonzero: bool,
    },
    /// The output array.
    ArrayOut {
        /// Extent symbols, outermost first.
        dims: Vec<String>,
    },
}

/// One parameter of the task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskParam {
    /// The C parameter name.
    pub name: String,
    /// What the parameter is.
    pub kind: TaskParamKind,
}

/// A lifting task: the parsed kernel, its parameter metadata and the
/// constant pool (§6).
#[derive(Debug, Clone)]
pub struct LiftTask {
    /// The parsed kernel function.
    pub func: Function,
    /// Parameter metadata, in signature order.
    pub params: Vec<TaskParam>,
    /// Index of the output parameter.
    pub output: usize,
    /// Integer constants found in the source (instantiation pool for
    /// `Const` symbols).
    pub constants: Vec<i64>,
    /// The kernel compiled to interpreter bytecode, built on first
    /// [`LiftTask::run_reference`] call and reused for every subsequent
    /// run (examples, verifier sample points, exhaustive sweeps).
    /// `Default::default()` is always a valid value.
    pub ref_program: LazyCompiledFn,
}

/// How input values are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueMode {
    /// Small integers in `[lo, hi]` — used for I/O examples (§6).
    Integers {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// Verifier sample points (§7): random *integers* drawn from a large
    /// range. Schwartz–Zippel needs a large sample space, not fractional
    /// points — and integer points keep the exact-rational arithmetic's
    /// denominators degree-bounded (summing many random fractions would
    /// overflow `i128` denominators). Division inside a kernel still
    /// produces exact fractions.
    VerifyPoints {
        /// Magnitude bound of the sample range `[-magnitude, magnitude]`.
        magnitude: i64,
    },
}

/// A concrete instantiation of the task.
#[derive(Debug, Clone)]
pub struct TaskInstance {
    /// Arguments for the C interpreter.
    pub args: Vec<ArgValue>,
    /// TACO bindings: every parameter by name (arrays shaped, scalars as
    /// rank-0 tensors; the output array with its *initial* contents, as
    /// the paper's Fig. 8 includes the output among substitution
    /// candidates).
    pub env: TensorEnv,
    /// Logical output shape.
    pub output_shape: Shape,
}

/// Errors when instantiating or running a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// A size symbol had no binding.
    MissingSize(String),
    /// The kernel failed at runtime.
    Runtime(RuntimeError),
    /// Output data didn't match the declared shape (metadata bug).
    ShapeMismatch,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::MissingSize(s) => write!(f, "no binding for size symbol `{s}`"),
            TaskError::Runtime(e) => write!(f, "kernel execution failed: {e}"),
            TaskError::ShapeMismatch => write!(f, "output shape/data mismatch"),
        }
    }
}

impl std::error::Error for TaskError {}

impl LiftTask {
    /// All size symbols, in order of first appearance.
    pub fn size_symbols(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for p in &self.params {
            match &p.kind {
                TaskParamKind::Size(s) => {
                    if !out.contains(&s.as_str()) {
                        out.push(s);
                    }
                }
                TaskParamKind::ArrayIn { dims, .. } | TaskParamKind::ArrayOut { dims } => {
                    for d in dims {
                        if !out.contains(&d.as_str()) {
                            out.push(d);
                        }
                    }
                }
                TaskParamKind::ScalarIn { .. } => {}
            }
        }
        out
    }

    /// The output parameter's name.
    pub fn output_name(&self) -> &str {
        &self.params[self.output].name
    }

    /// Logical rank of each parameter (arrays by declared dims, scalars
    /// rank 0), keyed by name.
    pub fn param_ranks(&self) -> BTreeMap<&str, usize> {
        self.params
            .iter()
            .map(|p| {
                let rank = match &p.kind {
                    TaskParamKind::Size(_) | TaskParamKind::ScalarIn { .. } => 0,
                    TaskParamKind::ArrayIn { dims, .. } | TaskParamKind::ArrayOut { dims } => {
                        dims.len()
                    }
                };
                (p.name.as_str(), rank)
            })
            .collect()
    }

    /// Builds a concrete instance under a size binding.
    pub fn instantiate(
        &self,
        sizes: &BTreeMap<String, usize>,
        gen: &mut TensorGen,
        mode: ValueMode,
    ) -> Result<TaskInstance, TaskError> {
        let resolve = |sym: &String| -> Result<usize, TaskError> {
            sizes
                .get(sym)
                .copied()
                .ok_or_else(|| TaskError::MissingSize(sym.clone()))
        };
        let draw = |nonzero: bool, gen: &mut TensorGen| -> Rat {
            match mode {
                ValueMode::Integers { lo, hi } => {
                    if nonzero {
                        gen.nonzero_int_in(lo, hi)
                    } else {
                        gen.int_in(lo, hi)
                    }
                }
                ValueMode::VerifyPoints { magnitude } => {
                    if nonzero {
                        gen.nonzero_int_in(-magnitude, magnitude)
                    } else {
                        gen.int_in(-magnitude, magnitude)
                    }
                }
            }
        };
        let mut args = Vec::new();
        let mut env = TensorEnv::new();
        let mut output_shape = None;
        for p in &self.params {
            match &p.kind {
                TaskParamKind::Size(sym) => {
                    let v = resolve(sym)? as i64;
                    args.push(ArgValue::Scalar(Rat::from(v)));
                    env.insert(p.name.clone(), Tensor::scalar(Rat::from(v)));
                }
                TaskParamKind::ScalarIn { nonzero } => {
                    let v = draw(*nonzero, gen);
                    args.push(ArgValue::Scalar(v));
                    env.insert(p.name.clone(), Tensor::scalar(v));
                }
                TaskParamKind::ArrayIn { dims, nonzero } => {
                    let extents = dims.iter().map(resolve).collect::<Result<Vec<_>, _>>()?;
                    let shape = Shape::new(extents);
                    let data: Vec<Rat> =
                        (0..shape.len()).map(|_| draw(*nonzero, gen)).collect();
                    let t = Tensor::from_data(shape, data).expect("length from shape");
                    args.push(ArgValue::Array(t.data().to_vec()));
                    env.insert(p.name.clone(), t);
                }
                TaskParamKind::ArrayOut { dims } => {
                    let extents = dims.iter().map(resolve).collect::<Result<Vec<_>, _>>()?;
                    let shape = Shape::new(extents);
                    let zeros = vec![Rat::ZERO; shape.len()];
                    args.push(ArgValue::Array(zeros.clone()));
                    env.insert(
                        p.name.clone(),
                        Tensor::from_data(shape.clone(), zeros).expect("length from shape"),
                    );
                    output_shape = Some(shape);
                }
            }
        }
        Ok(TaskInstance {
            args,
            env,
            output_shape: output_shape.expect("task has an output parameter"),
        })
    }

    /// Runs the C kernel on an instance and returns the shaped output.
    ///
    /// The kernel is compiled to bytecode once (cached in
    /// [`LiftTask::ref_program`]) and every call executes the compiled
    /// form — the reference side of validation and verification runs many
    /// thousands of instances per task, so the tree-walk interpreter's
    /// per-run dispatch cost is paid exactly once, at compile time.
    pub fn run_reference(&self, instance: &TaskInstance) -> Result<Tensor, TaskError> {
        let compiled = self.ref_program.get_or_compile(&self.func);
        let result =
            run_compiled(compiled, instance.args.clone()).map_err(TaskError::Runtime)?;
        let array_slot = self
            .params
            .iter()
            .take(self.output)
            .filter(|p| {
                matches!(
                    p.kind,
                    TaskParamKind::ArrayIn { .. } | TaskParamKind::ArrayOut { .. }
                )
            })
            .count();
        let data = result.arrays[array_slot].clone();
        Tensor::from_data(instance.output_shape.clone(), data)
            .map_err(|_| TaskError::ShapeMismatch)
    }

    /// A default size binding (distinct small extents per symbol).
    pub fn default_sizes(&self) -> BTreeMap<String, usize> {
        const EXTENTS: [usize; 6] = [3, 4, 2, 5, 3, 4];
        self.size_symbols()
            .into_iter()
            .enumerate()
            .map(|(n, s)| (s.to_string(), EXTENTS[n % EXTENTS.len()]))
            .collect()
    }

    /// A rotated size binding for verification round `round`.
    pub fn sizes_for_round(&self, round: usize) -> BTreeMap<String, usize> {
        const EXTENTS: [usize; 6] = [3, 4, 2, 5, 3, 4];
        self.size_symbols()
            .into_iter()
            .enumerate()
            .map(|(n, s)| (s.to_string(), EXTENTS[(n + round) % EXTENTS.len()]))
            .collect()
    }
}

/// Test-only task fixtures shared across the crate's unit tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use gtl_cfront::parse_c;

    /// A dot-product task: `out = a(i) * b(i)`.
    pub(crate) fn dot_task() -> LiftTask {
        let prog = parse_c(
            "void dot(int n, int *a, int *b, int *out) {
                *out = 0;
                for (int i = 0; i < n; i++) *out += a[i] * b[i];
            }",
        )
        .unwrap();
        LiftTask {
            func: prog.kernel().clone(),
            params: vec![
                TaskParam {
                    name: "n".into(),
                    kind: TaskParamKind::Size("n".into()),
                },
                TaskParam {
                    name: "a".into(),
                    kind: TaskParamKind::ArrayIn {
                        dims: vec!["n".into()],
                        nonzero: false,
                    },
                },
                TaskParam {
                    name: "b".into(),
                    kind: TaskParamKind::ArrayIn {
                        dims: vec!["n".into()],
                        nonzero: false,
                    },
                },
                TaskParam {
                    name: "out".into(),
                    kind: TaskParamKind::ArrayOut { dims: vec![] },
                },
            ],
            output: 3,
            constants: vec![0],
            ref_program: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::dot_task;
    use super::*;

    #[test]
    fn instantiation_and_reference_run() {
        let task = dot_task();
        let sizes = task.default_sizes();
        let mut gen = TensorGen::from_label("t");
        let inst = task
            .instantiate(&sizes, &mut gen, ValueMode::Integers { lo: -3, hi: 3 })
            .unwrap();
        assert_eq!(inst.env.len(), 4, "n, a, b and the zeroed output");
        let out = task.run_reference(&inst).unwrap();
        assert_eq!(out.rank(), 0);
    }

    #[test]
    fn ranks() {
        let task = dot_task();
        let ranks = task.param_ranks();
        assert_eq!(ranks["n"], 0);
        assert_eq!(ranks["a"], 1);
        assert_eq!(ranks["out"], 0);
    }

    #[test]
    fn verify_points_nonzero() {
        let mut task = dot_task();
        task.params[1] = TaskParam {
            name: "a".into(),
            kind: TaskParamKind::ArrayIn {
                dims: vec!["n".into()],
                nonzero: true,
            },
        };
        let sizes = task.default_sizes();
        let mut gen = TensorGen::from_label("t2");
        let inst = task
            .instantiate(&sizes, &mut gen, ValueMode::VerifyPoints { magnitude: 10 })
            .unwrap();
        let a = &inst.env["a"];
        assert!(a.data().iter().all(|r| !r.is_zero()));
    }

    #[test]
    fn rounds_vary_sizes() {
        let task = dot_task();
        let s0 = task.sizes_for_round(0);
        let s1 = task.sizes_for_round(1);
        assert_ne!(s0["n"], s1["n"]);
    }
}
