//! The template validator (§6): I/O example generation plus the
//! validate-then-verify loop over substitutions.

use gtl_taco::{BatchKernel, EvalCache, Lane, TacoProgram};
use gtl_tensor::{Tensor, TensorGen};

use crate::subst::{apply_substitution, enumerate_substitutions, Substitution};
use crate::task::{LiftTask, TaskInstance, ValueMode};

/// How many substitutions one batched evaluation sweep carries. Large
/// enough to amortise the shared loop odometer, small enough that an
/// early verifier accept doesn't leave much wasted work behind.
const LANE_BATCH: usize = 64;

/// One input/output example: concrete inputs and the output the legacy
/// kernel produced on them.
#[derive(Debug, Clone)]
pub struct IoExample {
    /// The instantiated inputs.
    pub instance: TaskInstance,
    /// The kernel's output.
    pub output: Tensor,
}

/// Configuration for example generation.
#[derive(Debug, Clone, Copy)]
pub struct ExampleConfig {
    /// Number of examples.
    pub count: usize,
    /// Value range for the random integer inputs.
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl Default for ExampleConfig {
    fn default() -> Self {
        ExampleConfig {
            count: 4,
            lo: -5,
            hi: 5,
            seed: 0x5eed,
        }
    }
}

/// Generates I/O examples by running the legacy kernel on random inputs
/// (§6). Examples use the task's default sizes.
///
/// # Errors
///
/// Propagates [`crate::task::TaskError`] if the kernel cannot be run
/// (which indicates a malformed task rather than a bad template).
pub fn generate_examples(
    task: &LiftTask,
    cfg: &ExampleConfig,
) -> Result<Vec<IoExample>, crate::task::TaskError> {
    let sizes = task.default_sizes();
    let mut gen = TensorGen::new(cfg.seed);
    let mut out = Vec::with_capacity(cfg.count);
    for _ in 0..cfg.count {
        let instance = task.instantiate(
            &sizes,
            &mut gen,
            ValueMode::Integers {
                lo: cfg.lo,
                hi: cfg.hi,
            },
        )?;
        let output = task.run_reference(&instance)?;
        out.push(IoExample { instance, output });
    }
    Ok(out)
}

/// Whether a concrete candidate program reproduces every example.
/// Evaluation errors (division by zero on an example, extent mismatches
/// between bound arguments) count as failure, as the paper's validator
/// simply discards such substitutions.
///
/// Convenience wrapper over [`passes_examples_cached`] with a throwaway
/// cache; since all examples share the task's default sizes, the
/// candidate still compiles only once.
pub fn passes_examples(candidate: &TacoProgram, examples: &[IoExample]) -> bool {
    passes_examples_cached(candidate, examples, &EvalCache::default())
}

/// [`passes_examples`] through a shared [`EvalCache`]: the candidate is
/// compiled at most once per shape signature across every example and
/// every caller holding the same cache (the validation hot loop).
pub fn passes_examples_cached(
    candidate: &TacoProgram,
    examples: &[IoExample],
    cache: &EvalCache,
) -> bool {
    examples.iter().all(|ex| {
        matches!(
            cache.evaluate(candidate, &ex.instance.env),
            Ok(ref out) if *out == ex.output
        )
    })
}

/// Statistics from one validation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationStats {
    /// Substitutions enumerated.
    pub substitutions_tried: u64,
    /// Substitutions that passed all I/O examples (and were handed to the
    /// verifier).
    pub io_passes: u64,
    /// Candidate templates skipped before any evaluation because a
    /// feasibility pre-check proved no substitution could pass (an
    /// output index no RHS access constrains, or a constant-only RHS
    /// against non-constant outputs).
    pub pruned_infeasible: u64,
    /// Candidate templates skipped because an algebraically equivalent
    /// template was already validated (equal canonical fingerprint).
    pub pruned_equivalent: u64,
    /// Shape groups of batched evaluation that ran the unchecked
    /// integer fast path under an interval overflow proof.
    pub unchecked_kernels: u64,
}

impl ValidationStats {
    /// Folds another run's counters into this one.
    pub fn merge(&mut self, other: &ValidationStats) {
        self.substitutions_tried += other.substitutions_tried;
        self.io_passes += other.io_passes;
        self.pruned_infeasible += other.pruned_infeasible;
        self.pruned_equivalent += other.pruned_equivalent;
        self.unchecked_kernels += other.unchecked_kernels;
    }
}

/// Thread-safe accumulator of [`ValidationStats`] for checkers running
/// on parallel search workers: each worker validates with a private
/// `ValidationStats` and folds it in with [`SharedValidationStats::add`].
#[derive(Debug, Default)]
pub struct SharedValidationStats {
    substitutions_tried: std::sync::atomic::AtomicU64,
    io_passes: std::sync::atomic::AtomicU64,
    pruned_infeasible: std::sync::atomic::AtomicU64,
    pruned_equivalent: std::sync::atomic::AtomicU64,
    unchecked_kernels: std::sync::atomic::AtomicU64,
}

impl SharedValidationStats {
    /// Adds one run's counters.
    pub fn add(&self, stats: &ValidationStats) {
        use std::sync::atomic::Ordering;
        self.substitutions_tried
            .fetch_add(stats.substitutions_tried, Ordering::Relaxed);
        self.io_passes.fetch_add(stats.io_passes, Ordering::Relaxed);
        self.pruned_infeasible
            .fetch_add(stats.pruned_infeasible, Ordering::Relaxed);
        self.pruned_equivalent
            .fetch_add(stats.pruned_equivalent, Ordering::Relaxed);
        self.unchecked_kernels
            .fetch_add(stats.unchecked_kernels, Ordering::Relaxed);
    }

    /// A consistent copy of the accumulated counters.
    pub fn snapshot(&self) -> ValidationStats {
        use std::sync::atomic::Ordering;
        ValidationStats {
            substitutions_tried: self.substitutions_tried.load(Ordering::Relaxed),
            io_passes: self.io_passes.load(Ordering::Relaxed),
            pruned_infeasible: self.pruned_infeasible.load(Ordering::Relaxed),
            pruned_equivalent: self.pruned_equivalent.load(Ordering::Relaxed),
            unchecked_kernels: self.unchecked_kernels.load(Ordering::Relaxed),
        }
    }
}

/// The §6 validation loop: enumerate substitutions, test each against the
/// I/O examples, and hand survivors to `verify`; the first substitution
/// the verifier accepts wins. Returns the verified concrete program.
///
/// `verify` realises §7; passing `|_| true` gives the I/O-only behaviour
/// of the C2TACO baseline.
pub fn validate_template(
    template: &TacoProgram,
    task: &LiftTask,
    examples: &[IoExample],
    verify: impl FnMut(&TacoProgram, &Substitution) -> bool,
    stats: &mut ValidationStats,
) -> Option<TacoProgram> {
    validate_template_cached(template, task, examples, verify, stats, &EvalCache::default())
}

/// [`validate_template`] through a shared [`EvalCache`]. Per-worker
/// checkers hold one cache across every template they check, so repeated
/// substitutions and verifier re-evaluations never recompile.
///
/// Substitutions are drained in 64-lane batches (`LANE_BATCH`): the template
/// is lowered once into a [`BatchKernel`] and each I/O example filters a
/// whole batch of [`Lane`]s in a single pass over a shared loop nest,
/// instead of evaluating one substituted program at a time. Survivors are
/// handed to `verify` in enumeration order, so the returned program (and
/// which substitutions the verifier sees) is identical to the scalar
/// loop's.
pub fn validate_template_cached(
    template: &TacoProgram,
    task: &LiftTask,
    examples: &[IoExample],
    mut verify: impl FnMut(&TacoProgram, &Substitution) -> bool,
    stats: &mut ValidationStats,
    cache: &EvalCache,
) -> Option<TacoProgram> {
    let output_name = task.output_name().to_string();
    let subs = enumerate_substitutions(template, task);
    if subs.is_empty() {
        return None;
    }
    let kernel = BatchKernel::new(template);
    for chunk in subs.chunks(LANE_BATCH) {
        stats.substitutions_tried += chunk.len() as u64;
        let lanes: Vec<Option<Lane>> = chunk
            .iter()
            .map(|sub| lane_for(&kernel, sub, &output_name))
            .collect();
        let mut survives = vec![false; chunk.len()];
        // Example-major filtering: each example prunes the batch, so later
        // examples only evaluate lanes that still have a chance.
        let mut alive: Vec<usize> = lanes
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.is_some().then_some(i))
            .collect();
        for ex in examples {
            if alive.is_empty() {
                break;
            }
            let batch: Vec<Lane> = alive
                .iter()
                .map(|&i| lanes[i].clone().expect("alive lanes exist"))
                .collect();
            let mut batch_stats = gtl_taco::BatchStats::default();
            let results =
                kernel.evaluate_lanes_with_stats(&batch, &ex.instance.env, &mut batch_stats);
            stats.unchecked_kernels += batch_stats.unchecked_groups;
            alive = alive
                .into_iter()
                .zip(results)
                .filter(|(_, r)| matches!(r, Ok(out) if *out == ex.output))
                .map(|(i, _)| i)
                .collect();
        }
        for i in alive {
            survives[i] = true;
        }
        // Substitutions a lane can't represent (e.g. an unbound constant
        // slot) fall back to the scalar compiled path.
        for (i, l) in lanes.iter().enumerate() {
            if l.is_none() {
                let concrete = apply_substitution(template, &chunk[i], &output_name);
                survives[i] = passes_examples_cached(&concrete, examples, cache);
            }
        }
        for (i, &ok) in survives.iter().enumerate() {
            if !ok {
                continue;
            }
            stats.io_passes += 1;
            let concrete = apply_substitution(template, &chunk[i], &output_name);
            if verify(&concrete, &chunk[i]) {
                return Some(concrete);
            }
        }
    }
    None
}

/// Builds the [`Lane`] realising one substitution: tensor slots resolve
/// like [`apply_substitution`] (the LHS symbol `a` reused on the RHS binds
/// the output; unbound symbols keep their name and fail analysis, exactly
/// as the scalar path fails them). Returns `None` when a constant slot has
/// no binding — such substitutions cannot be expressed as a lane.
fn lane_for(kernel: &BatchKernel, sub: &Substitution, output: &str) -> Option<Lane> {
    let tensors = kernel
        .tensor_slots()
        .iter()
        .map(|s| {
            if s == "a" {
                output.to_string()
            } else {
                sub.tensors.get(s).cloned().unwrap_or_else(|| s.clone())
            }
        })
        .collect();
    let constants = kernel
        .const_slots()
        .iter()
        .map(|id| sub.constants.get(id).copied())
        .collect::<Option<Vec<i64>>>()?;
    Some(Lane { tensors, constants })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::tests_support::dot_task;
    use gtl_taco::parse_program;

    #[test]
    fn examples_are_deterministic() {
        let task = dot_task();
        let cfg = ExampleConfig::default();
        let e1 = generate_examples(&task, &cfg).unwrap();
        let e2 = generate_examples(&task, &cfg).unwrap();
        assert_eq!(e1.len(), cfg.count);
        assert_eq!(e1[0].output, e2[0].output);
    }

    #[test]
    fn validates_correct_template() {
        let task = dot_task();
        let examples = generate_examples(&task, &ExampleConfig::default()).unwrap();
        let template = parse_program("a = b(i) * c(i)").unwrap();
        let mut stats = ValidationStats::default();
        let got = validate_template(&template, &task, &examples, |_, _| true, &mut stats)
            .expect("dot template validates");
        assert_eq!(got.to_string(), "out = a(i) * b(i)");
        assert!(stats.substitutions_tried >= 1);
        assert!(stats.io_passes >= 1);
    }

    #[test]
    fn rejects_wrong_template() {
        let task = dot_task();
        let examples = generate_examples(&task, &ExampleConfig::default()).unwrap();
        let template = parse_program("a = b(i) + c(i)").unwrap();
        let mut stats = ValidationStats::default();
        assert!(validate_template(&template, &task, &examples, |_, _| true, &mut stats)
            .is_none());
    }

    #[test]
    fn verifier_rejection_continues_search() {
        // With a verifier that rejects everything, validation must
        // exhaust all substitutions and fail.
        let task = dot_task();
        let examples = generate_examples(&task, &ExampleConfig::default()).unwrap();
        let template = parse_program("a = b(i) * c(i)").unwrap();
        let mut stats = ValidationStats::default();
        let got = validate_template(&template, &task, &examples, |_, _| false, &mut stats);
        assert!(got.is_none());
        assert!(stats.io_passes >= 2, "b*c and c*b both pass I/O");
    }

    #[test]
    fn shared_stats_accumulate_across_threads() {
        let shared = SharedValidationStats::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = &shared;
                s.spawn(move || {
                    for _ in 0..100 {
                        shared.add(&ValidationStats {
                            substitutions_tried: 2,
                            io_passes: 1,
                            pruned_infeasible: 1,
                            pruned_equivalent: 1,
                            unchecked_kernels: 1,
                        });
                    }
                });
            }
        });
        assert_eq!(
            shared.snapshot(),
            ValidationStats {
                substitutions_tried: 800,
                io_passes: 400,
                pruned_infeasible: 400,
                pruned_equivalent: 400,
                unchecked_kernels: 400,
            }
        );
    }

    #[test]
    fn dimensionally_unsound_substitutions_skipped() {
        // Template wants a rank-2 tensor; dot task has none.
        let task = dot_task();
        let examples = generate_examples(&task, &ExampleConfig::default()).unwrap();
        let template = parse_program("a = b(i,j) * c(j)").unwrap();
        let mut stats = ValidationStats::default();
        assert!(validate_template(&template, &task, &examples, |_, _| true, &mut stats)
            .is_none());
        assert_eq!(stats.substitutions_tried, 0);
    }
}
