//! STAGG configuration: every knob exercised by the paper's evaluation.

use gtl_oracle::OracleSpec;
use gtl_search::{PenaltySettings, SearchBudget};
use gtl_validate::ExampleConfig;
use gtl_verify::VerifyConfig;

/// Which search algorithm drives enumeration (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Top-down weighted A\* (Algorithm 1) — STAGG_TD.
    TopDown,
    /// Bottom-up A\* over the tail grammar (Algorithm 2) — STAGG_BU.
    BottomUp,
}

impl SearchMode {
    /// The stable CLI/wire name (`td` / `bu`), the inverse of
    /// [`SearchMode::from_cli_name`].
    pub fn cli_name(self) -> &'static str {
        match self {
            SearchMode::TopDown => "td",
            SearchMode::BottomUp => "bu",
        }
    }

    /// Parses a CLI/wire name (`td` / `bu`).
    pub fn from_cli_name(name: &str) -> Option<SearchMode> {
        match name {
            "td" => Some(SearchMode::TopDown),
            "bu" => Some(SearchMode::BottomUp),
            _ => None,
        }
    }
}

/// Which grammar/probability combination to use (§8, Fig. 11/12 and
/// Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrammarMode {
    /// Refined grammar + learned probabilities (the STAGG default).
    Refined,
    /// Refined grammar, all probabilities equal (`EqualProbability`).
    EqualProbability,
    /// Unrefined full TACO grammar, equal probabilities (`FullGrammar`).
    FullGrammar,
    /// Unrefined full TACO grammar with learned probabilities
    /// (`LLMGrammar`).
    LlmGrammar,
}

impl GrammarMode {
    /// The stable CLI/wire name, the inverse of
    /// [`GrammarMode::from_cli_name`].
    pub fn cli_name(self) -> &'static str {
        match self {
            GrammarMode::Refined => "refined",
            GrammarMode::EqualProbability => "equal_probability",
            GrammarMode::FullGrammar => "full_grammar",
            GrammarMode::LlmGrammar => "llm_grammar",
        }
    }

    /// Parses a CLI/wire name (`refined`, `equal_probability`,
    /// `full_grammar`, `llm_grammar`).
    pub fn from_cli_name(name: &str) -> Option<GrammarMode> {
        match name {
            "refined" => Some(GrammarMode::Refined),
            "equal_probability" => Some(GrammarMode::EqualProbability),
            "full_grammar" => Some(GrammarMode::FullGrammar),
            "llm_grammar" => Some(GrammarMode::LlmGrammar),
            _ => None,
        }
    }
}

/// Full configuration of one STAGG run.
#[derive(Debug, Clone)]
pub struct StaggConfig {
    /// Top-down or bottom-up search.
    pub mode: SearchMode,
    /// Grammar refinement/probability variant.
    pub grammar: GrammarMode,
    /// Active penalty rules.
    pub penalties: PenaltySettings,
    /// Search budgets (the stand-in for the paper's 60-minute timeout).
    pub budget: SearchBudget,
    /// I/O example generation (§6).
    pub examples: ExampleConfig,
    /// Bounded verification (§7).
    pub verify: VerifyConfig,
    /// Maximum RHS tensors in the unrefined full grammar.
    pub full_grammar_tensors: usize,
    /// Maximum tensor dimension in the unrefined full grammar.
    pub full_grammar_max_dim: usize,
    /// Worker threads for the search + validate + verify stage. `1` (the
    /// default) runs the sequential engine, bit-identical to the paper
    /// artifact; `> 1` runs the parallel engine, which preserves outcome
    /// classification but may return a different (semantically
    /// equivalent) verified program first.
    pub jobs: usize,
    /// Which oracle provider guides the lift (see
    /// [`OracleSpec::from_cli_name`] for the stable spellings). Used by
    /// [`Stagg::from_config`](crate::Stagg::from_config), serving
    /// workers and the bench harness; a provider passed directly to
    /// [`Stagg::new`](crate::Stagg::new) takes precedence.
    pub oracle: OracleSpec,
    /// Maximum oracle rounds per lift (minimum 1). Rounds after the
    /// first re-query the oracle with feedback about what the search
    /// rejected — the paper's loop back to candidate generation on
    /// failure. Each round runs with a fresh copy of `budget`; a round
    /// that provably adds no information (no parseable candidates, or
    /// an exact repeat of the accumulated pool) skips its search
    /// instead of re-running the identical one.
    pub oracle_rounds: usize,
    /// Candidate pre-pruning (on by default): skip validation of
    /// templates a feasibility pre-check proves unsatisfiable, and of
    /// templates algebraically equivalent to one already validated.
    /// Pruned candidates still count as attempts (they fail exactly as
    /// validation would), so a pruned run solves the same queries with
    /// the same classification — just cheaper. Disable to measure the
    /// pruning win or to reproduce pre-pruning traces.
    pub pruning: bool,
}

impl StaggConfig {
    /// The paper's default STAGG_TD configuration.
    pub fn top_down() -> StaggConfig {
        StaggConfig {
            mode: SearchMode::TopDown,
            grammar: GrammarMode::Refined,
            penalties: PenaltySettings::all(),
            budget: SearchBudget::default(),
            examples: ExampleConfig::default(),
            verify: VerifyConfig::default(),
            full_grammar_tensors: 4,
            full_grammar_max_dim: 3,
            jobs: 1,
            oracle: OracleSpec::default(),
            oracle_rounds: 1,
            pruning: true,
        }
    }

    /// The paper's default STAGG_BU configuration.
    pub fn bottom_up() -> StaggConfig {
        StaggConfig {
            mode: SearchMode::BottomUp,
            ..StaggConfig::top_down()
        }
    }

    /// Switches the grammar mode (builder style).
    pub fn with_grammar(mut self, grammar: GrammarMode) -> StaggConfig {
        self.grammar = grammar;
        self
    }

    /// Drops one penalty rule by name (`"a1"` … `"b2"`).
    pub fn drop_penalty(mut self, name: &str) -> StaggConfig {
        self.penalties = self.penalties.drop_rule(name);
        self
    }

    /// Drops a whole penalty family: `Drop(A)` disables a1–a5,
    /// `Drop(B)` disables b1–b2.
    ///
    /// # Panics
    ///
    /// Panics if `family` is not `"A"` or `"B"`.
    pub fn drop_family(mut self, family: &str) -> StaggConfig {
        match family {
            "A" => {
                for rule in ["a1", "a2", "a3", "a4", "a5"] {
                    self.penalties = self.penalties.drop_rule(rule);
                }
            }
            "B" => {
                for rule in ["b1", "b2"] {
                    self.penalties = self.penalties.drop_rule(rule);
                }
            }
            other => panic!("unknown penalty family `{other}`"),
        }
        self
    }

    /// Replaces the search budget.
    pub fn with_budget(mut self, budget: SearchBudget) -> StaggConfig {
        self.budget = budget;
        self
    }

    /// Sets the worker-thread count for the search stage (`1` =
    /// sequential; `0` is treated as `1`).
    pub fn with_jobs(mut self, jobs: usize) -> StaggConfig {
        self.jobs = jobs.max(1);
        self
    }

    /// Selects the oracle provider (builder style).
    pub fn with_oracle(mut self, oracle: OracleSpec) -> StaggConfig {
        self.oracle = oracle;
        self
    }

    /// Sets the maximum oracle rounds per lift (`0` is treated as `1`).
    pub fn with_oracle_rounds(mut self, rounds: usize) -> StaggConfig {
        self.oracle_rounds = rounds.max(1);
        self
    }

    /// Enables or disables candidate pre-pruning (builder style).
    pub fn with_pruning(mut self, pruning: bool) -> StaggConfig {
        self.pruning = pruning;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = StaggConfig::top_down()
            .with_grammar(GrammarMode::FullGrammar)
            .drop_penalty("a3");
        assert_eq!(c.grammar, GrammarMode::FullGrammar);
        assert!(!c.penalties.a3);
        assert!(c.penalties.a1);

        let b = StaggConfig::bottom_up().drop_family("B");
        assert_eq!(b.mode, SearchMode::BottomUp);
        assert!(!b.penalties.b1);
        assert!(!b.penalties.b2);
        assert!(b.penalties.a1, "dropping B leaves the a-family alone");

        let o = StaggConfig::top_down()
            .with_oracle(OracleSpec::Synthetic { seed: 9 })
            .with_oracle_rounds(0);
        assert_eq!(o.oracle, OracleSpec::Synthetic { seed: 9 });
        assert_eq!(o.oracle_rounds, 1, "0 rounds clamps to 1");
        assert_eq!(StaggConfig::top_down().oracle, OracleSpec::default());
    }

    #[test]
    fn cli_names_roundtrip() {
        for mode in [SearchMode::TopDown, SearchMode::BottomUp] {
            assert_eq!(SearchMode::from_cli_name(mode.cli_name()), Some(mode));
        }
        for grammar in [
            GrammarMode::Refined,
            GrammarMode::EqualProbability,
            GrammarMode::FullGrammar,
            GrammarMode::LlmGrammar,
        ] {
            assert_eq!(GrammarMode::from_cli_name(grammar.cli_name()), Some(grammar));
        }
        assert_eq!(SearchMode::from_cli_name("sideways"), None);
        assert_eq!(GrammarMode::from_cli_name("freeform"), None);
    }
}
