//! The outcome of one lifting run, with every statistic the paper's
//! tables report.

use std::time::Duration;

use gtl_search::StopReason;
use gtl_taco::TacoProgram;
use gtl_trace::PhaseTimes;

/// Why a lift produced no solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureReason {
    /// The oracle produced no syntactically usable candidate.
    NoUsableCandidates,
    /// The search space (after penalties) was exhausted.
    SearchExhausted,
    /// A search budget was hit before a solution appeared.
    BudgetExceeded,
    /// The query itself was malformed (task error).
    BadQuery(String),
    /// The caller cancelled the lift mid-search (client disconnect,
    /// request timeout, server shutdown).
    Cancelled,
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureReason::NoUsableCandidates => write!(f, "no usable LLM candidates"),
            FailureReason::SearchExhausted => write!(f, "template space exhausted"),
            FailureReason::BudgetExceeded => write!(f, "search budget exceeded"),
            FailureReason::BadQuery(m) => write!(f, "bad query: {m}"),
            FailureReason::Cancelled => write!(f, "lift cancelled"),
        }
    }
}

/// One oracle round's slice of a lift: what the oracle returned and
/// what the search did with it. `rounds.len() == 1` for single-shot
/// lifts; the failure loop appends one entry per re-query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleRoundStats {
    /// Round index (0 = the initial query).
    pub round: usize,
    /// Raw candidate lines the oracle returned this round.
    pub received: usize,
    /// Candidates that survived preprocessing/parsing/templatisation.
    pub parsed: usize,
    /// Complete templates sent to validation during this round's search.
    pub attempts: u64,
    /// Search-queue pops during this round's search.
    pub nodes_expanded: u64,
}

/// The report of one lifting run.
#[derive(Debug, Clone)]
pub struct LiftReport {
    /// Query label (benchmark name).
    pub label: String,
    /// The verified concrete TACO program, if lifting succeeded.
    pub solution: Option<TacoProgram>,
    /// The winning template (pre-substitution).
    pub template: Option<TacoProgram>,
    /// Why the run failed, when it did.
    pub failure: Option<FailureReason>,
    /// Complete templates sent to validation (the paper's "attempts").
    pub attempts: u64,
    /// Search-queue pops.
    pub nodes_expanded: u64,
    /// Substitutions instantiated across all validations.
    pub substitutions_tried: u64,
    /// Templates skipped before evaluation by the feasibility
    /// pre-checks (unconstrained output index, constant-only RHS
    /// against non-constant outputs).
    pub pruned_infeasible: u64,
    /// Templates skipped because an algebraically equivalent one had
    /// already been checked (canonical-fingerprint dedup, summed over
    /// the search engine's seen-set and the validation-layer set).
    pub pruned_equivalent: u64,
    /// Batched-evaluation shape groups that ran the unchecked integer
    /// fast path under an interval overflow proof.
    pub unchecked_kernels: u64,
    /// Candidates returned by the oracle.
    pub candidates_received: usize,
    /// Candidates that survived preprocessing/parsing/templatisation.
    pub candidates_parsed: usize,
    /// The predicted dimension list driving grammar refinement.
    pub dim_list: Vec<usize>,
    /// Per-round oracle statistics, in round order. The totals above
    /// (`candidates_received`, `attempts`, …) sum over these.
    pub rounds: Vec<OracleRoundStats>,
    /// End-to-end wall-clock time (oracle + analysis + grammar + search +
    /// validation + verification).
    pub elapsed: Duration,
    /// Time inside the search stage alone.
    pub search_elapsed: Duration,
    /// Per-phase time attribution (oracle, grammar learning, search,
    /// validation, verification; the serving layer adds store appends).
    /// With `jobs = 1` the pipeline phases partition `elapsed`; with
    /// parallel search, validation/verification report CPU time summed
    /// across workers, so the total can exceed wall clock. A wall-clock
    /// measurement, excluded from [`LiftReport::deterministic_eq`] like
    /// the other durations.
    pub phase_times: PhaseTimes,
}

impl LiftReport {
    /// Whether lifting succeeded.
    pub fn solved(&self) -> bool {
        self.solution.is_some()
    }

    /// End-to-end seconds (the unit the paper's tables use).
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }

    /// Whether two reports are identical in every deterministic field —
    /// everything except the wall-clock durations. This is the
    /// regression contract behind record→replay: a replayed lift must
    /// satisfy `deterministic_eq` with the recorded run's report.
    pub fn deterministic_eq(&self, other: &LiftReport) -> bool {
        self.label == other.label
            && self.solution == other.solution
            && self.template == other.template
            && self.failure == other.failure
            && self.attempts == other.attempts
            && self.nodes_expanded == other.nodes_expanded
            && self.substitutions_tried == other.substitutions_tried
            && self.pruned_infeasible == other.pruned_infeasible
            && self.pruned_equivalent == other.pruned_equivalent
            && self.unchecked_kernels == other.unchecked_kernels
            && self.candidates_received == other.candidates_received
            && self.candidates_parsed == other.candidates_parsed
            && self.dim_list == other.dim_list
            && self.rounds == other.rounds
    }

    pub(crate) fn failure_from_stop(stop: StopReason) -> Option<FailureReason> {
        match stop {
            StopReason::Solved => None,
            StopReason::Exhausted => Some(FailureReason::SearchExhausted),
            StopReason::BudgetExceeded => Some(FailureReason::BudgetExceeded),
            StopReason::Cancelled => Some(FailureReason::Cancelled),
        }
    }
}
