//! STAGG — Synthesis of Tensor Algebra Guided by Grammars.
//!
//! The paper's primary contribution: lifting legacy C tensor kernels to
//! TACO by combining LLM guesses with enumerative synthesis. The pipeline
//! (Fig. 1) is assembled from the workspace's substrate crates:
//!
//! | Stage | Paper | Crate |
//! |---|---|---|
//! | candidate generation | GPT-4, Prompt 1 | `gtl-oracle` |
//! | templatisation + pCFG learning | §4 | `gtl-template`, `gtl-grammar` |
//! | dimension prediction | §4.2.3 | `gtl-analysis` + LLM vote |
//! | template enumeration | §5 (Algorithms 1 & 2) | `gtl-search` |
//! | validation on I/O examples | §6 | `gtl-validate` |
//! | bounded verification | §7 | `gtl-verify` |
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! use gtl::{LiftQuery, Stagg, StaggConfig};
//! use gtl_cfront::parse_c;
//! use gtl_oracle::SyntheticOracle;
//! use gtl_taco::parse_program;
//! use gtl_validate::{LiftTask, TaskParam, TaskParamKind};
//!
//! let source = "void dot(int n, int *x, int *y, int *out) {
//!     *out = 0;
//!     for (int i = 0; i < n; i++) *out += x[i] * y[i];
//! }";
//! let prog = parse_c(source).unwrap();
//! let query = LiftQuery {
//!     label: "dot".into(),
//!     source: source.into(),
//!     task: LiftTask {
//!         func: prog.kernel().clone(),
//!         params: vec![
//!             TaskParam { name: "n".into(), kind: TaskParamKind::Size("n".into()) },
//!             TaskParam {
//!                 name: "x".into(),
//!                 kind: TaskParamKind::ArrayIn { dims: vec!["n".into()], nonzero: false },
//!             },
//!             TaskParam {
//!                 name: "y".into(),
//!                 kind: TaskParamKind::ArrayIn { dims: vec!["n".into()], nonzero: false },
//!             },
//!             TaskParam { name: "out".into(), kind: TaskParamKind::ArrayOut { dims: vec![] } },
//!         ],
//!         output: 3,
//!         constants: vec![0],
//!         ref_program: Default::default(),
//!     },
//!     ground_truth: Some(parse_program("out = x(i) * y(i)").unwrap()),
//! };
//! // A provider mints one oracle per lift; `Stagg` can be shared.
//! let stagg = Stagg::new(Arc::new(SyntheticOracle::default()), StaggConfig::top_down());
//! let report = stagg.lift(&query);
//! assert!(report.solved());
//! assert_eq!(report.solution.unwrap().to_string(), "out = x(i) * y(i)");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod pipeline;
mod report;

pub use config::{GrammarMode, SearchMode, StaggConfig};
pub use gtl_oracle::OracleSpec;
pub use gtl_trace::{Phase, PhaseTimes};
pub use pipeline::{LiftHooks, LiftObserver, LiftQuery, Stagg};
pub use report::{FailureReason, LiftReport, OracleRoundStats};
