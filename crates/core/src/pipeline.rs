//! The end-to-end STAGG pipeline (Fig. 1).
//!
//! ① Query the oracle for candidate solutions; ② templatise them and
//! learn a probabilistic grammar (refined by dimension prediction);
//! ③ enumerate the template space with weighted A\*; ④ validate complete
//! templates on I/O examples and verify survivors with the bounded
//! equivalence checker, looping back on failure. With
//! [`StaggConfig::oracle_rounds`] > 1 the loop-back is literal: a
//! failed search re-queries the oracle with feedback about the
//! candidates it already rejected, and the grammar is re-learned over
//! the accumulated candidate pool.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use gtl_analysis::analyze_kernel;
use gtl_oracle::{OracleFeedback, OracleProvider, OracleQuery};
use gtl_search::{
    parallel_bottom_up_search_hooked, parallel_top_down_search_hooked, CheckOutcome,
    ParallelOptions, PenaltyContext, SearchHooks, SearchOutcome,
};
use gtl_taco::{parse_program, preprocess_candidate, EvalCache, TacoProgram};
use gtl_trace::{Phase, PhaseCollector, PhaseSpan, PhaseTimes};
use gtl_template::{
    any_const, any_repeated_index, generate_bu_full_grammar, generate_bu_grammar,
    generate_td_full_grammar, generate_td_grammar, index_variable_count, learn_weights,
    overlay_lhs_dimension, predict_dimension_list, templatize, TdSpec, Template,
    TemplateGrammar,
};
use gtl_validate::{
    generate_examples, validate_template_cached, IoExample, LiftTask, SharedValidationStats,
    ValidationStats,
};
use gtl_verify::verify_candidate_cached;

use crate::config::{GrammarMode, SearchMode, StaggConfig};
use crate::report::{FailureReason, LiftReport, OracleRoundStats};

/// One lifting query: the legacy kernel plus the metadata the pipeline
/// and the synthetic oracle need.
#[derive(Debug, Clone)]
pub struct LiftQuery {
    /// Stable label (benchmark name) for seeding and reporting.
    pub label: String,
    /// The legacy C source (used in the prompt).
    pub source: String,
    /// The lifting task (kernel + shapes + constants).
    pub task: LiftTask,
    /// Optional ground-truth hint for the synthetic oracle. STAGG
    /// itself never reads it — it flows only into [`OracleQuery`], and
    /// replayed or scripted oracles work without it.
    pub ground_truth: Option<TacoProgram>,
}

/// Incremental observations of one running lift, for serving layers
/// that stream progress to clients.
///
/// Methods are called from search worker threads (hence the `Sync`
/// bound) while the lift is in flight; implementations should be quick
/// and must not block on the lift itself. All methods default to
/// no-ops, so observers implement only what they report.
pub trait LiftObserver: Sync {
    /// An oracle round-trip finished: `parsed` of `received` raw
    /// candidates survived preprocessing/parsing/templatisation. Fires
    /// once per oracle round.
    fn candidates(&self, received: usize, parsed: usize) {
        let _ = (received, parsed);
    }

    /// A concrete candidate passed every I/O example and is entering
    /// bounded verification. May fire several times per lift; the
    /// verified winner is reported by the final [`LiftReport`].
    fn validated(&self, concrete: &TacoProgram) {
        let _ = concrete;
    }
}

/// External attachments to one lift: an observer for incremental
/// events, search-level hooks (cancellation, live progress), and an
/// evaluation cache to reuse across lifts.
///
/// `LiftHooks::default()` attaches nothing — [`Stagg::lift`] is exactly
/// [`Stagg::lift_with`] under default hooks.
#[derive(Default)]
pub struct LiftHooks<'a> {
    /// Receives incremental pipeline events.
    pub observer: Option<&'a dyn LiftObserver>,
    /// Cancellation + live progress for the search stage. A raised
    /// cancel flag also short-circuits in-flight template checks.
    pub search: SearchHooks,
    /// A caller-owned [`EvalCache`] shared by every search worker of
    /// this lift and reusable across lifts (a serving worker keeps one
    /// per thread, so repeated kernels never recompile). `None` gives
    /// each search worker a private, per-lift cache.
    pub eval_cache: Option<&'a EvalCache>,
}

/// The STAGG lifter: an oracle *provider* plus a configuration.
///
/// The provider mints one fresh oracle per lift, so a single `Stagg`
/// can serve many lifts — concurrently, from shared references —
/// without any per-oracle borrow threading. Serving workers hold one
/// provider for their whole lifetime and share it across requests.
pub struct Stagg {
    provider: Arc<dyn OracleProvider>,
    config: StaggConfig,
}

/// A checker's evaluation cache: private and per-lift by default,
/// caller-provided (and shared across lifts) through
/// [`LiftHooks::eval_cache`].
enum CacheRef<'a> {
    Owned(Box<EvalCache>),
    Shared(&'a EvalCache),
}

impl CacheRef<'_> {
    fn get(&self) -> &EvalCache {
        match self {
            CacheRef::Owned(cache) => cache,
            CacheRef::Shared(cache) => cache,
        }
    }
}

/// How many rejected candidates a failed round hands back to the
/// oracle as feedback.
const FEEDBACK_CANDIDATES: usize = 8;

impl Stagg {
    /// Creates a lifter from an explicit provider. The provider wins
    /// over `config.oracle` (the spec is advisory here — it names what
    /// a config-driven caller would build).
    pub fn new(provider: Arc<dyn OracleProvider>, config: StaggConfig) -> Stagg {
        Stagg { provider, config }
    }

    /// Creates a lifter whose provider is built from
    /// [`StaggConfig::oracle`] — the one-line, spec-driven entry point.
    ///
    /// # Errors
    ///
    /// Returns a [`gtl_oracle::FixtureError`] when the spec names an
    /// unusable fixture (missing replay file, unwritable record path).
    pub fn from_config(config: StaggConfig) -> Result<Stagg, gtl_oracle::FixtureError> {
        let provider = config.oracle.provider()?;
        Ok(Stagg { provider, config })
    }

    /// The configuration this lifter runs with.
    pub fn config(&self) -> &StaggConfig {
        &self.config
    }

    /// Runs the full pipeline on one query.
    pub fn lift(&self, query: &LiftQuery) -> LiftReport {
        self.lift_with(query, &LiftHooks::default())
    }

    /// Runs the full pipeline on one query with external hooks attached:
    /// an observer for incremental events, a cancellation flag and live
    /// progress counters for the search stage, and an optional shared
    /// evaluation cache. See [`LiftHooks`].
    pub fn lift_with(&self, query: &LiftQuery, hooks: &LiftHooks<'_>) -> LiftReport {
        let started = Instant::now();
        let mut report = LiftReport {
            label: query.label.clone(),
            solution: None,
            template: None,
            failure: None,
            attempts: 0,
            nodes_expanded: 0,
            substitutions_tried: 0,
            pruned_infeasible: 0,
            pruned_equivalent: 0,
            unchecked_kernels: 0,
            candidates_received: 0,
            candidates_parsed: 0,
            dim_list: Vec::new(),
            rounds: Vec::new(),
            elapsed: started.elapsed(),
            search_elapsed: std::time::Duration::ZERO,
            phase_times: PhaseTimes::new(),
        };
        // Every stage below records its wall time here; the snapshot
        // lands on `report.phase_times` at both exit points.
        let phases = PhaseCollector::new();

        let mut oracle = self.provider.oracle();
        let rounds = self.config.oracle_rounds.max(1);
        // The candidate pool accumulates across rounds (duplicates
        // included — repetition is information for weight learning).
        let mut pool: Vec<Template> = Vec::new();
        let mut examples: Option<Vec<IoExample>> = None;
        let mut feedback: Option<OracleFeedback> = None;
        let mut searched = false;

        for round in 0..rounds {
            // ① Ask the oracle for candidate solutions (with feedback
            // about the previous round's failure, if any). The Oracle
            // phase covers the round trip plus preprocessing, parsing
            // and templatisation of the answers.
            let oracle_span = PhaseSpan::start(Some(&phases), Phase::Oracle);
            let raw = oracle.candidates_round(
                &OracleQuery {
                    label: &query.label,
                    c_source: &query.source,
                    ground_truth: query.ground_truth.as_ref(),
                },
                round,
                feedback.as_ref(),
            );
            let mut round_stats = OracleRoundStats {
                round,
                received: raw.len(),
                ..OracleRoundStats::default()
            };
            report.candidates_received += raw.len();

            // Parse and templatise; discard syntactically invalid
            // candidates.
            let fresh: Vec<Template> = raw
                .iter()
                .filter_map(|line| preprocess_candidate(line))
                .filter_map(|s| parse_program(&s).ok())
                .filter_map(|p| templatize(&p).ok())
                .collect();
            oracle_span.stop();
            round_stats.parsed = fresh.len();
            report.candidates_parsed += fresh.len();
            if let Some(observer) = hooks.observer {
                observer.candidates(raw.len(), fresh.len());
            }
            // A re-query that provably adds no information — nothing
            // parsed, or an exact repeat of the whole pool (uniform
            // duplication leaves the learned weight distribution
            // unchanged) — would re-run the identical deterministic
            // search; record the round and skip straight to the next
            // re-query instead of burning a full budget on it.
            if searched {
                let repeat_of_pool = !fresh.is_empty() && fresh.len() == pool.len() && {
                    let mut a: Vec<String> = fresh.iter().map(ToString::to_string).collect();
                    let mut b: Vec<String> = pool.iter().map(ToString::to_string).collect();
                    a.sort_unstable();
                    b.sort_unstable();
                    a == b
                };
                if fresh.is_empty() || repeat_of_pool {
                    report.rounds.push(round_stats);
                    // The previous failure (and its feedback) stand.
                    continue;
                }
            }
            pool.extend(fresh);
            if pool.is_empty() {
                report.failure = Some(FailureReason::NoUsableCandidates);
                report.rounds.push(round_stats);
                feedback = Some(OracleFeedback {
                    failed_candidates: Vec::new(),
                    reason: "no_usable_candidates".to_string(),
                });
                continue;
            }

            // ④'s prerequisite, generated once per lift: I/O examples
            // (attributed to Validate — they exist only to be validated
            // against).
            if examples.is_none() {
                let generated = {
                    let _span = PhaseSpan::start(Some(&phases), Phase::Validate);
                    generate_examples(&query.task, &self.config.examples)
                };
                match generated {
                    Ok(e) => examples = Some(e),
                    Err(e) => {
                        report.failure = Some(FailureReason::BadQuery(e.to_string()));
                        report.rounds.push(round_stats);
                        report.phase_times = phases.snapshot();
                        report.elapsed = started.elapsed();
                        return report;
                    }
                }
            }
            let examples = examples.as_ref().expect("examples generated above");

            let (outcome, rejected) = self.search_round(query, &pool, examples, hooks, &phases);
            searched = true;
            round_stats.attempts = outcome.attempts;
            round_stats.nodes_expanded = outcome.nodes_expanded;
            report.attempts += outcome.attempts;
            report.nodes_expanded += outcome.nodes_expanded;
            report.search_elapsed += outcome.elapsed;
            report.substitutions_tried += outcome.substitutions_tried;
            report.pruned_infeasible += outcome.pruned_infeasible;
            report.pruned_equivalent += outcome.pruned_equivalent;
            report.unchecked_kernels += outcome.unchecked_kernels;
            report.dim_list = outcome.dim_list;
            report.template = outcome.template;
            report.failure = LiftReport::failure_from_stop(outcome.stop);
            report.solution = outcome.solution;
            report.rounds.push(round_stats);

            if report.solution.is_some()
                || matches!(report.failure, Some(FailureReason::Cancelled))
            {
                break;
            }
            feedback = Some(OracleFeedback {
                failed_candidates: rejected,
                reason: report
                    .failure
                    .as_ref()
                    .map(|f| match f {
                        FailureReason::SearchExhausted => "search_exhausted",
                        FailureReason::BudgetExceeded => "budget_exceeded",
                        _ => "failed",
                    })
                    .unwrap_or("failed")
                    .to_string(),
            });
        }
        report.phase_times = phases.snapshot();
        report.elapsed = started.elapsed();
        report
    }

    /// Stages ② and ③ for one oracle round: grammar construction over
    /// the accumulated candidate pool, then search with validation +
    /// verification. Returns the search outcome (with the dimension
    /// list folded in) and a bounded sample of rejected candidates for
    /// oracle feedback.
    fn search_round(
        &self,
        query: &LiftQuery,
        pool: &[Template],
        examples: &[IoExample],
        hooks: &LiftHooks<'_>,
        phases: &PhaseCollector,
    ) -> (RoundOutcome, Vec<String>) {
        // ② Dimension prediction: LLM vote + static analysis for the
        // LHS. The GrammarLearn phase spans analysis, grammar
        // construction and probability learning.
        let grammar_span = PhaseSpan::start(Some(phases), Phase::GrammarLearn);
        let facts = analyze_kernel(&query.task.func);
        let voted = predict_dimension_list(pool).unwrap_or_default();
        let dim_list = overlay_lhs_dimension(voted, facts.lhs_dim);

        // Grammar construction + probability learning.
        let spec = TdSpec {
            dim_list: dim_list.clone(),
            n_indices: index_variable_count(pool).max(1),
            allow_repeated_index: any_repeated_index(pool),
            include_const: any_const(pool),
        };
        let mut grammar: TemplateGrammar = match (self.config.mode, self.config.grammar) {
            (SearchMode::TopDown, GrammarMode::Refined | GrammarMode::EqualProbability) => {
                generate_td_grammar(&spec)
            }
            (SearchMode::TopDown, GrammarMode::FullGrammar | GrammarMode::LlmGrammar) => {
                generate_td_full_grammar(
                    self.config.full_grammar_tensors,
                    self.config.full_grammar_max_dim,
                    facts.lhs_dim,
                )
            }
            (SearchMode::BottomUp, GrammarMode::Refined | GrammarMode::EqualProbability) => {
                generate_bu_grammar(&spec)
            }
            (SearchMode::BottomUp, GrammarMode::FullGrammar | GrammarMode::LlmGrammar) => {
                generate_bu_full_grammar(
                    self.config.full_grammar_tensors,
                    self.config.full_grammar_max_dim,
                    facts.lhs_dim,
                )
            }
        };
        match self.config.grammar {
            GrammarMode::Refined | GrammarMode::LlmGrammar => {
                learn_weights(&mut grammar, pool);
            }
            GrammarMode::EqualProbability | GrammarMode::FullGrammar => {
                grammar.pcfg.equalize_weights();
            }
        }
        grammar_span.stop();

        let ctx = PenaltyContext {
            dim_list: dim_list.clone(),
            grammar_has_const: grammar.nts.constant.is_some()
                || grammar.nts.dim_nts.contains_key(&0),
            live_ops: grammar.live_ops(),
            settings: self.config.penalties,
        };

        let task = &query.task;
        let verify_cfg = self.config.verify;
        let observer = hooks.observer;
        let cancel = hooks.search.cancel.clone();
        let pruning = self.config.pruning;
        // Feasibility fact shared by every checker this round: whether a
        // constant-filled output could even match the examples. A
        // constant-only RHS produces one value everywhere, so any
        // non-uniform example output refutes every such template at once.
        let outputs_uniform = {
            let mut vals = examples.iter().flat_map(|ex| ex.output.data().iter());
            match vals.next() {
                None => true,
                Some(first) => vals.all(|v| v == first),
            }
        };
        // Canonical fingerprints of templates already validated this
        // round. The parallel engine dedups equivalence classes in its
        // own seen-set before candidates reach a checker, so this set
        // only fires on the sequential path — no double counting.
        let seen_canonical: Mutex<std::collections::HashSet<u64>> =
            Mutex::new(std::collections::HashSet::new());
        // A bounded sample of rejected candidates, collected only when
        // a later round could use it as feedback.
        let collect_rejected = self.config.oracle_rounds.max(1) > 1;
        let rejected: Mutex<Vec<String>> = Mutex::new(Vec::new());

        // The one checking contract both engines share: validate the
        // template's substitutions on the examples, verify survivors.
        // Each checker routes every evaluation through an `EvalCache`, so
        // a template checked against N examples/substitutions compiles
        // once per shape signature, and the verifier reuses the same
        // compiled kernels. A raised external cancel flag short-circuits
        // the check, so cancellation is prompt even mid-validation.
        let check_template = |template: &TacoProgram,
                              stats: &mut ValidationStats,
                              cache: &EvalCache|
         -> CheckOutcome {
            // Phase accounting: the whole check is Validate time except
            // the slice spent inside the bounded verifier, which the
            // callback below measures into `verify_us`. Each worker
            // records wall time, so with `jobs > 1` these phases sum
            // CPU time across workers.
            let check_started = Instant::now();
            let verify_us = std::cell::Cell::new(0u64);
            let outcome = (|| -> CheckOutcome {
            if cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                return CheckOutcome::Failed;
            }
            if pruning {
                // Feasibility pre-checks, sound per construction: an LHS
                // index no RHS access mentions fails index analysis for
                // every substitution, and a constant-only RHS cannot
                // reproduce non-constant outputs. Either way validation
                // would reject every substitution — skip it. Pruned
                // templates fail exactly as validation would, so the
                // run's outcome (and attempt count) is unchanged.
                let rhs_accesses = template.rhs.accesses();
                let unconstrained = template
                    .lhs
                    .indices
                    .iter()
                    .any(|ix| !rhs_accesses.iter().any(|acc| acc.indices.contains(ix)));
                if unconstrained || (rhs_accesses.is_empty() && !outputs_uniform) {
                    stats.pruned_infeasible += 1;
                    return CheckOutcome::Failed;
                }
                // Equivalence: templates with equal canonical
                // fingerprints enumerate identical substitution sets, so
                // re-validating one is pure waste.
                if !seen_canonical
                    .lock()
                    .expect("canonical set poisoned")
                    .insert(gtl_taco::canonical_fingerprint(template))
                {
                    stats.pruned_equivalent += 1;
                    return CheckOutcome::Failed;
                }
            }
            match validate_template_cached(
                template,
                task,
                examples,
                |concrete, _sub| {
                    if let Some(observer) = observer {
                        observer.validated(concrete);
                    }
                    let verify_started = Instant::now();
                    let equivalent =
                        verify_candidate_cached(task, concrete, &verify_cfg, cache).is_equivalent();
                    let us = verify_started.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    verify_us.set(verify_us.get().saturating_add(us));
                    equivalent
                },
                stats,
                cache,
            ) {
                Some(concrete) => CheckOutcome::Verified(concrete),
                None => {
                    if collect_rejected {
                        let mut sample = rejected.lock().expect("feedback sample poisoned");
                        if sample.len() < FEEDBACK_CANDIDATES {
                            sample.push(template.to_string());
                        }
                    }
                    CheckOutcome::Failed
                }
            }
            })();
            let check_us = check_started.elapsed().as_micros().min(u64::MAX as u128) as u64;
            if verify_us.get() > 0 {
                phases.add(Phase::Verify, verify_us.get());
            }
            phases.add(Phase::Validate, check_us.saturating_sub(verify_us.get()));
            outcome
        };

        // ③ Search. `jobs = 1` (the default) delegates to the hooked
        // sequential loop — bit-identical pop order to the paper
        // artifact — while `jobs > 1` runs the parallel engine with one
        // private checker per worker; both paths accumulate validation
        // statistics in the shared atomic counters and honour the
        // caller's cancellation/progress hooks.
        let opts = ParallelOptions::with_jobs(self.config.jobs);
        let shared_stats = SharedValidationStats::default();
        // Search time is the engine's wall clock minus whatever the
        // checkers attributed to validation/verification meanwhile —
        // exact with `jobs = 1`, a saturating lower bound with parallel
        // workers (whose check time is CPU time, not wall time).
        let inner_before =
            phases.micros(Phase::Validate).saturating_add(phases.micros(Phase::Verify));
        let outcome: SearchOutcome = {
            let shared = &shared_stats;
            let check_template = &check_template;
            let external_cache = hooks.eval_cache;
            let make_checker = move |_worker: usize| {
                // One private cache per worker (no contention on the hot
                // path), unless the caller supplied a longer-lived one —
                // `EvalCache` is sharded and thread-safe, so sharing is
                // sound and lets compilations amortise across lifts.
                let cache = match external_cache {
                    Some(shared_cache) => CacheRef::Shared(shared_cache),
                    None => CacheRef::Owned(Box::default()),
                };
                move |template: &TacoProgram| -> CheckOutcome {
                    let mut local = ValidationStats::default();
                    let result = check_template(template, &mut local, cache.get());
                    shared.add(&local);
                    result
                }
            };
            match self.config.mode {
                SearchMode::TopDown => parallel_top_down_search_hooked(
                    &grammar,
                    &ctx,
                    self.config.budget,
                    opts,
                    &hooks.search,
                    make_checker,
                ),
                SearchMode::BottomUp => parallel_bottom_up_search_hooked(
                    &grammar,
                    &ctx,
                    self.config.budget,
                    opts,
                    &hooks.search,
                    make_checker,
                ),
            }
        };
        let inner_during = phases
            .micros(Phase::Validate)
            .saturating_add(phases.micros(Phase::Verify))
            .saturating_sub(inner_before);
        let engine_us = outcome.elapsed.as_micros().min(u64::MAX as u128) as u64;
        phases.add(Phase::Search, engine_us.saturating_sub(inner_during));
        let snap = shared_stats.snapshot();
        (
            RoundOutcome {
                attempts: outcome.attempts,
                nodes_expanded: outcome.nodes_expanded,
                elapsed: outcome.elapsed,
                substitutions_tried: snap.substitutions_tried,
                pruned_infeasible: snap.pruned_infeasible,
                // Equivalents are pruned at two disjoint layers: the
                // parallel engine's seen-set (before a checker sees the
                // candidate) and the checker-level set (sequential path).
                pruned_equivalent: snap.pruned_equivalent + outcome.pruned_equivalent,
                unchecked_kernels: snap.unchecked_kernels,
                dim_list,
                template: outcome.template,
                solution: outcome.solution,
                stop: outcome.stop,
            },
            rejected.into_inner().expect("feedback sample poisoned"),
        )
    }
}

/// One round's search result plus the round-scoped analysis artefacts
/// the report records.
struct RoundOutcome {
    attempts: u64,
    nodes_expanded: u64,
    elapsed: std::time::Duration,
    substitutions_tried: u64,
    pruned_infeasible: u64,
    pruned_equivalent: u64,
    unchecked_kernels: u64,
    dim_list: Vec<usize>,
    template: Option<TacoProgram>,
    solution: Option<TacoProgram>,
    stop: gtl_search::StopReason,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_cfront::parse_c;
    use gtl_oracle::{Oracle, ScriptedOracle, SyntheticOracle};
    use gtl_validate::{TaskParam, TaskParamKind};

    /// The Fig. 2 query, built by hand (the benchsuite version is used in
    /// the integration tests).
    fn figure2_query() -> LiftQuery {
        let source = "void function(int N, int *Mat1, int *Mat2, int *Result) {
            int *p_m1;
            int *p_m2;
            int *p_t;
            int i, f;
            p_m1 = Mat1;
            p_t = Result;
            for (f = 0; f < N; f++) {
                *p_t = 0;
                p_m2 = &Mat2[0];
                for (i = 0; i < N; i++)
                    *p_t += *p_m1++ * *p_m2++;
                p_t++;
            }
        }";
        let prog = parse_c(source).unwrap();
        LiftQuery {
            label: "figure2".into(),
            source: source.into(),
            task: LiftTask {
                func: prog.kernel().clone(),
                params: vec![
                    TaskParam {
                        name: "N".into(),
                        kind: TaskParamKind::Size("N".into()),
                    },
                    TaskParam {
                        name: "Mat1".into(),
                        kind: TaskParamKind::ArrayIn {
                            dims: vec!["N".into(), "N".into()],
                            nonzero: false,
                        },
                    },
                    TaskParam {
                        name: "Mat2".into(),
                        kind: TaskParamKind::ArrayIn {
                            dims: vec!["N".into()],
                            nonzero: false,
                        },
                    },
                    TaskParam {
                        name: "Result".into(),
                        kind: TaskParamKind::ArrayOut {
                            dims: vec!["N".into()],
                        },
                    },
                ],
                output: 3,
                constants: vec![0],
                ref_program: Default::default(),
            },
            ground_truth: Some(parse_program("Result(i) = Mat1(i,j) * Mat2(j)").unwrap()),
        }
    }

    fn paper_provider() -> Arc<dyn OracleProvider> {
        Arc::new(ScriptedOracle::new().with_paper_response_1("figure2"))
    }

    #[test]
    fn lifts_figure2_with_paper_response() {
        // The paper's own Response 1 drives the grammar; none of its
        // candidates is exactly right, yet STAGG finds the solution.
        let query = figure2_query();
        let stagg = Stagg::new(paper_provider(), StaggConfig::top_down());
        let report = stagg.lift(&query);
        assert!(report.solved(), "failure: {:?}", report.failure);
        assert_eq!(
            report.solution.unwrap().to_string(),
            "Result(i) = Mat1(i,j) * Mat2(j)"
        );
        assert_eq!(report.dim_list, vec![1, 2, 1]);
        assert_eq!(report.candidates_parsed, 3, "sum(...) line discarded");
        assert_eq!(report.rounds.len(), 1, "single-shot lift is one round");
        assert_eq!(report.rounds[0].received, report.candidates_received);
        assert_eq!(report.rounds[0].attempts, report.attempts);
    }

    #[test]
    fn bottom_up_lifts_figure2() {
        let query = figure2_query();
        let stagg = Stagg::new(paper_provider(), StaggConfig::bottom_up());
        let report = stagg.lift(&query);
        assert!(report.solved(), "failure: {:?}", report.failure);
    }

    #[test]
    fn synthetic_oracle_end_to_end() {
        let query = figure2_query();
        let stagg = Stagg::new(Arc::new(SyntheticOracle::default()), StaggConfig::top_down());
        let report = stagg.lift(&query);
        assert!(report.solved(), "failure: {:?}", report.failure);
        assert!(report.attempts >= 1);
    }

    #[test]
    fn from_config_matches_explicit_provider() {
        // The spec-driven constructor is the same lift as handing the
        // provider over explicitly — the new-API regression contract.
        let query = figure2_query();
        let by_spec = Stagg::from_config(StaggConfig::top_down())
            .expect("synthetic spec always builds")
            .lift(&query);
        let by_provider =
            Stagg::new(Arc::new(SyntheticOracle::default()), StaggConfig::top_down())
                .lift(&query);
        assert!(by_spec.deterministic_eq(&by_provider));
    }

    #[test]
    fn one_stagg_serves_many_lifts_without_mut() {
        // The provider redesign's point: `lift` takes `&self`, so one
        // lifter instance serves repeated (and concurrent) lifts.
        let query = figure2_query();
        let stagg = Stagg::new(paper_provider(), StaggConfig::top_down());
        let first = stagg.lift(&query);
        let second = stagg.lift(&query);
        assert!(first.deterministic_eq(&second), "lifts must be independent");
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let stagg = &stagg;
                let query = &query;
                scope.spawn(move || assert!(stagg.lift(query).solved()));
            }
        });
    }

    /// An oracle that answers nothing on round 0 and the paper response
    /// on round 1 — exercising the failure loop.
    #[derive(Clone)]
    struct SecondRoundOracle;

    impl Oracle for SecondRoundOracle {
        fn candidates(&mut self, _query: &OracleQuery<'_>) -> Vec<String> {
            Vec::new()
        }

        fn candidates_round(
            &mut self,
            query: &OracleQuery<'_>,
            round: usize,
            feedback: Option<&OracleFeedback>,
        ) -> Vec<String> {
            match round {
                0 => Vec::new(),
                _ => {
                    let fb = feedback.expect("round 1 must carry feedback");
                    assert_eq!(fb.reason, "no_usable_candidates");
                    let mut inner =
                        ScriptedOracle::new().with_paper_response_1(query.label);
                    inner.candidates(query)
                }
            }
        }
    }

    impl OracleProvider for SecondRoundOracle {
        fn name(&self) -> &str {
            "second-round"
        }

        fn oracle(&self) -> Box<dyn Oracle> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn failure_loop_requeries_with_feedback() {
        let query = figure2_query();
        // One round: the empty first answer is terminal.
        let single = Stagg::new(Arc::new(SecondRoundOracle), StaggConfig::top_down());
        let report = single.lift(&query);
        assert_eq!(report.failure, Some(FailureReason::NoUsableCandidates));

        // Two rounds: the loop re-queries and the second answer solves.
        let config = StaggConfig::top_down().with_oracle_rounds(2);
        let looped = Stagg::new(Arc::new(SecondRoundOracle), config);
        let report = looped.lift(&query);
        assert!(report.solved(), "failure: {:?}", report.failure);
        assert_eq!(report.rounds.len(), 2);
        assert_eq!(report.rounds[0].received, 0);
        assert!(report.rounds[1].parsed > 0);
        assert_eq!(
            report.candidates_received,
            report.rounds.iter().map(|r| r.received).sum::<usize>()
        );
    }

    #[test]
    fn information_free_rounds_skip_the_search() {
        // An oracle that repeats the same (unsolvable) answer every
        // round adds no information: the grammar and weights are
        // unchanged, so rounds after the first must not re-run the
        // identical deterministic search.
        let query = figure2_query();
        let provider: Arc<dyn OracleProvider> = Arc::new(
            // Rank-1-only candidate: the refined grammar it induces
            // cannot express Fig. 2's matrix, so the search exhausts.
            ScriptedOracle::new().script("figure2", &["r(i) = m1(i) + m2(i)"]),
        );
        let config = StaggConfig::top_down().with_oracle_rounds(3);
        let report = Stagg::new(provider, config).lift(&query);
        assert!(!report.solved());
        assert_eq!(report.rounds.len(), 3, "every round is recorded");
        assert!(report.rounds[0].attempts > 0, "round 0 searches");
        assert_eq!(report.rounds[1].attempts, 0, "repeat round skips");
        assert_eq!(report.rounds[2].attempts, 0, "repeat round skips");
        assert_eq!(report.attempts, report.rounds[0].attempts);
    }

    #[test]
    fn extra_rounds_do_not_change_a_solved_lift() {
        // A lift that solves in round 0 never re-queries: the report is
        // bit-identical whatever the round allowance.
        let query = figure2_query();
        let one = Stagg::new(paper_provider(), StaggConfig::top_down()).lift(&query);
        let many = Stagg::new(
            paper_provider(),
            StaggConfig::top_down().with_oracle_rounds(5),
        )
        .lift(&query);
        assert!(one.deterministic_eq(&many));
        assert_eq!(many.rounds.len(), 1);
    }

    #[test]
    fn parallel_jobs_lift_figure2_with_matching_classification() {
        let query = figure2_query();
        let run = |jobs: usize| {
            let cfg = StaggConfig::top_down().with_jobs(jobs);
            Stagg::new(paper_provider(), cfg).lift(&query)
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.solved(), par.solved(), "classification must agree");
        assert!(par.solved(), "parallel failure: {:?}", par.failure);
        // Both solutions must verify against the legacy kernel (they may
        // be distinct but semantically equivalent programs).
        let outcome = gtl_verify::verify_candidate(
            &query.task,
            par.solution.as_ref().unwrap(),
            &StaggConfig::top_down().verify,
        );
        assert!(outcome.is_equivalent());
        assert!(par.substitutions_tried >= 1, "shared stats must flow back");
    }

    #[test]
    fn hooks_observer_and_shared_cache_flow_through() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[derive(Default)]
        struct Counting {
            candidates: AtomicUsize,
            validated: AtomicUsize,
        }
        impl LiftObserver for Counting {
            fn candidates(&self, received: usize, parsed: usize) {
                assert!(parsed <= received);
                self.candidates.fetch_add(1, Ordering::SeqCst);
            }
            fn validated(&self, _concrete: &gtl_taco::TacoProgram) {
                self.validated.fetch_add(1, Ordering::SeqCst);
            }
        }

        let query = figure2_query();
        let observer = Counting::default();
        let cache = gtl_taco::EvalCache::default();
        let hooks = LiftHooks {
            observer: Some(&observer),
            search: Default::default(),
            eval_cache: Some(&cache),
        };
        let report =
            Stagg::new(paper_provider(), StaggConfig::top_down()).lift_with(&query, &hooks);
        assert!(report.solved(), "failure: {:?}", report.failure);
        assert_eq!(observer.candidates.load(Ordering::SeqCst), 1);
        assert!(
            observer.validated.load(Ordering::SeqCst) >= 1,
            "the winning candidate must have been observed entering verification"
        );
        let stats = cache.stats();
        assert!(
            stats.hits + stats.misses > 0,
            "the caller's cache must have served the lift"
        );
    }

    #[test]
    fn pre_cancelled_lift_reports_cancelled() {
        use gtl_search::{CancelFlag, SearchHooks};

        let query = figure2_query();
        let cancel = Arc::new(CancelFlag::new());
        cancel.cancel();
        let hooks = LiftHooks {
            observer: None,
            search: SearchHooks::with_cancel(cancel),
            eval_cache: None,
        };
        let report =
            Stagg::new(paper_provider(), StaggConfig::top_down()).lift_with(&query, &hooks);
        assert!(!report.solved());
        assert_eq!(report.failure, Some(FailureReason::Cancelled));
    }

    #[test]
    fn cancelled_lift_never_requeries() {
        use gtl_search::{CancelFlag, SearchHooks};

        let query = figure2_query();
        let cancel = Arc::new(CancelFlag::new());
        cancel.cancel();
        let hooks = LiftHooks {
            observer: None,
            search: SearchHooks::with_cancel(cancel),
            eval_cache: None,
        };
        let config = StaggConfig::top_down().with_oracle_rounds(4);
        let report = Stagg::new(paper_provider(), config).lift_with(&query, &hooks);
        assert_eq!(report.failure, Some(FailureReason::Cancelled));
        assert_eq!(report.rounds.len(), 1, "cancellation must stop the loop");
    }

    #[test]
    fn empty_oracle_fails_gracefully() {
        let query = figure2_query();
        let provider: Arc<dyn OracleProvider> = Arc::new(ScriptedOracle::new());
        let stagg = Stagg::new(provider, StaggConfig::top_down());
        let report = stagg.lift(&query);
        assert!(!report.solved());
        assert_eq!(report.failure, Some(FailureReason::NoUsableCandidates));
    }

    #[test]
    fn phase_times_partition_the_lift() {
        // With `jobs = 1` the phases partition the wall clock: no phase
        // can exceed `elapsed`, the sum stays within it, and the
        // pipeline phases together account for (nearly) all of it — the
        // observability tier's ≥90 % coverage contract.
        let query = figure2_query();
        let report = Stagg::new(paper_provider(), StaggConfig::top_down()).lift(&query);
        assert!(report.solved(), "failure: {:?}", report.failure);
        let wall_us = report.elapsed.as_micros() as u64;
        let times = &report.phase_times;
        assert!(!times.is_empty(), "phases must be recorded");
        assert!(times.get(Phase::Search) > 0, "search must be attributed");
        assert!(times.get(Phase::Validate) > 0, "validation must be attributed");
        assert_eq!(times.get(Phase::StoreAppend), 0, "no store below the serving tier");
        assert!(
            times.total_us() <= wall_us,
            "phases over-count: {} us attributed, {wall_us} us measured",
            times.total_us()
        );
        assert!(
            times.total_us() * 10 >= wall_us * 9,
            "phases account for <90% of the lift: {} of {wall_us} us",
            times.total_us()
        );
    }

    #[test]
    fn bad_query_snapshot_still_carries_phase_times() {
        // The early-return path (example generation fails) must not
        // lose the oracle time already spent.
        let mut query = figure2_query();
        // An array dimension with no size binding fails instantiation.
        query.task.params[1].kind = TaskParamKind::ArrayIn {
            dims: vec!["M".into()],
            nonzero: false,
        };
        let report = Stagg::new(paper_provider(), StaggConfig::top_down()).lift(&query);
        assert!(matches!(report.failure, Some(FailureReason::BadQuery(_))));
        assert!(report.phase_times.get(Phase::Oracle) > 0 || report.elapsed.is_zero());
    }

    #[test]
    fn full_grammar_also_solves_simple_query() {
        let query = figure2_query();
        let cfg = StaggConfig::top_down().with_grammar(GrammarMode::FullGrammar);
        let stagg = Stagg::new(paper_provider(), cfg);
        let report = stagg.lift(&query);
        assert!(report.solved(), "failure: {:?}", report.failure);
    }
}
