//! The end-to-end STAGG pipeline (Fig. 1).
//!
//! ① Query the oracle for candidate solutions; ② templatise them and
//! learn a probabilistic grammar (refined by dimension prediction);
//! ③ enumerate the template space with weighted A\*; ④ validate complete
//! templates on I/O examples and verify survivors with the bounded
//! equivalence checker, looping back on failure.

use std::time::Instant;

use gtl_analysis::analyze_kernel;
use gtl_oracle::{Oracle, OracleQuery};
use gtl_search::{
    parallel_bottom_up_search_hooked, parallel_top_down_search_hooked, CheckOutcome,
    ParallelOptions, PenaltyContext, SearchHooks, SearchOutcome,
};
use gtl_taco::{parse_program, preprocess_candidate, EvalCache, TacoProgram};
use gtl_template::{
    any_const, any_repeated_index, generate_bu_full_grammar, generate_bu_grammar,
    generate_td_full_grammar, generate_td_grammar, index_variable_count, learn_weights,
    overlay_lhs_dimension, predict_dimension_list, templatize, TdSpec, Template,
    TemplateGrammar,
};
use gtl_validate::{
    generate_examples, validate_template_cached, IoExample, LiftTask, SharedValidationStats,
    ValidationStats,
};
use gtl_verify::verify_candidate_cached;

use crate::config::{GrammarMode, SearchMode, StaggConfig};
use crate::report::{FailureReason, LiftReport};

/// One lifting query: the legacy kernel plus the metadata the pipeline
/// and the synthetic oracle need.
#[derive(Debug, Clone)]
pub struct LiftQuery {
    /// Stable label (benchmark name) for seeding and reporting.
    pub label: String,
    /// The legacy C source (used in the prompt).
    pub source: String,
    /// The lifting task (kernel + shapes + constants).
    pub task: LiftTask,
    /// Ground truth for the synthetic oracle. STAGG itself never reads
    /// this — it flows only into [`OracleQuery`].
    pub ground_truth: TacoProgram,
}

/// Incremental observations of one running lift, for serving layers
/// that stream progress to clients.
///
/// Methods are called from search worker threads (hence the `Sync`
/// bound) while the lift is in flight; implementations should be quick
/// and must not block on the lift itself. All methods default to
/// no-ops, so observers implement only what they report.
pub trait LiftObserver: Sync {
    /// The oracle round-trip finished: `parsed` of `received` raw
    /// candidates survived preprocessing/parsing/templatisation.
    fn candidates(&self, received: usize, parsed: usize) {
        let _ = (received, parsed);
    }

    /// A concrete candidate passed every I/O example and is entering
    /// bounded verification. May fire several times per lift; the
    /// verified winner is reported by the final [`LiftReport`].
    fn validated(&self, concrete: &TacoProgram) {
        let _ = concrete;
    }
}

/// External attachments to one lift: an observer for incremental
/// events, search-level hooks (cancellation, live progress), and an
/// evaluation cache to reuse across lifts.
///
/// `LiftHooks::default()` attaches nothing — [`Stagg::lift`] is exactly
/// [`Stagg::lift_with`] under default hooks.
#[derive(Default)]
pub struct LiftHooks<'a> {
    /// Receives incremental pipeline events.
    pub observer: Option<&'a dyn LiftObserver>,
    /// Cancellation + live progress for the search stage. A raised
    /// cancel flag also short-circuits in-flight template checks.
    pub search: SearchHooks,
    /// A caller-owned [`EvalCache`] shared by every search worker of
    /// this lift and reusable across lifts (a serving worker keeps one
    /// per thread, so repeated kernels never recompile). `None` gives
    /// each search worker a private, per-lift cache.
    pub eval_cache: Option<&'a EvalCache>,
}

/// The STAGG lifter: an oracle plus a configuration.
pub struct Stagg<'o> {
    oracle: &'o mut dyn Oracle,
    config: StaggConfig,
}

/// A checker's evaluation cache: private and per-lift by default,
/// caller-provided (and shared across lifts) through
/// [`LiftHooks::eval_cache`].
enum CacheRef<'a> {
    Owned(Box<EvalCache>),
    Shared(&'a EvalCache),
}

impl CacheRef<'_> {
    fn get(&self) -> &EvalCache {
        match self {
            CacheRef::Owned(cache) => cache,
            CacheRef::Shared(cache) => cache,
        }
    }
}

impl<'o> Stagg<'o> {
    /// Creates a lifter.
    pub fn new(oracle: &'o mut dyn Oracle, config: StaggConfig) -> Stagg<'o> {
        Stagg { oracle, config }
    }

    /// Runs the full pipeline on one query.
    pub fn lift(&mut self, query: &LiftQuery) -> LiftReport {
        self.lift_with(query, &LiftHooks::default())
    }

    /// Runs the full pipeline on one query with external hooks attached:
    /// an observer for incremental events, a cancellation flag and live
    /// progress counters for the search stage, and an optional shared
    /// evaluation cache. See [`LiftHooks`].
    pub fn lift_with(&mut self, query: &LiftQuery, hooks: &LiftHooks<'_>) -> LiftReport {
        let started = Instant::now();
        let mut report = LiftReport {
            label: query.label.clone(),
            solution: None,
            template: None,
            failure: None,
            attempts: 0,
            nodes_expanded: 0,
            substitutions_tried: 0,
            candidates_received: 0,
            candidates_parsed: 0,
            dim_list: Vec::new(),
            elapsed: started.elapsed(),
            search_elapsed: std::time::Duration::ZERO,
        };

        // ① Ask the LLM for candidate solutions.
        let raw = self.oracle.candidates(&OracleQuery {
            label: &query.label,
            c_source: &query.source,
            ground_truth: &query.ground_truth,
        });
        report.candidates_received = raw.len();

        // Parse and templatise; discard syntactically invalid candidates.
        let templates: Vec<Template> = raw
            .iter()
            .filter_map(|line| preprocess_candidate(line))
            .filter_map(|s| parse_program(&s).ok())
            .filter_map(|p| templatize(&p).ok())
            .collect();
        report.candidates_parsed = templates.len();
        if let Some(observer) = hooks.observer {
            observer.candidates(report.candidates_received, report.candidates_parsed);
        }
        if templates.is_empty() {
            report.failure = Some(FailureReason::NoUsableCandidates);
            report.elapsed = started.elapsed();
            return report;
        }

        // ② Dimension prediction: LLM vote + static analysis for the LHS.
        let facts = analyze_kernel(&query.task.func);
        let voted = predict_dimension_list(&templates).unwrap_or_default();
        let dim_list = overlay_lhs_dimension(voted, facts.lhs_dim);
        report.dim_list = dim_list.clone();

        // Grammar construction + probability learning.
        let spec = TdSpec {
            dim_list: dim_list.clone(),
            n_indices: index_variable_count(&templates).max(1),
            allow_repeated_index: any_repeated_index(&templates),
            include_const: any_const(&templates),
        };
        let mut grammar: TemplateGrammar = match (self.config.mode, self.config.grammar) {
            (SearchMode::TopDown, GrammarMode::Refined | GrammarMode::EqualProbability) => {
                generate_td_grammar(&spec)
            }
            (SearchMode::TopDown, GrammarMode::FullGrammar | GrammarMode::LlmGrammar) => {
                generate_td_full_grammar(
                    self.config.full_grammar_tensors,
                    self.config.full_grammar_max_dim,
                    facts.lhs_dim,
                )
            }
            (SearchMode::BottomUp, GrammarMode::Refined | GrammarMode::EqualProbability) => {
                generate_bu_grammar(&spec)
            }
            (SearchMode::BottomUp, GrammarMode::FullGrammar | GrammarMode::LlmGrammar) => {
                generate_bu_full_grammar(
                    self.config.full_grammar_tensors,
                    self.config.full_grammar_max_dim,
                    facts.lhs_dim,
                )
            }
        };
        match self.config.grammar {
            GrammarMode::Refined | GrammarMode::LlmGrammar => {
                learn_weights(&mut grammar, &templates);
            }
            GrammarMode::EqualProbability | GrammarMode::FullGrammar => {
                grammar.pcfg.equalize_weights();
            }
        }

        let ctx = PenaltyContext {
            dim_list: dim_list.clone(),
            grammar_has_const: grammar.nts.constant.is_some()
                || grammar
                    .nts
                    .dim_nts
                    .contains_key(&0),
            live_ops: grammar.live_ops(),
            settings: self.config.penalties,
        };

        // ④'s ingredients: I/O examples once per query, then the
        // validate+verify closure used for every complete template.
        let examples: Vec<IoExample> =
            match generate_examples(&query.task, &self.config.examples) {
                Ok(e) => e,
                Err(e) => {
                    report.failure = Some(FailureReason::BadQuery(e.to_string()));
                    report.elapsed = started.elapsed();
                    return report;
                }
            };
        let task = &query.task;
        let verify_cfg = self.config.verify;
        let observer = hooks.observer;
        let cancel = hooks.search.cancel.clone();

        // The one checking contract both engines share: validate the
        // template's substitutions on the examples, verify survivors.
        // Each checker routes every evaluation through an `EvalCache`, so
        // a template checked against N examples/substitutions compiles
        // once per shape signature, and the verifier reuses the same
        // compiled kernels. A raised external cancel flag short-circuits
        // the check, so cancellation is prompt even mid-validation.
        let check_template = |template: &TacoProgram,
                              stats: &mut ValidationStats,
                              cache: &EvalCache|
         -> CheckOutcome {
            if cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                return CheckOutcome::Failed;
            }
            match validate_template_cached(
                template,
                task,
                &examples,
                |concrete, _sub| {
                    if let Some(observer) = observer {
                        observer.validated(concrete);
                    }
                    verify_candidate_cached(task, concrete, &verify_cfg, cache).is_equivalent()
                },
                stats,
                cache,
            ) {
                Some(concrete) => CheckOutcome::Verified(concrete),
                None => CheckOutcome::Failed,
            }
        };

        // ③ Search. `jobs = 1` (the default) delegates to the hooked
        // sequential loop — bit-identical pop order to the paper
        // artifact — while `jobs > 1` runs the parallel engine with one
        // private checker per worker; both paths accumulate validation
        // statistics in the shared atomic counters and honour the
        // caller's cancellation/progress hooks.
        let opts = ParallelOptions::with_jobs(self.config.jobs);
        let shared_stats = SharedValidationStats::default();
        let outcome: SearchOutcome = {
            let shared = &shared_stats;
            let check_template = &check_template;
            let external_cache = hooks.eval_cache;
            let make_checker = move |_worker: usize| {
                // One private cache per worker (no contention on the hot
                // path), unless the caller supplied a longer-lived one —
                // `EvalCache` is sharded and thread-safe, so sharing is
                // sound and lets compilations amortise across lifts.
                let cache = match external_cache {
                    Some(shared_cache) => CacheRef::Shared(shared_cache),
                    None => CacheRef::Owned(Box::default()),
                };
                move |template: &TacoProgram| -> CheckOutcome {
                    let mut local = ValidationStats::default();
                    let result = check_template(template, &mut local, cache.get());
                    shared.add(&local);
                    result
                }
            };
            match self.config.mode {
                SearchMode::TopDown => parallel_top_down_search_hooked(
                    &grammar,
                    &ctx,
                    self.config.budget,
                    opts,
                    &hooks.search,
                    make_checker,
                ),
                SearchMode::BottomUp => parallel_bottom_up_search_hooked(
                    &grammar,
                    &ctx,
                    self.config.budget,
                    opts,
                    &hooks.search,
                    make_checker,
                ),
            }
        };
        let vstats = shared_stats.snapshot();

        report.attempts = outcome.attempts;
        report.nodes_expanded = outcome.nodes_expanded;
        report.search_elapsed = outcome.elapsed;
        report.substitutions_tried = vstats.substitutions_tried;
        report.template = outcome.template.clone();
        report.failure = LiftReport::failure_from_stop(outcome.stop);
        report.solution = outcome.solution;
        report.elapsed = started.elapsed();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_cfront::parse_c;
    use gtl_oracle::{ScriptedOracle, SyntheticOracle};
    use gtl_validate::{TaskParam, TaskParamKind};

    /// The Fig. 2 query, built by hand (the benchsuite version is used in
    /// the integration tests).
    fn figure2_query() -> LiftQuery {
        let source = "void function(int N, int *Mat1, int *Mat2, int *Result) {
            int *p_m1;
            int *p_m2;
            int *p_t;
            int i, f;
            p_m1 = Mat1;
            p_t = Result;
            for (f = 0; f < N; f++) {
                *p_t = 0;
                p_m2 = &Mat2[0];
                for (i = 0; i < N; i++)
                    *p_t += *p_m1++ * *p_m2++;
                p_t++;
            }
        }";
        let prog = parse_c(source).unwrap();
        LiftQuery {
            label: "figure2".into(),
            source: source.into(),
            task: LiftTask {
                func: prog.kernel().clone(),
                params: vec![
                    TaskParam {
                        name: "N".into(),
                        kind: TaskParamKind::Size("N".into()),
                    },
                    TaskParam {
                        name: "Mat1".into(),
                        kind: TaskParamKind::ArrayIn {
                            dims: vec!["N".into(), "N".into()],
                            nonzero: false,
                        },
                    },
                    TaskParam {
                        name: "Mat2".into(),
                        kind: TaskParamKind::ArrayIn {
                            dims: vec!["N".into()],
                            nonzero: false,
                        },
                    },
                    TaskParam {
                        name: "Result".into(),
                        kind: TaskParamKind::ArrayOut {
                            dims: vec!["N".into()],
                        },
                    },
                ],
                output: 3,
                constants: vec![0],
            },
            ground_truth: parse_program("Result(i) = Mat1(i,j) * Mat2(j)").unwrap(),
        }
    }

    #[test]
    fn lifts_figure2_with_paper_response() {
        // The paper's own Response 1 drives the grammar; none of its
        // candidates is exactly right, yet STAGG finds the solution.
        let query = figure2_query();
        let mut oracle = ScriptedOracle::new().with_paper_response_1("figure2");
        let mut stagg = Stagg::new(&mut oracle, StaggConfig::top_down());
        let report = stagg.lift(&query);
        assert!(report.solved(), "failure: {:?}", report.failure);
        assert_eq!(
            report.solution.unwrap().to_string(),
            "Result(i) = Mat1(i,j) * Mat2(j)"
        );
        assert_eq!(report.dim_list, vec![1, 2, 1]);
        assert_eq!(report.candidates_parsed, 3, "sum(...) line discarded");
    }

    #[test]
    fn bottom_up_lifts_figure2() {
        let query = figure2_query();
        let mut oracle = ScriptedOracle::new().with_paper_response_1("figure2");
        let mut stagg = Stagg::new(&mut oracle, StaggConfig::bottom_up());
        let report = stagg.lift(&query);
        assert!(report.solved(), "failure: {:?}", report.failure);
    }

    #[test]
    fn synthetic_oracle_end_to_end() {
        let query = figure2_query();
        let mut oracle = SyntheticOracle::default();
        let mut stagg = Stagg::new(&mut oracle, StaggConfig::top_down());
        let report = stagg.lift(&query);
        assert!(report.solved(), "failure: {:?}", report.failure);
        assert!(report.attempts >= 1);
    }

    #[test]
    fn parallel_jobs_lift_figure2_with_matching_classification() {
        let query = figure2_query();
        let run = |jobs: usize| {
            let mut oracle = ScriptedOracle::new().with_paper_response_1("figure2");
            let cfg = StaggConfig::top_down().with_jobs(jobs);
            Stagg::new(&mut oracle, cfg).lift(&query)
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.solved(), par.solved(), "classification must agree");
        assert!(par.solved(), "parallel failure: {:?}", par.failure);
        // Both solutions must verify against the legacy kernel (they may
        // be distinct but semantically equivalent programs).
        let outcome = gtl_verify::verify_candidate(
            &query.task,
            par.solution.as_ref().unwrap(),
            &StaggConfig::top_down().verify,
        );
        assert!(outcome.is_equivalent());
        assert!(par.substitutions_tried >= 1, "shared stats must flow back");
    }

    #[test]
    fn hooks_observer_and_shared_cache_flow_through() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[derive(Default)]
        struct Counting {
            candidates: AtomicUsize,
            validated: AtomicUsize,
        }
        impl LiftObserver for Counting {
            fn candidates(&self, received: usize, parsed: usize) {
                assert!(parsed <= received);
                self.candidates.fetch_add(1, Ordering::SeqCst);
            }
            fn validated(&self, _concrete: &gtl_taco::TacoProgram) {
                self.validated.fetch_add(1, Ordering::SeqCst);
            }
        }

        let query = figure2_query();
        let mut oracle = ScriptedOracle::new().with_paper_response_1("figure2");
        let observer = Counting::default();
        let cache = gtl_taco::EvalCache::default();
        let hooks = LiftHooks {
            observer: Some(&observer),
            search: Default::default(),
            eval_cache: Some(&cache),
        };
        let report = Stagg::new(&mut oracle, StaggConfig::top_down()).lift_with(&query, &hooks);
        assert!(report.solved(), "failure: {:?}", report.failure);
        assert_eq!(observer.candidates.load(Ordering::SeqCst), 1);
        assert!(
            observer.validated.load(Ordering::SeqCst) >= 1,
            "the winning candidate must have been observed entering verification"
        );
        let stats = cache.stats();
        assert!(
            stats.hits + stats.misses > 0,
            "the caller's cache must have served the lift"
        );
    }

    #[test]
    fn pre_cancelled_lift_reports_cancelled() {
        use gtl_search::{CancelFlag, SearchHooks};
        use std::sync::Arc;

        let query = figure2_query();
        let mut oracle = ScriptedOracle::new().with_paper_response_1("figure2");
        let cancel = Arc::new(CancelFlag::new());
        cancel.cancel();
        let hooks = LiftHooks {
            observer: None,
            search: SearchHooks::with_cancel(cancel),
            eval_cache: None,
        };
        let report = Stagg::new(&mut oracle, StaggConfig::top_down()).lift_with(&query, &hooks);
        assert!(!report.solved());
        assert_eq!(report.failure, Some(FailureReason::Cancelled));
    }

    #[test]
    fn empty_oracle_fails_gracefully() {
        let query = figure2_query();
        let mut oracle = ScriptedOracle::new(); // knows nothing
        let mut stagg = Stagg::new(&mut oracle, StaggConfig::top_down());
        let report = stagg.lift(&query);
        assert!(!report.solved());
        assert_eq!(report.failure, Some(FailureReason::NoUsableCandidates));
    }

    #[test]
    fn full_grammar_also_solves_simple_query() {
        let query = figure2_query();
        let mut oracle = ScriptedOracle::new().with_paper_response_1("figure2");
        let cfg = StaggConfig::top_down().with_grammar(GrammarMode::FullGrammar);
        let mut stagg = Stagg::new(&mut oracle, cfg);
        let report = stagg.lift(&query);
        assert!(report.solved(), "failure: {:?}", report.failure);
    }
}
