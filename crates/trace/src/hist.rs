//! The mergeable fixed-bucket log-scale latency histogram.
//!
//! Hoisted from `gtl_bench::loadgen` (PR 8) so the serving tier can
//! record server-side distributions with the identical bucket layout —
//! client histograms, server histograms and cross-replica router
//! merges all share one algebra.

use gtl_store::json::Json;

/// Values below this are counted in exact one-microsecond buckets.
const LINEAR_MAX: u64 = 16;
/// Log-scale buckets: 16 sub-buckets per power of two, exponents 4..=36.
/// Everything at or above 2^36 µs (~19 hours) lands in the final
/// overflow bucket.
const NUM_BUCKETS: usize = 16 + 33 * 16;

/// A fixed-bucket log-scale latency histogram over microseconds.
///
/// The bucket layout is *fixed* (independent of the data), so two
/// histograms recorded by different workers — or different processes,
/// or different replicas behind a router — merge exactly by
/// element-wise addition, and merging is associative and commutative.
/// Values under 16 µs get exact buckets; above that each power of two
/// is split into 16 sub-buckets, bounding the relative quantile error
/// at 1/16 (6.25%).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

/// The bucket a microsecond value falls into.
fn bucket_index(us: u64) -> usize {
    if us < LINEAR_MAX {
        return us as usize;
    }
    let exp = 63 - us.leading_zeros() as usize; // >= 4
    let sub = ((us >> (exp - 4)) & 0xf) as usize;
    let index = 16 + (exp - 4) * 16 + sub;
    index.min(NUM_BUCKETS - 1)
}

/// The largest value the bucket can hold (inclusive); `u64::MAX` for
/// the overflow bucket.
fn bucket_upper(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        return index as u64;
    }
    if index >= NUM_BUCKETS - 1 {
        return u64::MAX;
    }
    let exp = (index - 16) / 16 + 4;
    let sub = ((index - 16) % 16) as u64;
    (1u64 << exp) + (sub << (exp - 4)) + ((1u64 << (exp - 4)) - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Records one latency in microseconds.
    pub fn record(&mut self, us: u64) {
        self.buckets[bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Adds every sample of `other` into `self` (element-wise bucket
    /// addition — associative and commutative because the layout is
    /// fixed).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The samples recorded since `baseline` was snapshotted, assuming
    /// `baseline` is an earlier state of this histogram (element-wise
    /// saturating subtraction). `max_us` cannot be un-merged, so the
    /// difference keeps the later maximum — exact whenever the window
    /// contains the overall maximum, an upper bound otherwise.
    pub fn diff(&self, baseline: &LatencyHistogram) -> LatencyHistogram {
        let mut out = self.clone();
        for (mine, theirs) in out.buckets.iter_mut().zip(&baseline.buckets) {
            *mine = mine.saturating_sub(*theirs);
        }
        out.count = out.count.saturating_sub(baseline.count);
        out.sum_us = out.sum_us.saturating_sub(baseline.sum_us);
        out
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact maximum recorded value (µs).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Sum of every recorded value (µs, saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// The mean recorded value (µs); 0 when empty.
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// The nearest-rank `q`-quantile (`0.0..=1.0`), reported as the
    /// upper bound of the bucket holding that rank — so the result is
    /// `>=` the exact sample quantile and overshoots it by at most
    /// 1/16. Clamped to the exact maximum; 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(index).min(self.max_us);
            }
        }
        self.max_us
    }

    /// The non-empty buckets as `(upper_bound_us, count)` pairs in
    /// ascending order — the feed for Prometheus exposition.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(index, n)| (bucket_upper(index), *n))
    }

    /// The histogram as report JSON: summary quantiles plus the
    /// non-empty `[index, count]` bucket pairs (enough to re-merge
    /// reports offline, see [`LatencyHistogram::from_json`]).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(index, n)| Json::Arr(vec![Json::u64(index as u64), Json::u64(*n)]))
            .collect();
        Json::obj([
            ("count", Json::u64(self.count)),
            ("sum_us", Json::u64(self.sum_us)),
            ("mean_us", Json::u64(self.mean_us())),
            ("p50_us", Json::u64(self.quantile_us(0.50))),
            ("p90_us", Json::u64(self.quantile_us(0.90))),
            ("p99_us", Json::u64(self.quantile_us(0.99))),
            ("max_us", Json::u64(self.max_us)),
            ("buckets", Json::Arr(buckets)),
        ])
    }

    /// Rebuilds a histogram from [`LatencyHistogram::to_json`] output —
    /// the wire decode the router's cross-replica merge runs on.
    /// Returns `None` when the value is not a histogram object;
    /// `sum_us` defaults to `mean_us * count` for documents written
    /// before the field existed.
    pub fn from_json(value: &Json) -> Option<LatencyHistogram> {
        let mut out = LatencyHistogram::new();
        out.count = value.get("count")?.as_u64()?;
        out.max_us = value.get("max_us").and_then(Json::as_u64).unwrap_or(0);
        out.sum_us = match value.get("sum_us").and_then(Json::as_u64) {
            Some(sum) => sum,
            None => value
                .get("mean_us")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                .saturating_mul(out.count),
        };
        for pair in value.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            let index = pair.first()?.as_u64()? as usize;
            let n = pair.get(1)?.as_u64()?;
            if index >= NUM_BUCKETS {
                return None;
            }
            out.buckets[index] += n;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Local xorshift64* so the tests stay deterministic without
    /// depending on the bench crate's `Rng`.
    struct TestRng(u64);

    impl TestRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        fn next_below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    #[test]
    fn small_values_get_exact_buckets() {
        let mut h = LatencyHistogram::new();
        for us in 0..LINEAR_MAX {
            h.record(us);
        }
        for us in 0..LINEAR_MAX {
            assert_eq!(bucket_upper(bucket_index(us)), us);
        }
        assert_eq!(h.count(), LINEAR_MAX);
        assert_eq!(h.quantile_us(0.0), 0);
        assert_eq!(h.quantile_us(1.0), LINEAR_MAX - 1);
    }

    #[test]
    fn bucket_upper_bounds_contain_their_values() {
        let mut rng = TestRng(7);
        for _ in 0..10_000 {
            let v = rng.next_u64() >> (rng.next_below(60) as u32);
            let index = bucket_index(v);
            assert!(bucket_upper(index) >= v, "upper({index}) < {v}");
            if index > 0 && index < NUM_BUCKETS - 1 {
                assert!(
                    bucket_upper(index - 1) < v,
                    "value {v} below its bucket's lower edge"
                );
            }
        }
    }

    #[test]
    fn quantiles_bound_exact_sorted_samples() {
        // Values stay below the 2^36 µs overflow bucket, where the
        // 1/16 relative-error bound is guaranteed.
        let mut rng = TestRng(42);
        let mut values: Vec<u64> = (0..500)
            .map(|_| rng.next_u64() >> (29 + rng.next_below(30) as u32))
            .collect();
        let mut h = LatencyHistogram::new();
        for v in &values {
            h.record(*v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let approx = h.quantile_us(q);
            assert!(approx >= exact, "q{q}: {approx} < exact {exact}");
            // Bucket width bounds the overshoot at 1/16 of the value.
            assert!(
                approx <= exact + exact / 16 + 1,
                "q{q}: {approx} overshoots exact {exact}"
            );
        }
        assert_eq!(h.quantile_us(1.0), *values.last().unwrap());
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let build = |seed: u64| {
            let mut rng = TestRng(seed);
            let mut h = LatencyHistogram::new();
            for _ in 0..200 {
                h.record(rng.next_u64() >> (rng.next_below(50) as u32 + 8));
            }
            h
        };
        let (a, b, c) = (build(1), build(2), build(3));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge is not associative");
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "merge is not commutative");
        assert_eq!(ab.count(), a.count() + b.count());
    }

    #[test]
    fn oversized_values_land_in_the_overflow_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 40);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 40), NUM_BUCKETS - 1);
        assert_eq!(h.count(), 2);
        // The overflow bucket's bound is the exact recorded max.
        assert_eq!(h.quantile_us(1.0), u64::MAX);
    }

    #[test]
    fn json_round_trips_for_remerging() {
        let mut h = LatencyHistogram::new();
        for v in [3, 1_500, 90_000, 90_001, 7] {
            h.record(v);
        }
        let decoded = LatencyHistogram::from_json(&h.to_json()).expect("histogram decodes");
        assert_eq!(decoded, h);
        // Decoded histograms keep merging exactly.
        let mut doubled = decoded.clone();
        doubled.merge(&h);
        assert_eq!(doubled.count(), 10);
        assert_eq!(LatencyHistogram::from_json(&Json::Null), None);
    }

    #[test]
    fn diff_recovers_a_window() {
        let mut before = LatencyHistogram::new();
        before.record(100);
        before.record(2_000);
        let mut after = before.clone();
        after.record(500);
        after.record(70_000);
        let window = after.diff(&before);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum_us(), 70_500);
        assert_eq!(window.max_us(), 70_000);
        let mut rebuilt = before.clone();
        rebuilt.merge(&window);
        assert_eq!(rebuilt.count(), after.count());
        assert_eq!(rebuilt.sum_us(), after.sum_us());
    }
}
