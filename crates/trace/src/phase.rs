//! Pipeline phases, per-phase time accounting, and RAII spans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gtl_store::json::Json;

/// The pipeline phases the observability tier attributes time to.
///
/// The set is closed on purpose: a fixed enum indexes fixed-size
/// atomic arrays, so recording a span is two relaxed atomic adds and
/// the disabled path touches nothing at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Querying the oracle for candidate programs, including
    /// preprocessing, parsing and templatizing its answers.
    Oracle,
    /// Kernel analysis, dimension prediction, grammar generation and
    /// PCFG weight learning.
    GrammarLearn,
    /// The weighted A\* template search proper — engine wall time with
    /// the time attributed to validation and verification subtracted,
    /// so the phases partition the round instead of double-counting.
    Search,
    /// Checking candidate substitutions against the I/O examples
    /// (including generating the examples themselves).
    Validate,
    /// Bounded verification of candidates that passed every example.
    Verify,
    /// Appending a solved outcome to the persistent store.
    StoreAppend,
}

impl Phase {
    /// Every phase, in reporting order.
    pub const ALL: [Phase; 6] = [
        Phase::Oracle,
        Phase::GrammarLearn,
        Phase::Search,
        Phase::Validate,
        Phase::Verify,
        Phase::StoreAppend,
    ];

    /// Number of phases (the length of [`Phase::ALL`]).
    pub const COUNT: usize = Phase::ALL.len();

    /// The phase's stable wire/report name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Oracle => "oracle",
            Phase::GrammarLearn => "grammar_learn",
            Phase::Search => "search",
            Phase::Validate => "validate",
            Phase::Verify => "verify",
            Phase::StoreAppend => "store_append",
        }
    }

    /// Parses a wire/report name back to the phase.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Per-phase wall-time totals in microseconds — the value type that
/// rides on `LiftReport`, `MethodResult`, batch-suite JSON and
/// `ServerStats`.
///
/// Merging is element-wise addition, so per-lift maps sum into
/// per-process totals and per-replica totals sum at the router exactly
/// like the histogram algebra.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    micros: [u64; Phase::COUNT],
}

impl PhaseTimes {
    /// An all-zero map.
    pub fn new() -> PhaseTimes {
        PhaseTimes::default()
    }

    /// Adds `us` microseconds to a phase.
    pub fn record(&mut self, phase: Phase, us: u64) {
        self.micros[phase.index()] = self.micros[phase.index()].saturating_add(us);
    }

    /// The accumulated microseconds of one phase.
    pub fn get(&self, phase: Phase) -> u64 {
        self.micros[phase.index()]
    }

    /// Adds every phase total of `other` into `self`.
    pub fn merge(&mut self, other: &PhaseTimes) {
        for phase in Phase::ALL {
            self.record(phase, other.get(phase));
        }
    }

    /// The element-wise difference `self - baseline` (saturating) — a
    /// windowed breakdown from two snapshots of a monotone counter,
    /// mirroring [`crate::LatencyHistogram::diff`].
    pub fn diff(&self, baseline: &PhaseTimes) -> PhaseTimes {
        let mut out = PhaseTimes::new();
        for phase in Phase::ALL {
            out.record(phase, self.get(phase).saturating_sub(baseline.get(phase)));
        }
        out
    }

    /// Sum over all phases, microseconds.
    pub fn total_us(&self) -> u64 {
        self.micros.iter().fold(0u64, |a, b| a.saturating_add(*b))
    }

    /// Whether every phase is zero.
    pub fn is_empty(&self) -> bool {
        self.micros.iter().all(|&us| us == 0)
    }

    /// `(phase, microseconds)` pairs in reporting order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.into_iter().map(move |p| (p, self.get(p)))
    }

    /// The map as a JSON object `{phase_name: microseconds}` with every
    /// phase present (zeros included, so consumers see the full
    /// vocabulary).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(phase, us)| (phase.name().to_string(), Json::u64(us)))
                .collect(),
        )
    }

    /// Decodes [`PhaseTimes::to_json`]; unknown phase names are
    /// ignored (a newer peer may know more phases), missing ones stay
    /// zero. `None` when `value` is not an object.
    pub fn from_json(value: &Json) -> Option<PhaseTimes> {
        let obj = match value {
            Json::Obj(fields) => fields,
            _ => return None,
        };
        let mut times = PhaseTimes::new();
        for (name, us) in obj {
            if let (Some(phase), Some(us)) = (Phase::from_name(name), us.as_u64()) {
                times.record(phase, us);
            }
        }
        Some(times)
    }
}

/// Thread-safe per-phase accumulator: one relaxed atomic add per span,
/// shared freely across search worker threads.
#[derive(Debug, Default)]
pub struct PhaseCollector {
    micros: [AtomicU64; Phase::COUNT],
    spans: [AtomicU64; Phase::COUNT],
}

impl PhaseCollector {
    /// A zeroed collector.
    pub fn new() -> PhaseCollector {
        PhaseCollector::default()
    }

    /// Records `us` microseconds against a phase.
    pub fn add(&self, phase: Phase, us: u64) {
        self.micros[phase.index()].fetch_add(us, Ordering::Relaxed);
        self.spans[phase.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a finished [`PhaseTimes`] map into the collector — how a
    /// server accumulates each lift's breakdown into process totals.
    /// Empty phases are skipped so span counts stay meaningful.
    pub fn merge_times(&self, times: &PhaseTimes) {
        for (phase, us) in times.iter() {
            if us > 0 {
                self.add(phase, us);
            }
        }
    }

    /// Current microsecond total of one phase.
    pub fn micros(&self, phase: Phase) -> u64 {
        self.micros[phase.index()].load(Ordering::Relaxed)
    }

    /// Number of spans recorded against one phase.
    pub fn span_count(&self, phase: Phase) -> u64 {
        self.spans[phase.index()].load(Ordering::Relaxed)
    }

    /// A plain-value snapshot of the totals.
    pub fn snapshot(&self) -> PhaseTimes {
        let mut times = PhaseTimes::new();
        for phase in Phase::ALL {
            times.record(phase, self.micros(phase));
        }
        times
    }
}

/// An RAII phase span: started against an optional collector, records
/// its elapsed wall time on drop.
///
/// The disabled path (`collector == None`) is free: no clock read at
/// start, nothing recorded at drop, and no allocation anywhere — the
/// guard is two words on the stack (verified by the crate's
/// counting-allocator test).
#[derive(Debug)]
pub struct PhaseSpan<'a> {
    collector: Option<&'a PhaseCollector>,
    phase: Phase,
    started: Option<Instant>,
}

impl<'a> PhaseSpan<'a> {
    /// Starts a span; pass `None` to disable it entirely.
    pub fn start(collector: Option<&'a PhaseCollector>, phase: Phase) -> PhaseSpan<'a> {
        PhaseSpan {
            collector,
            phase,
            started: collector.map(|_| Instant::now()),
        }
    }

    /// Ends the span now instead of at scope exit.
    pub fn stop(self) {}
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        if let (Some(collector), Some(started)) = (self.collector, self.started) {
            let us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
            collector.add(self.phase, us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
        }
        assert_eq!(Phase::from_name("no_such_phase"), None);
    }

    #[test]
    fn phase_times_merge_and_total() {
        let mut a = PhaseTimes::new();
        a.record(Phase::Oracle, 100);
        a.record(Phase::Search, 50);
        let mut b = PhaseTimes::new();
        b.record(Phase::Search, 25);
        b.record(Phase::Verify, 7);
        a.merge(&b);
        assert_eq!(a.get(Phase::Oracle), 100);
        assert_eq!(a.get(Phase::Search), 75);
        assert_eq!(a.get(Phase::Verify), 7);
        assert_eq!(a.total_us(), 182);
        assert!(!a.is_empty());
        assert!(PhaseTimes::new().is_empty());
    }

    #[test]
    fn phase_times_json_round_trips() {
        let mut times = PhaseTimes::new();
        times.record(Phase::GrammarLearn, 42);
        times.record(Phase::StoreAppend, 9);
        let decoded = PhaseTimes::from_json(&times.to_json()).expect("object decodes");
        assert_eq!(decoded, times);
        // Unknown phases are skipped, not fatal.
        let with_unknown = Json::obj([("oracle", Json::u64(3)), ("warp_drive", Json::u64(8))]);
        let decoded = PhaseTimes::from_json(&with_unknown).expect("decodes");
        assert_eq!(decoded.get(Phase::Oracle), 3);
        assert_eq!(decoded.total_us(), 3);
        assert_eq!(PhaseTimes::from_json(&Json::Null), None);
    }

    #[test]
    fn collector_accumulates_across_threads() {
        let collector = PhaseCollector::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        collector.add(Phase::Validate, 3);
                    }
                });
            }
        });
        assert_eq!(collector.micros(Phase::Validate), 1200);
        assert_eq!(collector.span_count(Phase::Validate), 400);
        assert_eq!(collector.snapshot().get(Phase::Validate), 1200);
    }

    #[test]
    fn span_records_on_drop_and_disabled_span_records_nothing() {
        let collector = PhaseCollector::new();
        {
            let _span = PhaseSpan::start(Some(&collector), Phase::Oracle);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(collector.micros(Phase::Oracle) >= 1_000);
        assert_eq!(collector.span_count(Phase::Oracle), 1);

        let disabled = PhaseSpan::start(None, Phase::Oracle);
        assert!(disabled.started.is_none(), "disabled span read the clock");
        disabled.stop();
        assert_eq!(collector.span_count(Phase::Oracle), 1);
    }

    #[test]
    fn disabled_span_is_allocation_free_by_construction() {
        // The guard owns no heap type — just a reference, a fieldless
        // enum and an inline `Option<Instant>` — so neither starting
        // nor dropping it can allocate (the workspace forbids unsafe
        // code, so a counting allocator cannot verify this at runtime;
        // the layout bound pins it instead).
        assert!(std::mem::size_of::<PhaseSpan<'_>>() <= 5 * std::mem::size_of::<usize>());
        for _ in 0..1_000_000 {
            PhaseSpan::start(None, Phase::Validate).stop();
        }
    }
}
