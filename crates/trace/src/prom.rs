//! Prometheus text-format exposition helpers.
//!
//! Renders the observability tier's counters, gauges and
//! [`LatencyHistogram`]s in the Prometheus exposition format
//! (`# HELP` / `# TYPE` comments followed by sample lines). Metric
//! values stay in microseconds with a `_us` suffix, so every sample is
//! an integer and the fixed bucket bounds are exact.

use crate::LatencyHistogram;

/// Appends one `counter` metric.
pub fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
    ));
}

/// Appends one `gauge` metric.
pub fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
    ));
}

/// Appends one labelled `counter` sample series: one line per
/// `(label_value, value)` pair under a shared HELP/TYPE header.
pub fn labelled_counter(
    out: &mut String,
    name: &str,
    help: &str,
    label: &str,
    series: &[(&str, u64)],
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
    for (value_label, value) in series {
        out.push_str(&format!(
            "{name}{{{label}=\"{}\"}} {value}\n",
            escape_label(value_label)
        ));
    }
}

/// Appends one `histogram` metric from a [`LatencyHistogram`]:
/// cumulative `_bucket{le="…"}` lines over the non-empty buckets (the
/// layout is fixed, so merged scrapes remain consistent), the `+Inf`
/// bucket, `_sum` and `_count`. Bounds are microseconds.
pub fn histogram(out: &mut String, name: &str, help: &str, h: &LatencyHistogram) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (upper, count) in h.nonzero_buckets() {
        cumulative += count;
        // The overflow bucket has no finite bound; it is covered by +Inf.
        if upper != u64::MAX {
            out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
        }
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", h.sum_us()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

/// Escapes a label value per the exposition format (backslash, quote
/// and newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render_headers_and_values() {
        let mut out = String::new();
        counter(&mut out, "gtl_lifts_received_total", "Lifts admitted.", 7);
        gauge(&mut out, "gtl_queue_depth", "Jobs queued.", 3);
        assert!(out.contains("# TYPE gtl_lifts_received_total counter\n"));
        assert!(out.contains("gtl_lifts_received_total 7\n"));
        assert!(out.contains("# TYPE gtl_queue_depth gauge\n"));
        assert!(out.contains("gtl_queue_depth 3\n"));
    }

    #[test]
    fn labelled_counter_escapes_label_values() {
        let mut out = String::new();
        labelled_counter(
            &mut out,
            "gtl_phase_us_total",
            "Per-phase time.",
            "phase",
            &[("oracle", 12), ("we\"ird\\", 1)],
        );
        assert!(out.contains("gtl_phase_us_total{phase=\"oracle\"} 12\n"));
        assert!(out.contains("gtl_phase_us_total{phase=\"we\\\"ird\\\\\"} 1\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(3);
        h.record(3);
        h.record(1_000);
        let mut out = String::new();
        histogram(&mut out, "gtl_service_time_us", "Service time.", &h);
        assert!(out.contains("# TYPE gtl_service_time_us histogram\n"));
        assert!(out.contains("gtl_service_time_us_bucket{le=\"3\"} 2\n"));
        assert!(out.contains("gtl_service_time_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(out.contains("gtl_service_time_us_sum 1006\n"));
        assert!(out.contains("gtl_service_time_us_count 3\n"));
        // Cumulative counts are monotone.
        let mut last = 0u64;
        for line in out.lines().filter(|l| l.contains("_bucket{le=\"")) {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last, "bucket counts not cumulative: {line}");
            last = value;
        }
    }

    #[test]
    fn overflow_bucket_folds_into_inf() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        let mut out = String::new();
        histogram(&mut out, "m", "overflow.", &h);
        assert!(!out.contains(&format!("le=\"{}\"", u64::MAX)));
        assert!(out.contains("m_bucket{le=\"+Inf\"} 1\n"));
    }
}
