//! The bounded, lock-sharded span journal behind the `trace` request.

use std::collections::VecDeque;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::Mutex;
use std::time::Instant;

use gtl_store::json::Json;

/// One completed span: which trace and request it belongs to, which
/// phase it measured, when it started (milliseconds since the journal
/// was created — i.e. since server start) and how long it ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request-scoped trace ID the span belongs to.
    pub trace_id: String,
    /// The wire request id (`lift` correlation id).
    pub request_id: String,
    /// Span name: a [`crate::Phase`] name, or a server-side span such
    /// as `queue_wait` or `lift`.
    pub name: String,
    /// Start offset in milliseconds since the journal's epoch.
    pub start_ms: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

impl SpanRecord {
    /// The record as a wire JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("trace_id", Json::str(&self.trace_id)),
            ("id", Json::str(&self.request_id)),
            ("name", Json::str(&self.name)),
            ("start_ms", Json::u64(self.start_ms)),
            ("dur_us", Json::u64(self.dur_us)),
        ])
    }

    /// Decodes [`SpanRecord::to_json`].
    pub fn from_json(value: &Json) -> Option<SpanRecord> {
        Some(SpanRecord {
            trace_id: value.get("trace_id")?.as_str()?.to_string(),
            request_id: value.get("id")?.as_str()?.to_string(),
            name: value.get("name")?.as_str()?.to_string(),
            start_ms: value.get("start_ms")?.as_u64()?,
            dur_us: value.get("dur_us")?.as_u64()?,
        })
    }
}

/// How many shards the journal spreads its locks over. Spans shard by
/// trace ID, so every span of one trace lands in one shard and a dump
/// scans exactly one lock.
const SHARDS: usize = 16;

/// A bounded ring buffer of recent [`SpanRecord`]s, lock-sharded by
/// trace ID.
///
/// Each shard holds at most `capacity / SHARDS` spans (at least one);
/// recording past the bound evicts that shard's oldest span, so the
/// journal's memory is fixed for the life of the server and recording
/// never blocks on readers of other shards.
#[derive(Debug)]
pub struct SpanJournal {
    shards: Vec<Mutex<VecDeque<SpanRecord>>>,
    shard_capacity: usize,
    epoch: Instant,
}

impl SpanJournal {
    /// A journal bounded at roughly `capacity` spans overall.
    pub fn new(capacity: usize) -> SpanJournal {
        SpanJournal {
            shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
            shard_capacity: (capacity / SHARDS).max(1),
            epoch: Instant::now(),
        }
    }

    /// Milliseconds since the journal's epoch — the `start_ms`
    /// timebase callers stamp spans with.
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    fn shard(&self, trace_id: &str) -> &Mutex<VecDeque<SpanRecord>> {
        let mut hasher = DefaultHasher::new();
        trace_id.hash(&mut hasher);
        &self.shards[hasher.finish() as usize % SHARDS]
    }

    /// Appends a span, evicting the shard's oldest when full.
    pub fn record(&self, span: SpanRecord) {
        let mut shard = self.shard(&span.trace_id).lock().expect("journal shard poisoned");
        if shard.len() >= self.shard_capacity {
            shard.pop_front();
        }
        shard.push_back(span);
    }

    /// Every retained span of one trace, in recording order.
    pub fn dump(&self, trace_id: &str) -> Vec<SpanRecord> {
        self.shard(trace_id)
            .lock()
            .expect("journal shard poisoned")
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// Total spans currently retained across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("journal shard poisoned").len())
            .sum()
    }

    /// Whether the journal holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: &str, name: &str, dur_us: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace.to_string(),
            request_id: format!("req-{trace}"),
            name: name.to_string(),
            start_ms: 1,
            dur_us,
        }
    }

    #[test]
    fn dump_returns_only_the_named_trace_in_order() {
        let journal = SpanJournal::new(64);
        journal.record(span("aa", "oracle", 10));
        journal.record(span("bb", "oracle", 20));
        journal.record(span("aa", "search", 30));
        let dumped = journal.dump("aa");
        assert_eq!(
            dumped.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec!["oracle", "search"]
        );
        assert!(dumped.iter().all(|s| s.trace_id == "aa"));
        assert_eq!(journal.dump("cc"), Vec::new());
        assert_eq!(journal.len(), 3);
    }

    #[test]
    fn journal_is_bounded_and_evicts_oldest() {
        let journal = SpanJournal::new(SHARDS); // one span per shard
        for n in 0..50 {
            journal.record(span("same-trace", &format!("s{n}"), n));
        }
        assert!(journal.len() <= SHARDS, "journal grew past its bound");
        let dumped = journal.dump("same-trace");
        assert_eq!(dumped.len(), 1, "shard kept more than its capacity");
        assert_eq!(dumped[0].name, "s49", "eviction did not drop the oldest");
    }

    #[test]
    fn span_record_json_round_trips() {
        let record = span("deadbeefdeadbeef", "store_append", 123);
        let decoded = SpanRecord::from_json(&record.to_json()).expect("span decodes");
        assert_eq!(decoded, record);
        assert_eq!(SpanRecord::from_json(&Json::Null), None);
    }

    #[test]
    fn now_ms_is_monotone_from_epoch(){
        let journal = SpanJournal::new(8);
        let a = journal.now_ms();
        let b = journal.now_ms();
        assert!(b >= a);
    }
}
