//! Observability tier for the Guided Tensor Lifting stack.
//!
//! Everything the serving and pipeline layers need to answer "where
//! did this lift spend its time?" without paying for it when nobody is
//! looking:
//!
//! - [`Phase`] / [`PhaseTimes`] / [`PhaseCollector`] / [`PhaseSpan`] —
//!   cheap RAII spans over the pipeline's phases (oracle round →
//!   grammar learn → search → validate → verify → store append),
//!   accumulated into lock-free atomic counters. A span started
//!   without a collector never reads the clock and never allocates.
//! - [`LatencyHistogram`] — the mergeable fixed-bucket log-scale
//!   histogram (hoisted from the load generator so the server can
//!   record service-time and queue-wait distributions with the same
//!   merge algebra the report pipeline already trusts).
//! - [`SpanJournal`] / [`SpanRecord`] — a bounded lock-sharded ring
//!   buffer of recent spans, keyed by trace ID, behind the serving
//!   tier's `trace` request.
//! - [`new_trace_id`] — request-scoped trace-ID generation for
//!   admission points (server and router).
//! - [`prom`] — Prometheus text-format exposition helpers rendering
//!   counters, gauges and [`LatencyHistogram`]s.
//!
//! The crate is std-only and sits below both `gtl` (core) and
//! `gtl_serve`, so the same phase vocabulary flows from the pipeline's
//! [`PhaseTimes`] report field through the wire protocol to the
//! Prometheus surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod journal;
mod phase;
pub mod prom;

pub use hist::LatencyHistogram;
pub use journal::{SpanJournal, SpanRecord};
pub use phase::{Phase, PhaseCollector, PhaseSpan, PhaseTimes};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// A fresh request-scoped trace ID: 16 lowercase hex digits, unique
/// within a process (a monotone counter) and across processes with
/// overwhelming probability (wall-clock nanoseconds and the process's
/// random hasher seed are mixed in). Admission points call this when a
/// request arrives without a client-supplied `trace_id`.
pub fn new_trace_id() -> String {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};

    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    // RandomState seeds differ per process, so two replicas admitting
    // in the same nanosecond still diverge.
    let mut hasher = RandomState::new().build_hasher();
    hasher.write_u64(nanos);
    hasher.write_u64(count);
    format!("{:016x}", hasher.finish() ^ nanos.rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::new_trace_id;

    #[test]
    fn trace_ids_are_well_formed_and_unique() {
        let ids: Vec<String> = (0..1000).map(|_| new_trace_id()).collect();
        for id in &ids {
            assert_eq!(id.len(), 16, "{id} is not 16 hex digits");
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
        }
        let distinct: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(distinct.len(), ids.len(), "trace IDs collided");
    }
}
