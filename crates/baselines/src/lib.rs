//! The baseline lifters the paper compares STAGG against (§8):
//!
//! - [`c2taco_lift`] — C2TACO's bottom-up enumerative synthesis with
//!   optional program-analysis heuristics, I/O-validated only;
//! - [`tenspiler_lift`] — Tenspiler-style verified lifting over a fixed
//!   vector/matrix operation library;
//! - [`llm_only_lift`] — the raw-LLM baseline: validate candidates
//!   directly, no search.
//!
//! # Example
//!
//! ```
//! use gtl::LiftQuery;
//! use gtl_baselines::{c2taco_lift, C2TacoConfig};
//!
//! let b = gtl_benchsuite::by_name("blas_dot").unwrap();
//! let query = LiftQuery {
//!     label: b.name.to_string(),
//!     source: b.source.to_string(),
//!     task: b.lift_task(),
//!     ground_truth: Some(b.parse_ground_truth()),
//! };
//! let report = c2taco_lift(&query, &C2TacoConfig::default());
//! assert!(report.solved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod c2taco;
mod common;
mod llm_only;
mod tenspiler;

pub use c2taco::{c2taco_lift, C2TacoConfig};
pub use common::BaselineReport;
pub use llm_only::{llm_only_lift, LlmOnlyConfig};
pub use tenspiler::{tenspiler_lift, tenspiler_library, TenspilerConfig};
