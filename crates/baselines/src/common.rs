//! Shared types for the baseline lifters.

use std::time::Duration;

use gtl_taco::TacoProgram;

/// The outcome of one baseline run, aligned with [`gtl::LiftReport`]'s
/// reporting fields.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Query label.
    pub label: String,
    /// The solution, if found (verified for verifying baselines,
    /// I/O-validated for C2TACO).
    pub solution: Option<TacoProgram>,
    /// Candidate programs/templates checked.
    pub attempts: u64,
    /// End-to-end wall-clock time.
    pub elapsed: Duration,
}

impl BaselineReport {
    /// Whether the baseline solved the query.
    pub fn solved(&self) -> bool {
        self.solution.is_some()
    }

    /// End-to-end seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}
