//! The LLM-only baseline: validate the raw candidates, no search (§8).

use std::time::Instant;

use gtl::LiftQuery;
use gtl_oracle::{Oracle, OracleQuery};
use gtl_taco::{parse_program, preprocess_candidate};
use gtl_template::templatize;
use gtl_validate::{generate_examples, validate_template, ExampleConfig, ValidationStats};
use gtl_verify::{verify_candidate, VerifyConfig};

use crate::common::BaselineReport;

/// Configuration of the LLM-only baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct LlmOnlyConfig {
    /// I/O example generation.
    pub examples: ExampleConfig,
    /// Bounded verification.
    pub verify: VerifyConfig,
}

/// Lifts by checking the oracle's candidates directly, in response order,
/// without grammar learning or enumeration. Each syntactically valid
/// candidate is templatised and checked with the standard §6 validation +
/// §7 verification; the first that passes wins.
pub fn llm_only_lift(
    oracle: &mut dyn Oracle,
    query: &LiftQuery,
    cfg: &LlmOnlyConfig,
) -> BaselineReport {
    let started = Instant::now();
    let raw = oracle.candidates(&OracleQuery {
        label: &query.label,
        c_source: &query.source,
        ground_truth: query.ground_truth.as_ref(),
    });
    let examples = match generate_examples(&query.task, &cfg.examples) {
        Ok(e) => e,
        Err(_) => {
            return BaselineReport {
                label: query.label.clone(),
                solution: None,
                attempts: 0,
                elapsed: started.elapsed(),
            }
        }
    };
    let mut attempts = 0u64;
    let mut stats = ValidationStats::default();
    for line in &raw {
        let Some(pre) = preprocess_candidate(line) else {
            continue;
        };
        let Ok(parsed) = parse_program(&pre) else {
            continue;
        };
        let Ok(template) = templatize(&parsed) else {
            continue;
        };
        attempts += 1;
        if let Some(solution) = validate_template(
            &template.program,
            &query.task,
            &examples,
            |concrete, _| verify_candidate(&query.task, concrete, &cfg.verify).is_equivalent(),
            &mut stats,
        ) {
            return BaselineReport {
                label: query.label.clone(),
                solution: Some(solution),
                attempts,
                elapsed: started.elapsed(),
            };
        }
    }
    BaselineReport {
        label: query.label.clone(),
        solution: None,
        attempts,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_oracle::{ScriptedOracle, SyntheticOracle};

    fn dot_query() -> LiftQuery {
        let b = gtl_benchsuite::by_name("blas_dot").unwrap();
        LiftQuery {
            label: b.name.to_string(),
            source: b.source.to_string(),
            task: b.lift_task(),
            ground_truth: Some(b.parse_ground_truth()),
        }
    }

    #[test]
    fn solves_when_candidate_correct() {
        let query = dot_query();
        let mut oracle = ScriptedOracle::new().script(
            "blas_dot",
            &["wrong(i) = a(i,j)", "res = v1(i) * v2(i)"],
        );
        let report = llm_only_lift(&mut oracle, &query, &LlmOnlyConfig::default());
        assert!(report.solved());
        assert_eq!(report.attempts, 2);
        assert_eq!(report.solution.unwrap().to_string(), "out = x(i) * y(i)");
    }

    #[test]
    fn fails_without_correct_candidate() {
        let query = dot_query();
        let mut oracle =
            ScriptedOracle::new().script("blas_dot", &["res(i) = v1(i) + v2(i)"]);
        let report = llm_only_lift(&mut oracle, &query, &LlmOnlyConfig::default());
        assert!(!report.solved());
    }

    #[test]
    fn synthetic_oracle_simple_kernel() {
        // A trivially simple kernel: the synthetic oracle almost surely
        // emits an exact candidate.
        let b = gtl_benchsuite::by_name("blas_copy").unwrap();
        let query = LiftQuery {
            label: b.name.to_string(),
            source: b.source.to_string(),
            task: b.lift_task(),
            ground_truth: Some(b.parse_ground_truth()),
        };
        let mut oracle = SyntheticOracle::default();
        let report = llm_only_lift(&mut oracle, &query, &LlmOnlyConfig::default());
        assert!(report.solved());
    }
}
