//! The C2TACO baseline: bottom-up enumerative synthesis with (optional)
//! program-analysis heuristics, validated by I/O testing only.
//!
//! C2TACO ([26], GPCE 2023) enumerates TACO programs shortest-first and
//! checks them against input/output examples; its domain heuristics
//! predict the number of tensors, their dimensionalities and the
//! constants from static analysis of the C code. Unlike STAGG it performs
//! no bounded verification — the paper notes its correctness is asserted
//! "using only I/O testing" (§9.2) — and no LLM is involved.

use std::time::Instant;

use gtl::LiftQuery;
use gtl_analysis::{analyze_kernel, delinearize_access};
use gtl_search::SearchBudget;
use gtl_taco::{canonical_tensor_name, Access, BinOp, Expr, TacoProgram};
use gtl_template::{build_chain_expr, canonical_prefix, index_tuples};
use gtl_validate::{generate_examples, validate_template, ExampleConfig, ValidationStats};

use crate::common::BaselineReport;

/// Configuration of the C2TACO baseline.
#[derive(Debug, Clone, Copy)]
pub struct C2TacoConfig {
    /// Enable the program-analysis heuristics (dimension/size/constant
    /// prediction). Disabling gives the paper's `C2TACO.NoHeuristics`.
    pub heuristics: bool,
    /// Enumeration budget.
    pub budget: SearchBudget,
    /// Maximum operands per expression.
    pub max_operands: usize,
    /// Maximum tensor rank considered without heuristics.
    pub max_dim: usize,
    /// I/O example generation.
    pub examples: ExampleConfig,
}

impl Default for C2TacoConfig {
    fn default() -> Self {
        C2TacoConfig {
            heuristics: true,
            budget: SearchBudget::default(),
            max_operands: 4,
            max_dim: 3,
            examples: ExampleConfig::default(),
        }
    }
}

/// The statically-predicted operand inventory.
#[derive(Debug, Clone)]
struct OperandPrediction {
    /// Ranks of the mandatory operands: one per distinct (read array,
    /// offset pattern) pair — so a kernel reading `A[i*m+k]` and
    /// `A[j*m+k]` predicts *two* rank-2 operands.
    mandatory: Vec<usize>,
    /// Number of scalar parameters that may optionally join as rank-0
    /// operands.
    optional_scalars: usize,
    /// Predicted LHS rank.
    lhs_rank: Option<usize>,
}

fn predict_operands(query: &LiftQuery) -> OperandPrediction {
    let facts = analyze_kernel(&query.task.func);
    let mut mandatory = Vec::new();
    for (param, _) in &facts.param_ranks {
        if Some(*param) == facts.output_param {
            continue;
        }
        // Count distinct read-offset classes for this parameter.
        let mut classes: Vec<String> = Vec::new();
        let mut ranks: Vec<usize> = Vec::new();
        for access in facts.summary.accesses_of(*param) {
            if access.is_write {
                continue;
            }
            let key = access
                .offset
                .as_ref()
                .map(|p| p.to_string())
                .unwrap_or_else(|| "?".to_string());
            if !classes.contains(&key) {
                classes.push(key);
                let rank = delinearize_access(access)
                    .map(|r| r.rank())
                    .unwrap_or(0);
                ranks.push(rank);
            }
        }
        mandatory.extend(ranks);
    }
    let optional_scalars = query
        .task
        .params
        .iter()
        .filter(|p| {
            matches!(
                p.kind,
                gtl_validate::TaskParamKind::ScalarIn { .. }
                    | gtl_validate::TaskParamKind::Size(_)
            )
        })
        .count()
        .min(2);
    OperandPrediction {
        mandatory,
        optional_scalars,
        lhs_rank: facts.lhs_dim,
    }
}

/// All distinct permutations of a dim multiset extended by `extra` zeros.
fn dim_sequences_with_heuristics(pred: &OperandPrediction) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for extra in 0..=pred.optional_scalars {
        let mut base = pred.mandatory.clone();
        base.extend(std::iter::repeat_n(0usize, extra));
        base.sort_unstable();
        // Enumerate distinct permutations.
        let mut perms = Vec::new();
        permute_distinct(&base, &mut Vec::new(), &mut vec![false; base.len()], &mut perms);
        out.extend(perms);
    }
    // Shortest first.
    out.sort_by_key(Vec::len);
    out.dedup();
    out
}

fn permute_distinct(
    items: &[usize],
    current: &mut Vec<usize>,
    used: &mut Vec<bool>,
    out: &mut Vec<Vec<usize>>,
) {
    if current.len() == items.len() {
        out.push(current.clone());
        return;
    }
    let mut last: Option<usize> = None;
    for i in 0..items.len() {
        if used[i] || last == Some(items[i]) {
            continue;
        }
        last = Some(items[i]);
        used[i] = true;
        current.push(items[i]);
        permute_distinct(items, current, used, out);
        current.pop();
        used[i] = false;
    }
}

/// All dim sequences of length `k` over `0..=max_dim` (no heuristics).
fn dim_sequences_free(k: usize, max_dim: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![Vec::new()];
    for _ in 0..k {
        let mut next = Vec::new();
        for seq in &out {
            for d in 0..=max_dim {
                let mut s = seq.clone();
                s.push(d);
                next.push(s);
            }
        }
        out = next;
    }
    out
}

/// Lifts a query with C2TACO-style size-ordered enumeration.
pub fn c2taco_lift(query: &LiftQuery, cfg: &C2TacoConfig) -> BaselineReport {
    let started = Instant::now();
    let examples = match generate_examples(&query.task, &cfg.examples) {
        Ok(e) => e,
        Err(_) => {
            return BaselineReport {
                label: query.label.clone(),
                solution: None,
                attempts: 0,
                elapsed: started.elapsed(),
            }
        }
    };
    let pred = predict_operands(query);

    // LHS options.
    let lhs_ranks: Vec<usize> = if cfg.heuristics {
        match pred.lhs_rank {
            Some(r) => vec![r],
            None => (0..=cfg.max_dim).collect(),
        }
    } else {
        (0..=cfg.max_dim).collect()
    };

    let mut attempts = 0u64;
    let mut stats = ValidationStats::default();
    let over_budget = |attempts: u64, started: &Instant| {
        attempts >= cfg.budget.max_attempts || started.elapsed() >= cfg.budget.time_limit
    };

    // Size-ordered enumeration: operand count k ascending.
    for k in 1..=cfg.max_operands {
        let sequences: Vec<Vec<usize>> = if cfg.heuristics {
            dim_sequences_with_heuristics(&pred)
                .into_iter()
                .filter(|s| s.len() == k)
                .collect()
        } else {
            dim_sequences_free(k, cfg.max_dim)
        };
        for seq in &sequences {
            // Leaf options per operand: every index tuple for the
            // operand's rank; rank-0 slots additionally admit a source
            // constant (C2TACO's constant prediction). C2TACO admits
            // repeated indices for matrices (diagonal accesses) but keeps
            // tuples distinct beyond rank 2 to bound the space.
            let leaf_options: Vec<Vec<LeafKind>> = seq
                .iter()
                .map(|&d| {
                    let mut opts: Vec<LeafKind> = index_tuples(d, 4, d <= 2)
                        .into_iter()
                        .map(LeafKind::Tuple)
                        .collect();
                    if d == 0 && !query.task.constants.is_empty() {
                        opts.push(LeafKind::Constant);
                    }
                    opts
                })
                .collect();
            // Operator sequences (k-1 slots).
            let op_seqs = op_sequences(k - 1);
            for lhs_rank in &lhs_ranks {
                let lhs = Access {
                    tensor: canonical_tensor_name(0),
                    indices: canonical_prefix(*lhs_rank),
                };
                let mut tuple_choice = vec![0usize; seq.len()];
                'tuples: loop {
                    // Build operand leaves b, c, d… with chosen options.
                    let mut const_slots = 0u32;
                    let leaves: Vec<Expr> = seq
                        .iter()
                        .enumerate()
                        .map(|(n, _)| match &leaf_options[n][tuple_choice[n]] {
                            LeafKind::Tuple(tuple) => Expr::Access(Access {
                                tensor: canonical_tensor_name(n + 1),
                                indices: tuple.clone(),
                            }),
                            LeafKind::Constant => {
                                let slot = const_slots;
                                const_slots += 1;
                                Expr::ConstSym(slot)
                            }
                        })
                        .collect();
                    for ops in &op_seqs {
                        if over_budget(attempts, &started) {
                            return BaselineReport {
                                label: query.label.clone(),
                                solution: None,
                                attempts,
                                elapsed: started.elapsed(),
                            };
                        }
                        let Some(rhs) = build_chain_expr(&leaves, ops) else {
                            continue;
                        };
                        let template = TacoProgram::new(lhs.clone(), rhs);
                        attempts += 1;
                        // I/O validation only (no bounded verification).
                        if let Some(solution) = validate_template(
                            &template,
                            &query.task,
                            &examples,
                            |_, _| true,
                            &mut stats,
                        ) {
                            return BaselineReport {
                                label: query.label.clone(),
                                solution: Some(solution),
                                attempts,
                                elapsed: started.elapsed(),
                            };
                        }
                    }
                    // Advance the leaf odometer.
                    let mut done = true;
                    for pos in (0..tuple_choice.len()).rev() {
                        tuple_choice[pos] += 1;
                        if tuple_choice[pos] < leaf_options[pos].len() {
                            done = false;
                            break;
                        }
                        tuple_choice[pos] = 0;
                    }
                    if done {
                        break 'tuples;
                    }
                }
            }
        }
    }
    BaselineReport {
        label: query.label.clone(),
        solution: None,
        attempts,
        elapsed: started.elapsed(),
    }
}

/// One operand-leaf option: an index tuple for the position's symbol, or
/// a source constant (rank-0 slots only).
#[derive(Debug, Clone)]
enum LeafKind {
    Tuple(Vec<gtl_taco::IndexVar>),
    Constant,
}

fn op_sequences(slots: usize) -> Vec<Vec<BinOp>> {
    let mut out: Vec<Vec<BinOp>> = vec![Vec::new()];
    for _ in 0..slots {
        let mut next = Vec::new();
        for seq in &out {
            for op in BinOp::ALL {
                let mut s = seq.clone();
                s.push(op);
                next.push(s);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(name: &str) -> LiftQuery {
        let b = gtl_benchsuite::by_name(name).unwrap();
        LiftQuery {
            label: b.name.to_string(),
            source: b.source.to_string(),
            task: b.lift_task(),
            ground_truth: Some(b.parse_ground_truth()),
        }
    }

    #[test]
    fn solves_dot_with_heuristics() {
        let report = c2taco_lift(&query("blas_dot"), &C2TacoConfig::default());
        assert!(report.solved());
        assert_eq!(report.solution.unwrap().to_string(), "out = x(i) * y(i)");
    }

    #[test]
    fn solves_gemv_both_modes() {
        let with = c2taco_lift(&query("blas_gemv"), &C2TacoConfig::default());
        assert!(with.solved(), "heuristics should solve Fig. 2");
        let without = c2taco_lift(
            &query("blas_gemv"),
            &C2TacoConfig {
                heuristics: false,
                ..C2TacoConfig::default()
            },
        );
        assert!(without.solved(), "no-heuristics eventually finds it");
        assert!(
            with.attempts <= without.attempts,
            "heuristics prune the space: {} vs {}",
            with.attempts,
            without.attempts
        );
    }

    #[test]
    fn syrk_needs_two_rank2_operands() {
        // The offset-class prediction must see A twice.
        let q = query("blas_syrk");
        let pred = predict_operands(&q);
        assert_eq!(pred.mandatory, vec![2, 2]);
    }

    #[test]
    fn cannot_reach_parenthesised_shapes() {
        // (a + b) * c is not a precedence chain.
        let report = c2taco_lift(
            &query("art_paren_mul"),
            &C2TacoConfig {
                budget: SearchBudget {
                    max_attempts: 3_000,
                    ..SearchBudget::default()
                },
                ..C2TacoConfig::default()
            },
        );
        assert!(!report.solved(), "chains cannot express balanced ASTs");
    }

    #[test]
    fn axpy_uses_optional_scalar() {
        let report = c2taco_lift(&query("blas_axpy"), &C2TacoConfig::default());
        assert!(report.solved());
        let s = report.solution.unwrap().to_string();
        assert!(s.contains("alpha"), "solution uses the scalar: {s}");
    }
}
