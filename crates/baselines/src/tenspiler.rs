//! The Tenspiler-style baseline: verified lifting over a fixed operator
//! library.
//!
//! Tenspiler ([36], ECOOP 2024) lifts via symbolic search over a fixed
//! set of tensor operations (its six DSL back-ends share a common IR of
//! vector/matrix operations), proving equivalence with verification
//! conditions. We reproduce its qualitative profile: a library of
//! vector/matrix templates tried in order, each candidate validated on
//! I/O examples and then *verified* (it is a verified-lifting tool) —
//! fast inside the library, no coverage outside it (higher-rank tensors,
//! long chains, parenthesised expressions).

use std::time::Instant;

use gtl::LiftQuery;
use gtl_taco::{parse_program, TacoProgram};
use gtl_validate::{generate_examples, validate_template, ExampleConfig, ValidationStats};
use gtl_verify::{verify_candidate, VerifyConfig};

use crate::common::BaselineReport;

/// Configuration of the Tenspiler-style baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenspilerConfig {
    /// I/O example generation.
    pub examples: ExampleConfig,
    /// Bounded verification.
    pub verify: VerifyConfig,
}

/// The operation library, as templates over symbolic tensors. Mirrors
/// Tenspiler's vector/matrix IR: elementwise arithmetic, scalar
/// broadcasts, reductions, dot products, matrix-vector and matrix-matrix
/// products, outer products and blended updates. Deliberately absent:
/// rank-3+ tensors, 4-operand chains, parenthesised expressions,
/// column-order reductions — the shapes behind Tenspiler's 52/67 coverage
/// in the paper's Table 1.
pub fn tenspiler_library() -> Vec<TacoProgram> {
    [
        // Copies.
        "a(i) = b(i)",
        "a(i,j) = b(i,j)",
        // Vector elementwise.
        "a(i) = b(i) + c(i)",
        "a(i) = b(i) - c(i)",
        "a(i) = b(i) * c(i)",
        "a(i) = b(i) / c(i)",
        // Matrix elementwise.
        "a(i,j) = b(i,j) + c(i,j)",
        "a(i,j) = b(i,j) - c(i,j)",
        "a(i,j) = b(i,j) * c(i,j)",
        "a(i,j) = b(i,j) / c(i,j)",
        // Scalar broadcasts (scalar argument or source constant).
        "a(i) = b * c(i)",
        "a(i) = b(i) * c",
        "a(i) = b(i) + c",
        "a(i) = b(i) - c",
        "a(i) = b(i) / c",
        "a(i) = b(i) * Const",
        "a(i) = b(i) + Const",
        "a(i) = b(i) - Const",
        "a(i) = b(i) / Const",
        "a(i,j) = b(i,j) * c",
        "a(i,j) = b(i,j) + c",
        // Row-broadcast (bias/scale across a matrix).
        "a(i,j) = b(i,j) + c(i)",
        "a(i,j) = b(i,j) * c(i)",
        // Reductions.
        "a = b(i)",
        "a = b(i,j)",
        "a = b(i) * c(i)",
        "a = b(i) / c",
        "a(i) = b(i,j)",
        // Contractions.
        "a(i) = b(i,j) * c(j)",
        "a(i) = b(j,i) * c(j)",
        "a(i,j) = b(i,k) * c(k,j)",
        // Outer product.
        "a(i,j) = b(i) * c(j)",
        // Blended updates.
        "a(i) = b * c(i) + d(i)",
        "a(i) = b(i) * c + d(i)",
        "a(i) = b(i) * c(i) + d(i)",
    ]
    .iter()
    .map(|s| parse_program(s).expect("library template parses"))
    .collect()
}

/// Lifts by trying each library template in order; the first that
/// validates and verifies wins.
pub fn tenspiler_lift(query: &LiftQuery, cfg: &TenspilerConfig) -> BaselineReport {
    let started = Instant::now();
    let examples = match generate_examples(&query.task, &cfg.examples) {
        Ok(e) => e,
        Err(_) => {
            return BaselineReport {
                label: query.label.clone(),
                solution: None,
                attempts: 0,
                elapsed: started.elapsed(),
            }
        }
    };
    let mut attempts = 0u64;
    let mut stats = ValidationStats::default();
    for template in tenspiler_library() {
        attempts += 1;
        if let Some(solution) = validate_template(
            &template,
            &query.task,
            &examples,
            |concrete, _| verify_candidate(&query.task, concrete, &cfg.verify).is_equivalent(),
            &mut stats,
        ) {
            return BaselineReport {
                label: query.label.clone(),
                solution: Some(solution),
                attempts,
                elapsed: started.elapsed(),
            };
        }
    }
    BaselineReport {
        label: query.label.clone(),
        solution: None,
        attempts,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(name: &str) -> LiftQuery {
        let b = gtl_benchsuite::by_name(name).unwrap();
        LiftQuery {
            label: b.name.to_string(),
            source: b.source.to_string(),
            task: b.lift_task(),
            ground_truth: Some(b.parse_ground_truth()),
        }
    }

    #[test]
    fn library_parses() {
        assert!(tenspiler_library().len() > 30);
    }

    #[test]
    fn solves_library_shapes() {
        for name in ["blas_dot", "blas_gemv", "blas_gemm", "mf_vadd", "dn_bias_add"] {
            let report = tenspiler_lift(&query(name), &TenspilerConfig::default());
            assert!(report.solved(), "{name} is in the library");
        }
    }

    #[test]
    fn fails_outside_library() {
        for name in ["sa_ttv", "sa_mttkrp", "mf_lerp", "sa_trace", "art_chain4"] {
            let report = tenspiler_lift(&query(name), &TenspilerConfig::default());
            assert!(!report.solved(), "{name} is outside the library");
        }
    }

    #[test]
    fn weighted_sum_resolves_same_tensor_twice() {
        // llama_rmsnorm_ss: out = x(i) * x(i) — dot template with both
        // symbols bound to the same argument.
        let report = tenspiler_lift(&query("llama_rmsnorm_ss"), &TenspilerConfig::default());
        assert!(report.solved());
        assert_eq!(report.solution.unwrap().to_string(), "out = x(i) * x(i)");
    }
}
